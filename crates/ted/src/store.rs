//! TED's query path: a plain spatio-temporal index with full per-instance
//! decompression.
//!
//! TED's index (from \[40\], adapted): per *instance* — because TED treats
//! instances as independent accurate trajectories — one temporal tuple per
//! time interval and one spatial tuple per grid cell crossed. No
//! probability aggregates, no referential grouping, no partial
//! decompression: every candidate instance is fully decoded before being
//! tested. This is the baseline the paper's Figs. 9–10 and 12c/d measure
//! UTCQ against.

use std::collections::HashMap;

use utcq_network::{CellId, Grid, Rect, RoadNetwork};
use utcq_traj::interp::{location_at, point_at, times_at_location};
use utcq_traj::{Dataset, Instance, MappedLocation, TedView};

use crate::compress::{compress_dataset, decompress_instance, TedCompressedDataset};
use crate::params::TedParams;
use crate::time;
use crate::TedError;

/// Index parameters (mirrors the StIU sweep knobs).
#[derive(Debug, Clone, Copy)]
pub struct TedStoreParams {
    /// Time partition duration in seconds.
    pub partition_s: i64,
    /// Grid dimension `n` (n² cells).
    pub grid_n: u32,
}

impl Default for TedStoreParams {
    fn default() -> Self {
        Self {
            partition_s: 900,
            grid_n: 32,
        }
    }
}

/// Per-instance spatial tuple.
#[derive(Debug, Clone, Copy)]
struct CellTuple {
    cell: CellId,
    instance: u32,
}

#[derive(Debug, Clone, Default)]
struct TrajNode {
    /// Interval starts (one temporal tuple per instance per interval in
    /// the original TED; instances share T here, but the size accounting
    /// below still charges per instance, as the baseline would).
    temporal: Vec<(i64, u32)>,
    cells: Vec<CellTuple>,
}

/// A TED-compressed dataset plus its index, ready for querying.
pub struct TedStore<'n> {
    /// The road network.
    pub net: &'n RoadNetwork,
    /// The compressed dataset.
    pub tds: TedCompressedDataset,
    /// The spatial grid.
    pub grid: Grid,
    params: TedStoreParams,
    nodes: Vec<TrajNode>,
    interval_trajs: HashMap<i64, Vec<u32>>,
    id_to_idx: HashMap<u64, u32>,
}

/// One TED *where* answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TedWhereHit {
    /// Instance index.
    pub instance: u32,
    /// Instance probability.
    pub prob: f64,
    /// Location at the query time.
    pub loc: MappedLocation,
}

/// One TED *when* answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TedWhenHit {
    /// Instance index.
    pub instance: u32,
    /// Instance probability.
    pub prob: f64,
    /// Passing time.
    pub time: f64,
}

impl<'n> TedStore<'n> {
    /// Compresses a dataset and builds the index.
    pub fn build(
        net: &'n RoadNetwork,
        ds: &Dataset,
        params: TedParams,
        store_params: TedStoreParams,
    ) -> Result<Self, TedError> {
        let tds = compress_dataset(net, ds, &params)?;
        let grid = Grid::over_network(net, store_params.grid_n);
        let mut nodes = Vec::with_capacity(ds.trajectories.len());
        let mut interval_trajs: HashMap<i64, Vec<u32>> = HashMap::new();
        for (j, tu) in ds.trajectories.iter().enumerate() {
            let mut node = TrajNode::default();
            let mut last = i64::MIN;
            for (i, &t) in tu.times.iter().enumerate() {
                let interval = t.div_euclid(store_params.partition_s);
                if interval != last {
                    last = interval;
                    node.temporal.push((t, i as u32));
                }
            }
            let first = tu.times[0].div_euclid(store_params.partition_s);
            let final_i = tu.times[tu.times.len() - 1].div_euclid(store_params.partition_s);
            for interval in first..=final_i {
                interval_trajs.entry(interval).or_default().push(j as u32);
            }
            for (w, inst) in tu.instances.iter().enumerate() {
                for cell in instance_cells(net, inst, &grid) {
                    node.cells.push(CellTuple {
                        cell,
                        instance: w as u32,
                    });
                }
            }
            nodes.push(node);
        }
        let id_to_idx = tds
            .trajectories
            .iter()
            .enumerate()
            .map(|(i, t)| (t.id, i as u32))
            .collect();
        Ok(Self {
            net,
            tds,
            grid,
            params: store_params,
            nodes,
            interval_trajs,
            id_to_idx,
        })
    }

    /// Index size in bits: per-instance temporal tuples (17 + 12 + 24) and
    /// per-instance spatial tuples (32 + 12 + 24), the baseline's
    /// ungrouped layout.
    pub fn index_size_bits(&self) -> u64 {
        let mut total = 0u64;
        for (node, tt) in self.nodes.iter().zip(&self.tds.trajectories) {
            let n_inst = tt.instances.len() as u64;
            total += node.temporal.len() as u64 * n_inst * (17 + 12 + 24);
            total += node.cells.len() as u64 * (32 + 12 + 24);
        }
        total
    }

    fn decode_traj_times(&self, j: u32) -> Result<Vec<i64>, TedError> {
        let tt = &self.tds.trajectories[j as usize];
        Ok(time::decode(&tt.t_bits, tt.n_times as usize)?)
    }

    fn decode(&self, j: u32, w: u32) -> Result<Instance, TedError> {
        let tt = &self.tds.trajectories[j as usize];
        decompress_instance(
            self.net,
            &self.tds,
            &tt.instances[w as usize],
            tt.n_times as usize,
        )
    }

    /// Probabilistic **where** query: full T decode, full decode of every
    /// qualifying instance.
    pub fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
    ) -> Result<Vec<TedWhereHit>, TedError> {
        let Some(&j) = self.id_to_idx.get(&traj_id) else {
            return Ok(Vec::new());
        };
        let times = self.decode_traj_times(j)?;
        let p_codec = self.tds.params.p_codec();
        let tt = &self.tds.trajectories[j as usize];
        let mut hits = Vec::new();
        for (w, ci) in tt.instances.iter().enumerate() {
            let prob = p_codec.dequantize(ci.p_code);
            if prob < alpha {
                continue;
            }
            let inst = self.decode(j, w as u32)?;
            if let Some(loc) = location_at(self.net, &inst, &times, t) {
                hits.push(TedWhereHit {
                    instance: w as u32,
                    prob,
                    loc,
                });
            }
        }
        Ok(hits)
    }

    /// Probabilistic **when** query: the cell index shortlists instances,
    /// each of which is fully decoded (no Lemma 1 filter).
    pub fn when_query(
        &self,
        traj_id: u64,
        edge: utcq_network::EdgeId,
        rd: f64,
        alpha: f64,
    ) -> Result<Vec<TedWhenHit>, TedError> {
        let Some(&j) = self.id_to_idx.get(&traj_id) else {
            return Ok(Vec::new());
        };
        let query_pt = self
            .net
            .point_on_edge(edge, rd * self.net.edge_length(edge));
        let cell = self.grid.cell_of(query_pt);
        let node = &self.nodes[j as usize];
        let mut candidates: Vec<u32> = node
            .cells
            .iter()
            .filter(|c| c.cell == cell)
            .map(|c| c.instance)
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        let times = self.decode_traj_times(j)?;
        let p_codec = self.tds.params.p_codec();
        let tt = &self.tds.trajectories[j as usize];
        let mut hits = Vec::new();
        for w in candidates {
            let prob = p_codec.dequantize(tt.instances[w as usize].p_code);
            if prob < alpha {
                continue;
            }
            let inst = self.decode(j, w)?;
            for t in times_at_location(self.net, &inst, &times, edge, rd) {
                hits.push(TedWhenHit {
                    instance: w,
                    prob,
                    time: t,
                });
            }
        }
        hits.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.instance.cmp(&b.instance)));
        Ok(hits)
    }

    /// Probabilistic **range** query: interval + cell shortlist, then full
    /// decode and exact point tests — no subpath lemmas.
    pub fn range_query(&self, re: &Rect, tq: i64, alpha: f64) -> Result<Vec<u64>, TedError> {
        let cells: std::collections::HashSet<CellId> =
            self.grid.cells_overlapping(re).into_iter().collect();
        let interval = tq.div_euclid(self.params.partition_s);
        let mut out = Vec::new();
        let Some(trajs) = self.interval_trajs.get(&interval) else {
            return Ok(out);
        };
        let p_codec = self.tds.params.p_codec();
        for &j in trajs {
            let node = &self.nodes[j as usize];
            let mut candidates: Vec<u32> = node
                .cells
                .iter()
                .filter(|c| cells.contains(&c.cell))
                .map(|c| c.instance)
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            if candidates.is_empty() {
                continue;
            }
            let times = self.decode_traj_times(j)?;
            let tt = &self.tds.trajectories[j as usize];
            let mut mass = 0.0;
            for w in candidates {
                let inst = self.decode(j, w)?;
                if point_at(self.net, &inst, &times, tq).is_some_and(|p| re.contains(p)) {
                    mass += p_codec.dequantize(tt.instances[w as usize].p_code);
                }
            }
            if mass >= alpha {
                out.push(tt.id);
            }
        }
        Ok(out)
    }
}

/// Grid cells an instance's sampled span crosses.
fn instance_cells(net: &RoadNetwork, inst: &Instance, grid: &Grid) -> Vec<CellId> {
    let view = TedView::from_instance(net, inst);
    let _ = view; // the baseline stores per-instance tuples only
    let first = inst.location(net, 0);
    let last = inst.location(net, inst.positions.len() - 1);
    let first_pt = net.point_on_edge(first.edge, first.ndist);
    let last_pt = net.point_on_edge(last.edge, last.ndist);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (j, &e) in inst.path.iter().enumerate() {
        let mut a = net.coord(net.edge_from(e));
        let mut b = net.coord(net.edge_to(e));
        if j == 0 {
            a = first_pt;
        }
        if j == inst.path.len() - 1 {
            b = last_pt;
        }
        let bbox = Rect::point(a).union(Rect::point(b));
        for cell in grid.cells_overlapping(&bbox) {
            if grid.cell_rect(cell).intersects_segment(a, b) && seen.insert(cell) {
                out.push(cell);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use utcq_traj::paper_fixture;

    fn paper_store(fx: &utcq_traj::paper_fixture::PaperFixture) -> TedStore<'_> {
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        TedStore::build(
            &fx.example.net,
            &ds,
            TedParams::default(),
            TedStoreParams {
                partition_s: 900,
                grid_n: 4,
            },
        )
        .unwrap()
    }

    #[test]
    fn example3_where_on_ted() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let hits = store
            .where_query(1, paper_fixture::hms(5, 21, 25), 0.25)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].loc.edge, fx.example.edge(6, 7));
        assert!((hits[0].loc.ndist - 150.0).abs() < 1.6);
    }

    #[test]
    fn example3_when_on_ted() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let hits = store
            .when_query(1, fx.example.edge(6, 7), 0.75, 0.25)
            .unwrap();
        assert_eq!(hits.len(), 1);
        let want = paper_fixture::hms(5, 21, 25) as f64;
        assert!((hits[0].time - want).abs() < 3.5);
    }

    #[test]
    fn range_on_ted() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let t = paper_fixture::hms(5, 5, 25);
        let all = Rect::new(-10.0, -10.0, 70.0, 10.0);
        assert_eq!(store.range_query(&all, t, 0.5).unwrap(), vec![1]);
        let far = Rect::new(100.0, 100.0, 120.0, 120.0);
        assert!(store.range_query(&far, t, 0.5).unwrap().is_empty());
    }

    #[test]
    fn index_size_positive_and_per_instance() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        assert!(store.index_size_bits() > 0);
    }
}
