//! TED's time-sequence representation: `(i, tᵢ)` pairs (§2.2).
//!
//! TED omits timestamps that sit inside a run of constant sample
//! intervals: `tᵢ` is dropped when `tᵢ − tᵢ₋₁ = tᵢ₊₁ − tᵢ`. The decoder
//! linearly interpolates dropped timestamps, which is exact because only
//! perfectly regular runs are dropped. Pairs are encoded as a 12-bit
//! sample index plus a 17-bit second-of-day (the paper's arithmetic in
//! §4.4: 29 bits per pair), preceded by one Exp-Golomb day index.
//!
//! This is the representation SIAR (the UTCQ improvement) replaces; the
//! Table 8 `T` ratios compare the two.

use utcq_bitio::{golomb, BitBuf, BitWriter, CodecError};

const SECONDS_PER_DAY: i64 = 86_400;
/// Index width: the paper assumes at most 2¹² timestamps per trajectory.
const IDX_BITS: u32 = 12;
/// Timestamp width: seconds-of-day fit in 17 bits.
const TIME_BITS: u32 = 17;

/// The kept `(i, tᵢ)` pairs for a time sequence.
pub fn kept_pairs(times: &[i64]) -> Vec<(u32, i64)> {
    let n = times.len();
    let mut pairs = Vec::new();
    for i in 0..n {
        let droppable = i > 0 && i + 1 < n && times[i] - times[i - 1] == times[i + 1] - times[i];
        if !droppable {
            pairs.push((i as u32, times[i]));
        }
    }
    pairs
}

/// Encodes a time sequence as TED pairs.
pub fn encode(times: &[i64]) -> Result<BitBuf, CodecError> {
    assert!(!times.is_empty());
    assert!(times.len() < (1 << IDX_BITS), "TED assumes < 2^12 samples");
    let day = times[0].div_euclid(SECONDS_PER_DAY);
    let mut w = BitWriter::new();
    golomb::encode_unsigned(&mut w, day as u64)?;
    let pairs = kept_pairs(times);
    golomb::encode_unsigned(&mut w, pairs.len() as u64)?;
    for (i, t) in pairs {
        w.write_bits(u64::from(i), IDX_BITS)?;
        w.write_bits(t.rem_euclid(SECONDS_PER_DAY) as u64, TIME_BITS)?;
    }
    Ok(w.finish())
}

/// Decodes a TED-encoded time sequence of `n` samples.
pub fn decode(buf: &BitBuf, n: usize) -> Result<Vec<i64>, CodecError> {
    let mut r = buf.reader();
    let day = golomb::decode_unsigned(&mut r)? as i64;
    let base = day * SECONDS_PER_DAY;
    let n_pairs = golomb::decode_unsigned(&mut r)? as usize;
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let i = r.read_bits(IDX_BITS)? as usize;
        let t = base + r.read_bits(TIME_BITS)? as i64;
        pairs.push((i, t));
    }
    if pairs.is_empty() || pairs[0].0 != 0 || pairs[pairs.len() - 1].0 != n - 1 {
        return Err(CodecError::Malformed("TED pairs must cover both endpoints"));
    }
    let mut times = vec![0i64; n];
    for w in pairs.windows(2) {
        let (i, ti) = w[0];
        let (j, tj) = w[1];
        if j <= i || j >= n {
            return Err(CodecError::Malformed("TED pair indices not increasing"));
        }
        let span = (j - i) as i64;
        #[allow(clippy::needless_range_loop)]
        for k in i..=j {
            times[k] = ti + (tj - ti) * (k - i) as i64 / span;
        }
    }
    if n == 1 {
        times[0] = pairs[0].1;
    }
    Ok(times)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_pairs() {
        // Table 2's time sequence keeps indices 0,1,2,3,4,6.
        let times = vec![18205, 18445, 18686, 18926, 19165, 19405, 19645];
        let idx: Vec<u32> = kept_pairs(&times).iter().map(|p| p.0).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 6]);
    }

    #[test]
    fn roundtrip_irregular() {
        let cases: Vec<Vec<i64>> = vec![
            vec![18205, 18445, 18686, 18926, 19165, 19405, 19645],
            vec![0, 10, 20, 30, 40],
            vec![100, 101],
            vec![7],
            vec![0, 5, 20, 21, 22, 23, 100],
            (0..200).map(|i| i * 3).collect(),
        ];
        for times in cases {
            let buf = encode(&times).unwrap();
            assert_eq!(decode(&buf, times.len()).unwrap(), times);
        }
    }

    #[test]
    fn regular_runs_compress_well() {
        let times: Vec<i64> = (0..100).map(|i| 1000 + i * 10).collect();
        let buf = encode(&times).unwrap();
        // Only two pairs kept.
        assert!(buf.len_bits() < 4 * 29);
        assert_eq!(decode(&buf, 100).unwrap(), times);
    }

    #[test]
    fn paper_ratio_example() {
        // §4.4: TED spends (17+12) × 6 bits on the running example.
        let times = vec![18205, 18445, 18686, 18926, 19165, 19405, 19645];
        let pairs = kept_pairs(&times);
        assert_eq!(pairs.len() * 29, 174);
    }

    #[test]
    fn multi_day() {
        let times = vec![2 * 86_400 + 5, 2 * 86_400 + 15, 2 * 86_400 + 30];
        let buf = encode(&times).unwrap();
        assert_eq!(decode(&buf, 3).unwrap(), times);
    }
}
