//! TED's multiple-bases matrix compression of edge sequences (§2.3).
//!
//! TED groups trajectories by the length of their edge-sequence binary
//! code, forms an `A×B` binary code matrix per group, and exploits the
//! observation that "the highest bit of each code in the matrix has a high
//! probability of being 0": per matrix *column* (entry position) the
//! values rarely use the full fixed width, so each column gets its own
//! *base* (its maximum value + 1) and each row is re-encoded as one
//! mixed-radix number over those bases — `⌈log2 Π bases⌉` bits per row
//! instead of `B` bits. The base table per group is the auxiliary
//! information the paper charges TED for, and the big-integer row
//! arithmetic is its "matrix operations" time cost.
//!
//! This pass is dataset-wide: all edge sequences must be resident before
//! grouping, which is exactly why the paper measures TED's peak memory
//! 1–2 orders of magnitude above UTCQ's streaming compressor.

use std::collections::HashMap;

use utcq_bitio::{BitBuf, BitReader, BitWriter, CodecError};

/// Minimal unsigned big integer (little-endian 64-bit limbs) — just
/// enough for mixed-radix row packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        Self { limbs: vec![0] }
    }

    /// `self = self * m + a` (both small).
    pub fn mul_add_small(&mut self, m: u64, a: u64) {
        let mut carry = a as u128;
        for limb in &mut self.limbs {
            let v = (*limb as u128) * (m as u128) + carry;
            *limb = v as u64;
            carry = v >> 64;
        }
        while carry > 0 {
            self.limbs.push(carry as u64);
            carry >>= 64;
        }
    }

    /// `self /= d`, returning the remainder.
    pub fn div_rem_small(&mut self, d: u64) -> u64 {
        debug_assert!(d > 0);
        let mut rem = 0u128;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | (*limb as u128);
            *limb = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        while self.limbs.len() > 1 && *self.limbs.last().unwrap() == 0 {
            self.limbs.pop();
        }
        rem as u64
    }

    /// Number of significant bits.
    pub fn bit_len(&self) -> usize {
        let top = self.limbs.len() - 1;
        if self.limbs[top] == 0 && top == 0 {
            return 0;
        }
        // Normalized form never stores a zero top limb except for 0.
        top * 64 + (64 - self.limbs[top].leading_zeros() as usize)
    }

    /// Writes the value MSB-first in exactly `width` bits.
    pub fn write_bits(&self, w: &mut BitWriter, width: usize) -> Result<(), CodecError> {
        debug_assert!(self.bit_len() <= width);
        for i in (0..width).rev() {
            let limb = i / 64;
            let bit = self
                .limbs
                .get(limb)
                .is_some_and(|&l| (l >> (i % 64)) & 1 == 1);
            w.push_bit(bit);
        }
        Ok(())
    }

    /// Reads a `width`-bit value MSB-first.
    pub fn read_bits(r: &mut BitReader<'_>, width: usize) -> Result<Self, CodecError> {
        let mut limbs = vec![0u64; width.div_ceil(64).max(1)];
        for i in (0..width).rev() {
            if r.read_bit()? {
                limbs[i / 64] |= 1 << (i % 64);
            }
        }
        let mut v = Self { limbs };
        while v.limbs.len() > 1 && *v.limbs.last().unwrap() == 0 {
            v.limbs.pop();
        }
        Ok(v)
    }
}

/// One group: edge sequences of identical length, mixed-radix packed.
#[derive(Debug, Clone)]
pub struct MatrixGroup {
    /// Shared sequence length (number of entries per row).
    pub n_entries: usize,
    /// Per-column bases (`max value + 1`).
    pub bases: Vec<u64>,
    /// Bits per packed row.
    pub row_width: usize,
    /// Packed rows, in insertion order.
    pub rows: BitBuf,
    /// Number of rows.
    pub n_rows: usize,
}

impl MatrixGroup {
    /// Auxiliary information size in bits: the base table (one value of
    /// the fixed entry width per column) plus the row-width descriptor.
    pub fn aux_bits(&self, w_e: u32) -> u64 {
        self.bases.len() as u64 * u64::from(w_e) + 16
    }

    /// Total compressed bits including auxiliary information.
    pub fn total_bits(&self, w_e: u32) -> u64 {
        self.aux_bits(w_e) + self.rows.len_bits() as u64
    }

    /// Unpacks row `idx` back into entries.
    pub fn decode_row(&self, idx: usize) -> Result<Vec<u32>, CodecError> {
        let mut r = self.rows.reader_at(idx * self.row_width);
        let mut v = BigUint::read_bits(&mut r, self.row_width)?;
        let mut entries = vec![0u32; self.n_entries];
        // Encoded by Horner over columns 0..n; decode in reverse.
        for j in (0..self.n_entries).rev() {
            entries[j] = v.div_rem_small(self.bases[j]) as u32;
        }
        Ok(entries)
    }
}

/// Builds the per-length groups from every edge sequence in the dataset
/// (the dataset-wide "binary code matrix" pass). Returns the groups plus,
/// per input sequence, its `(group, row)` coordinates.
pub fn build_groups(seqs: &[Vec<u32>]) -> (Vec<MatrixGroup>, Vec<(u32, u32)>) {
    // Group membership by length.
    let mut by_len: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, s) in seqs.iter().enumerate() {
        by_len.entry(s.len()).or_default().push(i);
    }
    let mut lens: Vec<usize> = by_len.keys().copied().collect();
    lens.sort_unstable();

    // Fixed width of one entry across the whole dataset (the matrices
    // are binary *code* matrices, so entries are already bit-encoded).
    let w_e = seqs
        .iter()
        .flat_map(|s| s.iter())
        .map(|&e| utcq_bitio::width_for_max(u64::from(e)))
        .max()
        .unwrap_or(1) as usize;

    let mut groups = Vec::with_capacity(lens.len());
    let mut coords = vec![(0u32, 0u32); seqs.len()];
    for len in lens {
        let members = &by_len[&len];
        // The explicit A×B binary code matrix of the paper (B = len·w_e
        // bits per row), materialized and transposed so the per-column
        // analysis runs over bit columns — faithful to TED's matrix
        // operations, which dominate its compression time at scale.
        let a = members.len();
        let b = len * w_e;
        let mut matrix = vec![0u8; a * b];
        for (row, &m) in members.iter().enumerate() {
            for (j, &e) in seqs[m].iter().enumerate() {
                for k in 0..w_e {
                    matrix[row * b + j * w_e + k] = ((e >> (w_e - 1 - k)) & 1) as u8;
                }
            }
        }
        let mut transposed = vec![0u8; a * b];
        for row in 0..a {
            for col in 0..b {
                transposed[col * a + row] = matrix[row * b + col];
            }
        }
        // Per entry-column maxima, reassembled from the bit columns.
        let mut bases = vec![1u64; len];
        for (j, base) in bases.iter_mut().enumerate() {
            for row in 0..a {
                let mut v = 0u64;
                for k in 0..w_e {
                    v = (v << 1) | u64::from(transposed[(j * w_e + k) * a + row]);
                }
                *base = (*base).max(v + 1);
            }
        }
        // Row width = bits of (Π bases − 1).
        let mut max_val = BigUint::zero();
        for &b in &bases {
            max_val.mul_add_small(b, b - 1);
        }
        let row_width = max_val.bit_len();
        let mut w = BitWriter::with_capacity(members.len() * row_width);
        for (row, &m) in members.iter().enumerate() {
            let mut v = BigUint::zero();
            for (j, &e) in seqs[m].iter().enumerate() {
                v.mul_add_small(bases[j], u64::from(e));
            }
            v.write_bits(&mut w, row_width).expect("width sized to fit");
            coords[m] = (groups.len() as u32, row as u32);
        }
        groups.push(MatrixGroup {
            n_entries: len,
            bases,
            row_width,
            rows: w.finish(),
            n_rows: members.len(),
        });
    }
    (groups, coords)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigint_mul_div_roundtrip() {
        let mut v = BigUint::zero();
        let digits = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
        let base = 10;
        for &d in &digits {
            v.mul_add_small(base, d);
        }
        let mut back = Vec::new();
        for _ in 0..digits.len() {
            back.push(v.div_rem_small(base));
        }
        back.reverse();
        assert_eq!(back, digits);
    }

    #[test]
    fn bigint_bit_io() {
        let mut v = BigUint::zero();
        for _ in 0..5 {
            v.mul_add_small(1 << 60, 12345);
        }
        let width = v.bit_len();
        let mut w = BitWriter::new();
        v.write_bits(&mut w, width + 7).unwrap();
        let buf = w.finish();
        let mut r = buf.reader();
        let back = BigUint::read_bits(&mut r, width + 7).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn groups_roundtrip() {
        let seqs = vec![
            vec![1, 2, 1, 2, 2, 0, 4, 1, 0],
            vec![1, 1, 1, 2, 2, 0, 4, 1, 0],
            vec![1, 2, 1, 2, 2, 0, 4, 1, 2],
            vec![3, 2, 1, 2, 2],
            vec![1, 1, 1, 1, 1],
        ];
        let (groups, coords) = build_groups(&seqs);
        assert_eq!(groups.len(), 2); // lengths 9 and 5
        for (i, s) in seqs.iter().enumerate() {
            let (g, row) = coords[i];
            assert_eq!(&groups[g as usize].decode_row(row as usize).unwrap(), s);
        }
    }

    #[test]
    fn mixed_radix_beats_fixed_width() {
        // Column maxima 1 or 2 → bases 2–3 → far fewer bits than 3 per
        // entry (the "highest bit mostly 0" observation).
        let seqs: Vec<Vec<u32>> = (0..16)
            .map(|i| (0..12).map(|j| u32::from((i + j) % 2 == 0)).collect())
            .collect();
        let (groups, _) = build_groups(&seqs);
        let fixed_bits = 16 * 12 * 3;
        assert!(groups[0].total_bits(3) < fixed_bits / 2);
    }

    #[test]
    fn single_sequence_group() {
        let seqs = vec![vec![7u32, 0, 7]];
        let (groups, coords) = build_groups(&seqs);
        assert_eq!(groups[0].decode_row(0).unwrap(), seqs[0]);
        assert_eq!(coords[0], (0, 0));
    }

    #[test]
    fn empty_input() {
        let (groups, coords) = build_groups(&[]);
        assert!(groups.is_empty());
        assert!(coords.is_empty());
    }
}
