//! TED baseline parameters.

use utcq_bitio::pddp::PddpCodec;

/// Parameters of the adapted TED compressor.
#[derive(Debug, Clone, Copy)]
pub struct TedParams {
    /// Relative-distance error bound `ηD` (shared with UTCQ).
    pub eta_d: f64,
    /// Probability error bound `ηp` (shared with UTCQ).
    pub eta_p: f64,
    /// Enable WAH bitmap compression of `T'` — the paper *omits* this in
    /// its comparison ("it is time consuming and it is also applicable to
    /// UTCQ"); kept as an ablation knob.
    pub wah_tflag: bool,
}

impl Default for TedParams {
    fn default() -> Self {
        Self {
            eta_d: 1.0 / 128.0,
            eta_p: 1.0 / 512.0,
            wah_tflag: false,
        }
    }
}

impl TedParams {
    /// PDDP codec for relative distances.
    pub fn d_codec(&self) -> PddpCodec {
        PddpCodec::from_error_bound(self.eta_d)
    }

    /// PDDP codec for probabilities.
    pub fn p_codec(&self) -> PddpCodec {
        PddpCodec::from_error_bound(self.eta_p)
    }
}
