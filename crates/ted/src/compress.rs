//! The adapted TED compressor.
//!
//! Per the paper's comparison setup (§6.1): the state-of-the-art TED
//! framework for *accurate* trajectories is applied to each uncertain
//! trajectory instance independently, with the same probability
//! compression as UTCQ and without bitmap compression of `T'`. The time
//! sequence (shared by Definition 5) is encoded once per trajectory with
//! TED's `(i, t)` pairs.
//!
//! Unlike UTCQ's streaming per-trajectory compressor, TED's edge-sequence
//! pass is dataset-wide (group by code length → matrix → multiple-bases),
//! so all edge sequences are buffered — the source of the paper's 1–2
//! orders of magnitude memory gap (Fig. 6/7 annotations).

use utcq_bitio::wah::WahBitmap;
use utcq_bitio::{golomb, BitBuf, CodecError};
use utcq_network::{RoadNetwork, VertexId};
use utcq_traj::size::SizeBreakdown;
use utcq_traj::{Dataset, TedView, UncertainTrajectory};

use crate::matrix::{build_groups, MatrixGroup};
use crate::params::TedParams;
use crate::time;

/// Compressed time flags: raw (the paper's comparison setup) or
/// WAH-compressed (ablation).
#[derive(Debug, Clone)]
pub enum TFlagData {
    /// Verbatim bit-string, one bit per entry.
    Raw(BitBuf),
    /// WAH bitmap (reference \[33\]).
    Wah(WahBitmap),
}

impl TFlagData {
    /// Stored size in bits.
    pub fn size_bits(&self) -> u64 {
        match self {
            TFlagData::Raw(b) => b.len_bits() as u64,
            TFlagData::Wah(w) => w.size_bits() as u64,
        }
    }

    /// Decodes to a bool vector.
    pub fn to_bits(&self) -> Vec<bool> {
        match self {
            TFlagData::Raw(b) => b.to_bits(),
            TFlagData::Wah(w) => w.decompress().to_bits(),
        }
    }
}

/// One TED-compressed instance.
#[derive(Debug, Clone)]
pub struct TedInstance {
    /// Start vertex (32 bits).
    pub sv: VertexId,
    /// Number of `E` entries.
    pub n_entries: u32,
    /// Matrix-group coordinates of the packed edge sequence.
    pub group: u32,
    /// Row within the group.
    pub row: u32,
    /// Full time-flag bit-string.
    pub tflag: TFlagData,
    /// PDDP distance codes.
    pub d_bits: BitBuf,
    /// PDDP probability code.
    pub p_code: u64,
}

/// One TED-compressed uncertain trajectory.
#[derive(Debug, Clone)]
pub struct TedTrajectory {
    /// Original id.
    pub id: u64,
    /// Number of shared timestamps.
    pub n_times: u32,
    /// TED `(i, t)` pair stream.
    pub t_bits: BitBuf,
    /// Instances in original order.
    pub instances: Vec<TedInstance>,
}

/// A TED-compressed dataset.
#[derive(Debug, Clone)]
pub struct TedCompressedDataset {
    /// Dataset label.
    pub name: String,
    /// Parameters used.
    pub params: TedParams,
    /// Fixed entry width.
    pub w_e: u32,
    /// Mixed-radix matrix groups (shared across the dataset).
    pub groups: Vec<MatrixGroup>,
    /// The trajectories.
    pub trajectories: Vec<TedTrajectory>,
    /// Compressed footprint.
    pub compressed: SizeBreakdown,
    /// Raw footprint.
    pub raw: SizeBreakdown,
    /// Peak buffered edge-sequence bits during the matrix pass — the
    /// memory-accounting figure for Figs. 6–7.
    pub peak_buffer_bits: u64,
}

impl TedCompressedDataset {
    /// Component-wise compression ratios (Table 8's TED row).
    pub fn ratios(&self) -> utcq_core_ratios::Ratios {
        let div = |num: u64, den: u64| {
            if den == 0 {
                f64::NAN
            } else {
                num as f64 / den as f64
            }
        };
        utcq_core_ratios::Ratios {
            total: div(self.raw.total(), self.compressed.total()),
            t: div(self.raw.t, self.compressed.t),
            e: div(
                self.raw.e + self.raw.sv,
                self.compressed.e + self.compressed.sv,
            ),
            d: div(self.raw.d, self.compressed.d),
            tflag: div(self.raw.tflag, self.compressed.tflag),
            p: div(self.raw.p, self.compressed.p),
        }
    }
}

/// Ratio struct mirroring `utcq_core::compress::Ratios` without taking a
/// dependency on the core crate (the baseline must stand alone).
pub mod utcq_core_ratios {
    /// Compression ratios per component.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Ratios {
        /// Overall.
        pub total: f64,
        /// Time sequence.
        pub t: f64,
        /// Edge sequences (incl. start vertices).
        pub e: f64,
        /// Relative distances.
        pub d: f64,
        /// Time flags.
        pub tflag: f64,
        /// Probabilities.
        pub p: f64,
    }
}

/// Compresses a dataset with the adapted TED.
pub fn compress_dataset(
    net: &RoadNetwork,
    ds: &Dataset,
    params: &TedParams,
) -> Result<TedCompressedDataset, CodecError> {
    let w_e = utcq_bitio::width_for_max(u64::from(net.max_out_degree()));
    let d_codec = params.d_codec();
    let p_codec = params.p_codec();

    // Phase 1: buffer every instance's view — the dataset-wide matrix
    // pass requires it (peak-memory accounting).
    let mut views: Vec<Vec<TedView>> = Vec::with_capacity(ds.trajectories.len());
    let mut all_seqs: Vec<Vec<u32>> = Vec::new();
    for tu in &ds.trajectories {
        let vs: Vec<TedView> = tu
            .instances
            .iter()
            .map(|i| TedView::from_instance(net, i))
            .collect();
        for v in &vs {
            all_seqs.push(v.entries.clone());
        }
        views.push(vs);
    }
    let peak_buffer_bits: u64 = all_seqs
        .iter()
        .map(|s| s.len() as u64 * u64::from(w_e))
        .sum();

    // Phase 2: group + matrix + multiple-bases compression.
    let (groups, coords) = build_groups(&all_seqs);

    // Phase 3: emit per-instance payloads and account sizes.
    let mut compressed = SizeBreakdown::default();
    let mut raw = SizeBreakdown::default();
    for g in &groups {
        compressed.e += g.total_bits(w_e);
    }
    let mut trajectories = Vec::with_capacity(ds.trajectories.len());
    let mut seq_cursor = 0usize;
    for (tu, vs) in ds.trajectories.iter().zip(views) {
        raw.add(&utcq_traj::size::uncompressed_bits(tu));
        let t_bits = time::encode(&tu.times)?;
        compressed.t +=
            t_bits.len_bits() as u64 + golomb::unsigned_len(tu.times.len() as u64) as u64;
        let mut instances = Vec::with_capacity(vs.len());
        for view in vs {
            let (group, row) = coords[seq_cursor];
            seq_cursor += 1;
            let flags = BitBuf::from_bits(&view.flags);
            let tflag = if params.wah_tflag {
                TFlagData::Wah(WahBitmap::compress(&flags))
            } else {
                TFlagData::Raw(flags)
            };
            let mut dw = utcq_bitio::BitWriter::new();
            for &rd in &view.rds {
                d_codec.encode(&mut dw, rd)?;
            }
            let d_bits = dw.finish();
            compressed.sv += 32;
            compressed.e += golomb::unsigned_len(view.entries.len() as u64) as u64;
            compressed.tflag += tflag.size_bits();
            compressed.d += d_bits.len_bits() as u64;
            compressed.p += u64::from(p_codec.width());
            instances.push(TedInstance {
                sv: view.sv,
                n_entries: view.entries.len() as u32,
                group,
                row,
                tflag,
                d_bits,
                p_code: p_codec.quantize(view.prob),
            });
        }
        trajectories.push(TedTrajectory {
            id: tu.id,
            n_times: tu.times.len() as u32,
            t_bits,
            instances,
        });
    }
    Ok(TedCompressedDataset {
        name: ds.name.clone(),
        params: *params,
        w_e,
        groups,
        trajectories,
        compressed,
        raw,
        peak_buffer_bits,
    })
}

/// Decompresses one TED instance.
pub fn decompress_instance(
    net: &RoadNetwork,
    tds: &TedCompressedDataset,
    inst: &TedInstance,
    n_times: usize,
) -> Result<utcq_traj::Instance, crate::TedError> {
    let d_codec = tds.params.d_codec();
    let p_codec = tds.params.p_codec();
    let entries = tds.groups[inst.group as usize].decode_row(inst.row as usize)?;
    let mut r = inst.d_bits.reader();
    let rds: Result<Vec<f64>, CodecError> = (0..n_times).map(|_| d_codec.decode(&mut r)).collect();
    let view = TedView {
        sv: inst.sv,
        entries,
        flags: inst.tflag.to_bits(),
        rds: rds?,
        prob: p_codec.dequantize(inst.p_code),
    };
    Ok(view.to_instance(net)?)
}

/// Decompresses one trajectory.
pub fn decompress_trajectory(
    net: &RoadNetwork,
    tds: &TedCompressedDataset,
    tt: &TedTrajectory,
) -> Result<UncertainTrajectory, crate::TedError> {
    let times = time::decode(&tt.t_bits, tt.n_times as usize)?;
    let instances = tt
        .instances
        .iter()
        .map(|i| decompress_instance(net, tds, i, tt.n_times as usize))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(UncertainTrajectory {
        id: tt.id,
        times,
        instances,
    })
}

/// Decompresses the whole dataset.
pub fn decompress_dataset(
    net: &RoadNetwork,
    tds: &TedCompressedDataset,
) -> Result<Dataset, crate::TedError> {
    Ok(Dataset {
        name: tds.name.clone(),
        default_interval: 0, // not stored by TED; irrelevant post-decode
        trajectories: tds
            .trajectories
            .iter()
            .map(|tt| decompress_trajectory(net, tds, tt))
            .collect::<Result<Vec<_>, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use utcq_traj::paper_fixture;

    #[test]
    fn paper_trajectory_roundtrip() {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        let tds = compress_dataset(&fx.example.net, &ds, &TedParams::default()).unwrap();
        let back = decompress_dataset(&fx.example.net, &tds).unwrap();
        let a = &ds.trajectories[0];
        let b = &back.trajectories[0];
        assert_eq!(a.times, b.times);
        for (x, y) in a.instances.iter().zip(&b.instances) {
            assert_eq!(x.path, y.path);
            assert_eq!(x.positions, y.positions); // dyadic rds → exact
            assert!((x.prob - y.prob).abs() <= 1.0 / 512.0);
        }
    }

    #[test]
    fn tflag_ratio_is_one() {
        // The comparison setup stores T' verbatim → ratio exactly 1.
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        let tds = compress_dataset(&fx.example.net, &ds, &TedParams::default()).unwrap();
        assert_eq!(tds.compressed.tflag, tds.raw.tflag);
        assert!((tds.ratios().tflag - 1.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_roundtrip_and_ratios() {
        let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 30, 17);
        let params = TedParams::default();
        let tds = compress_dataset(&net, &ds, &params).unwrap();
        let back = decompress_dataset(&net, &tds).unwrap();
        for (a, b) in ds.trajectories.iter().zip(&back.trajectories) {
            assert_eq!(a.times, b.times);
            assert_eq!(a.instances.len(), b.instances.len());
            for (x, y) in a.instances.iter().zip(&b.instances) {
                assert_eq!(x.path, y.path);
                for (p, q) in x.positions.iter().zip(&y.positions) {
                    assert_eq!(p.path_idx, q.path_idx);
                    assert!((p.rd - q.rd).abs() <= params.eta_d);
                }
            }
        }
        let r = tds.ratios();
        assert!(r.total > 1.5, "TED should still compress: {}", r.total);
        assert!(r.d > 8.0, "PDDP D ratio ≈ 9.14: {}", r.d);
        assert!((r.p - 64.0 / 9.0).abs() < 1e-9);
        assert!(tds.peak_buffer_bits > 0);
    }

    #[test]
    fn wah_ablation_compresses_flags() {
        let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 20, 18);
        let raw = compress_dataset(&net, &ds, &TedParams::default()).unwrap();
        let wah = compress_dataset(
            &net,
            &ds,
            &TedParams {
                wah_tflag: true,
                ..TedParams::default()
            },
        )
        .unwrap();
        // WAH is word-aligned: tiny flag strings often inflate, so only
        // check the round-trip, not the size direction.
        let back = decompress_dataset(&net, &wah).unwrap();
        assert_eq!(back.trajectories.len(), ds.trajectories.len());
        assert!(raw.compressed.tflag > 0 && wah.compressed.tflag > 0);
    }
}
