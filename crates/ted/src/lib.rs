//! The TED baseline (Yang et al., "A novel representation and compression
//! for queries on trajectories in road networks", TKDE 2017 — reference
//! \[40\] of the UTCQ paper), adapted to uncertain trajectories exactly as
//! the paper's comparison does (§6.1): each instance is compressed
//! independently as an accurate trajectory; probabilities use the same
//! PDDP bound as UTCQ; bitmap compression of `T'` is off by default.
//!
//! Components:
//!
//! * [`time`] — the `(i, t)` pair representation of time sequences;
//! * [`matrix`] — group-by-length binary code matrices with
//!   multiple-bases (mixed-radix) compression of edge sequences;
//! * [`compress`] — the dataset-wide compressor (buffers all edge
//!   sequences, the paper's memory-gap culprit) and its inverse;
//! * [`store`] — a plain spatio-temporal index with full per-instance
//!   decompression for where/when/range queries.

pub mod compress;
pub mod matrix;
pub mod params;
pub mod store;
pub mod time;

pub use compress::{
    compress_dataset, decompress_dataset, decompress_trajectory, TedCompressedDataset,
};
pub use params::TedParams;
pub use store::{TedStore, TedStoreParams};

/// Errors from the TED baseline.
#[derive(Debug)]
pub enum TedError {
    /// Bit-level decode failure.
    Codec(utcq_bitio::CodecError),
    /// Decoded view did not resolve on the network.
    View(utcq_traj::TedViewError),
}

impl From<utcq_bitio::CodecError> for TedError {
    fn from(e: utcq_bitio::CodecError) -> Self {
        TedError::Codec(e)
    }
}

impl From<utcq_traj::TedViewError> for TedError {
    fn from(e: utcq_traj::TedViewError) -> Self {
        TedError::View(e)
    }
}

impl std::fmt::Display for TedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TedError::Codec(e) => write!(f, "codec error: {e}"),
            TedError::View(e) => write!(f, "view error: {e}"),
        }
    }
}

impl std::error::Error for TedError {}
