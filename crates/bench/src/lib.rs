//! Experiment harness reproducing the paper's evaluation (§6).
//!
//! One runner per table/figure (see `src/bin/`), built on shared
//! utilities: calibrated dataset construction ([`datasets`]), wall-clock
//! and modeled-memory measurement ([`measure`]), query workload
//! generation ([`workload`]), and table/JSON reporting ([`report`]).
//!
//! Scale: the paper's datasets hold 0.27–1.9 M trajectories; the default
//! harness scale is laptop-sized (hundreds of trajectories per dataset)
//! and controlled by the `UTCQ_TRAJS` environment variable. Compression
//! *ratios* are scale-independent (paper Fig. 12a), so the shapes carry.

pub mod datasets;
pub mod measure;
pub mod report;
pub mod workload;

pub use datasets::{build, BuiltDataset};
pub use measure::timed;
pub use report::Table;
