//! Runs every experiment binary in sequence (the full paper
//! reproduction).
//!
//! Run: `cargo run --release -p utcq-bench --bin run_all`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig4_stats",
    "table8_compression",
    "fig6_instances",
    "fig7_length",
    "fig8_pivots",
    "fig9_partition",
    "fig10_where_when",
    "fig11_error_bound",
    "fig12_scalability",
    "ablation",
    "multiorder",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n########## {name} ##########");
        let path = dir.join(name);
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("experiment {name} failed: {other:?}");
                failures.push(*name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed. JSON results in target/experiments/.");
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
