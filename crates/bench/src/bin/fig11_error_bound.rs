//! Figure 11: effect of the PDDP error bounds on query accuracy —
//! average difference (meters for where, seconds for when) vs `ηD`, and
//! F1 score vs `ηp` (CD & HZ).
//!
//! Run: `cargo run --release -p utcq-bench --bin fig11_error_bound`

use std::collections::HashSet;

use std::sync::Arc;
use utcq_bench::report::{f3, Table};
use utcq_bench::{build, datasets, workload};
use utcq_core::query::PageRequest;
use utcq_core::stiu::StiuParams;
use utcq_core::Store;
use utcq_core::{oracle, CompressParams};

fn main() {
    let n_queries = 150;
    let mut diff_table = Table::new(
        "Fig. 11a — avg difference vs ηD (paper: ≤ ~6 m where, ≤ ~0.45 s when; shrinks with ηD)",
        &["dataset", "ηD", "where avg diff (m)", "when avg diff (s)"],
    );
    let mut f1_table = Table::new(
        "Fig. 11b — F1 vs ηp (paper: ≥ 0.96, ≈1 at tight bounds)",
        &["dataset", "ηp", "where F1", "when F1"],
    );
    for (i, profile) in [utcq_datagen::profile::cd(), utcq_datagen::profile::hz()]
        .iter()
        .enumerate()
    {
        let built = build(profile, 1100 + i as u64);
        let wq = workload::where_queries(&built.ds, n_queries, 111);
        let nq = workload::when_queries(&built.ds, n_queries, 112);
        let by_id: std::collections::HashMap<u64, &utcq_traj::UncertainTrajectory> =
            built.ds.trajectories.iter().map(|t| (t.id, t)).collect();

        // Sweep ηD with ηp at its default.
        for k in [128u32, 64, 32, 16, 8] {
            let params = CompressParams {
                eta_d: 1.0 / f64::from(k),
                ..datasets::paper_params(profile)
            };
            let store = Store::build(
                Arc::new(built.net.clone()),
                &built.ds,
                params,
                StiuParams::default(),
            )
            .unwrap();
            let mut where_err = 0.0f64;
            let mut where_n = 0usize;
            for q in &wq {
                let want = oracle::where_query(&built.net, by_id[&q.traj_id], q.t, q.alpha);
                let got = store
                    .where_query(q.traj_id, q.t, q.alpha, PageRequest::all())
                    .unwrap()
                    .into_items();
                for w in &want {
                    if let Some(g) = got.iter().find(|g| g.instance == w.instance) {
                        let pw = built.net.point_on_edge(w.loc.edge, w.loc.ndist);
                        let pg = built.net.point_on_edge(g.loc.edge, g.loc.ndist);
                        where_err += pw.dist(pg);
                        where_n += 1;
                    }
                }
            }
            let mut when_err = 0.0f64;
            let mut when_n = 0usize;
            for q in &nq {
                let want = oracle::when_query(&built.net, by_id[&q.traj_id], q.edge, q.rd, q.alpha);
                let got = store
                    .when_query(q.traj_id, q.edge, q.rd, q.alpha, PageRequest::all())
                    .unwrap()
                    .into_items();
                for w in &want {
                    // Closest answer of the same instance.
                    if let Some(g) = got
                        .iter()
                        .filter(|g| g.instance == w.instance)
                        .min_by(|a, b| (a.time - w.time).abs().total_cmp(&(b.time - w.time).abs()))
                    {
                        when_err += (g.time - w.time).abs();
                        when_n += 1;
                    }
                }
            }
            diff_table.row(vec![
                profile.name.to_string(),
                format!("1/{k}"),
                f3(where_err / where_n.max(1) as f64),
                f3(when_err / when_n.max(1) as f64),
            ]);
        }

        // Sweep ηp with ηD at its default.
        for k in [2048u32, 1024, 512, 256, 128] {
            let params = CompressParams {
                eta_p: 1.0 / f64::from(k),
                ..datasets::paper_params(profile)
            };
            let store = Store::build(
                Arc::new(built.net.clone()),
                &built.ds,
                params,
                StiuParams::default(),
            )
            .unwrap();
            let f1 = |tp: usize, fp: usize, fn_: usize| -> f64 {
                if tp == 0 {
                    return if fp == 0 && fn_ == 0 { 1.0 } else { 0.0 };
                }
                let p = tp as f64 / (tp + fp) as f64;
                let r = tp as f64 / (tp + fn_) as f64;
                2.0 * p * r / (p + r)
            };
            let (mut wtp, mut wfp, mut wfn) = (0usize, 0usize, 0usize);
            for q in &wq {
                let want: HashSet<u32> =
                    oracle::where_query(&built.net, by_id[&q.traj_id], q.t, q.alpha)
                        .iter()
                        .map(|h| h.instance)
                        .collect();
                let got: HashSet<u32> = store
                    .where_query(q.traj_id, q.t, q.alpha, PageRequest::all())
                    .unwrap()
                    .items
                    .iter()
                    .map(|h| h.instance)
                    .collect();
                wtp += want.intersection(&got).count();
                wfp += got.difference(&want).count();
                wfn += want.difference(&got).count();
            }
            let (mut ntp, mut nfp, mut nfn) = (0usize, 0usize, 0usize);
            for q in &nq {
                let want: HashSet<u32> =
                    oracle::when_query(&built.net, by_id[&q.traj_id], q.edge, q.rd, q.alpha)
                        .iter()
                        .map(|h| h.instance)
                        .collect();
                let got: HashSet<u32> = store
                    .when_query(q.traj_id, q.edge, q.rd, q.alpha, PageRequest::all())
                    .unwrap()
                    .items
                    .iter()
                    .map(|h| h.instance)
                    .collect();
                ntp += want.intersection(&got).count();
                nfp += got.difference(&want).count();
                nfn += want.difference(&got).count();
            }
            f1_table.row(vec![
                profile.name.to_string(),
                format!("1/{k}"),
                f3(f1(wtp, wfp, wfn)),
                f3(f1(ntp, nfp, nfn)),
            ]);
        }
    }
    diff_table.print();
    diff_table.save_json("fig11a_avg_difference");
    f1_table.print();
    f1_table.save_json("fig11b_f1");
}
