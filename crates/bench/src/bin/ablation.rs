//! Ablation study of UTCQ's design choices (DESIGN.md §5):
//!
//! 1. **SIAR + improved Exp-Golomb** vs TED's `(i, t)` pairs for `T`;
//! 2. **FJD-driven greedy reference selection** vs cheaper strategies
//!    (no referential compression, most-probable-as-reference, first
//!    instance as reference);
//! 3. **StIU + lemma filtering** vs full decompression per query;
//! 4. **WAH bitmap compression of `T'`** (the knob TED's authors had and
//!    the paper turned off);
//! 5. **frequency-adaptive distance codes** (canonical Huffman, standing
//!    in for TED's unpublished PDDP-tree dictionary) vs fixed-width PDDP.
//!
//! Run: `cargo run --release -p utcq-bench --bin ablation`

use std::collections::HashMap;

use std::sync::Arc;
use utcq_bench::measure::fmt_duration;
use utcq_bench::report::{f2, Table};
use utcq_bench::{build, datasets, timed, workload};
use utcq_core::compress::compress_trajectory_with_roles;
use utcq_core::query::PageRequest;
use utcq_core::reference::Role;
use utcq_core::siar;
use utcq_core::stiu::StiuParams;
use utcq_core::Store;
use utcq_traj::TedView;

fn main() {
    siar_vs_pairs();
    reference_strategies();
    index_vs_full_decompression();
    wah_ablation();
    pddp_tree_ablation();
}

/// Ablation 1: the `T` stream alone, SIAR vs TED pairs.
fn siar_vs_pairs() {
    let mut table = Table::new(
        "Ablation 1 — time-sequence encoding (bits per timestamp; raw = 32)",
        &[
            "dataset",
            "SIAR+ExpGolomb",
            "TED (i,t) pairs",
            "SIAR advantage",
        ],
    );
    for (i, profile) in datasets::paper_profiles().iter().enumerate() {
        let built = build(profile, 1300 + i as u64);
        let mut siar_bits = 0usize;
        let mut pair_bits = 0usize;
        let mut n = 0usize;
        for tu in &built.ds.trajectories {
            siar_bits += siar::encode(&tu.times, profile.default_interval)
                .unwrap()
                .len_bits();
            pair_bits += utcq_ted::time::encode(&tu.times).unwrap().len_bits();
            n += tu.times.len();
        }
        table.row(vec![
            profile.name.to_string(),
            f2(siar_bits as f64 / n as f64),
            f2(pair_bits as f64 / n as f64),
            format!("{:.2}x", pair_bits as f64 / siar_bits as f64),
        ]);
    }
    table.print();
    table.save_json("ablation1_siar");
}

/// Ablation 2: reference-selection strategies (total compressed bits).
fn reference_strategies() {
    let mut table = Table::new(
        "Ablation 2 — reference selection (total compressed bits, lower is better)",
        &[
            "dataset",
            "FJD greedy (Alg.1)",
            "most-probable ref",
            "first-as-ref",
            "no referential",
        ],
    );
    for (i, profile) in datasets::paper_profiles().iter().enumerate() {
        let built = build(profile, 1400 + i as u64);
        let params = datasets::paper_params(profile);
        let mut totals = [0u64; 4];
        for tu in &built.ds.trajectories {
            let views: Vec<TedView> = tu
                .instances
                .iter()
                .map(|inst| TedView::from_instance(&built.net, inst))
                .collect();
            let svs: Vec<_> = views.iter().map(|v| v.sv).collect();

            // Strategy A: the paper's Algorithm 1 (inside compress).
            let (_, s) = utcq_core::compress_trajectory(&built.net, tu, &params).unwrap();
            totals[0] += s.total();
            // Strategy B: per start vertex, the most probable instance is
            // the reference for all others.
            totals[1] += with_group_leader(&built.net, tu, &params, &svs, |group| {
                group
                    .iter()
                    .copied()
                    .max_by(|&a, &b| tu.instances[a].prob.total_cmp(&tu.instances[b].prob))
                    .unwrap()
            });
            // Strategy C: the first instance of each start-vertex group.
            totals[2] += with_group_leader(&built.net, tu, &params, &svs, |group| group[0]);
            // Strategy D: no referential compression at all.
            let roles = vec![Role::Reference; tu.instances.len()];
            let (_, s) = compress_trajectory_with_roles(&built.net, tu, &params, &roles).unwrap();
            totals[3] += s.total();
        }
        table.row(vec![
            profile.name.to_string(),
            totals[0].to_string(),
            totals[1].to_string(),
            totals[2].to_string(),
            totals[3].to_string(),
        ]);
    }
    table.print();
    table.save_json("ablation2_reference");
}

/// Helper: one reference per start-vertex group, chosen by `pick`.
fn with_group_leader(
    net: &utcq_network::RoadNetwork,
    tu: &utcq_traj::UncertainTrajectory,
    params: &utcq_core::CompressParams,
    svs: &[utcq_network::VertexId],
    pick: impl Fn(&[usize]) -> usize,
) -> u64 {
    let mut groups: HashMap<utcq_network::VertexId, Vec<usize>> = HashMap::new();
    for (i, &sv) in svs.iter().enumerate() {
        groups.entry(sv).or_default().push(i);
    }
    let mut roles = vec![Role::Reference; svs.len()];
    for group in groups.values() {
        let leader = pick(group);
        for &m in group {
            if m != leader {
                roles[m] = Role::NonReference { of: leader };
            }
        }
    }
    let (_, s) = compress_trajectory_with_roles(net, tu, params, &roles).unwrap();
    s.total()
}

/// Ablation 3: StIU-guided queries vs full decompression.
fn index_vs_full_decompression() {
    let mut table = Table::new(
        "Ablation 3 — when-query: StIU + Lemma 1 vs full decompression",
        &["dataset", "with index", "full decompression", "speedup"],
    );
    for (i, profile) in datasets::paper_profiles().iter().enumerate() {
        let built = build(profile, 1500 + i as u64);
        let params = datasets::paper_params(profile);
        let store = Store::build(
            Arc::new(built.net.clone()),
            &built.ds,
            params,
            StiuParams::default(),
        )
        .unwrap();
        let queries = workload::when_queries(&built.ds, 200, 131);
        let (_, indexed) = timed(|| {
            for q in &queries {
                let _ = store
                    .when_query(q.traj_id, q.edge, q.rd, q.alpha, PageRequest::all())
                    .unwrap();
            }
        });
        // Full decompression path: decompress the whole trajectory and
        // run the oracle on it.
        let snap = store.snapshot();
        let idx_of: HashMap<u64, usize> = snap
            .compressed()
            .trajectories
            .iter()
            .enumerate()
            .map(|(j, ct)| (ct.id, j))
            .collect();
        let (_, full) = timed(|| {
            for q in &queries {
                let j = idx_of[&q.traj_id];
                let tu = utcq_core::decompress_trajectory(
                    &built.net,
                    &snap.compressed().trajectories[j],
                    snap.compressed().w_e,
                    &params,
                )
                .unwrap();
                let _ = utcq_core::oracle::when_query(&built.net, &tu, q.edge, q.rd, q.alpha);
            }
        });
        table.row(vec![
            profile.name.to_string(),
            fmt_duration(indexed),
            fmt_duration(full),
            format!(
                "{:.2}x",
                full.as_secs_f64() / indexed.as_secs_f64().max(1e-12)
            ),
        ]);
    }
    table.print();
    table.save_json("ablation3_index");
}

/// Ablation 5: a frequency-adaptive distance code (canonical Huffman —
/// the stand-in for TED's unpublished PDDP-tree dictionary) vs the
/// fixed-width PDDP quantizer used everywhere else.
fn pddp_tree_ablation() {
    use utcq_bitio::huffman::Huffman;
    let mut table = Table::new(
        "Ablation 5 — distance codes: fixed-width PDDP vs Huffman over quantized values",
        &[
            "dataset",
            "fixed-width bits",
            "huffman bits (+table)",
            "gain",
        ],
    );
    for (i, profile) in datasets::paper_profiles().iter().enumerate() {
        let built = build(profile, 1800 + i as u64);
        let d_codec = utcq_bitio::pddp::PddpCodec::from_error_bound(1.0 / 128.0);
        let mut freqs: std::collections::HashMap<u64, u64> = HashMap::new();
        let mut count = 0u64;
        for tu in &built.ds.trajectories {
            for inst in &tu.instances {
                for &rd in &inst.rds() {
                    *freqs.entry(d_codec.quantize(rd)).or_insert(0) += 1;
                    count += 1;
                }
            }
        }
        let h = Huffman::build(&freqs).expect("non-empty dataset");
        let huff_bits: u64 = freqs
            .iter()
            .map(|(sym, n)| u64::from(h.code_len(*sym).unwrap()) * n)
            .sum::<u64>()
            + h.table_bits(7);
        let fixed_bits = count * 7;
        table.row(vec![
            profile.name.to_string(),
            fixed_bits.to_string(),
            huff_bits.to_string(),
            format!(
                "{:.1}%",
                100.0 * (fixed_bits as f64 - huff_bits as f64) / fixed_bits as f64
            ),
        ]);
    }
    table.print();
    table.save_json("ablation5_pddp_tree");
}

/// Ablation 4: WAH bitmap compression of `T'` in the TED baseline.
fn wah_ablation() {
    let mut table = Table::new(
        "Ablation 4 — TED T' storage: raw vs WAH (the paper's omitted knob)",
        &[
            "dataset",
            "raw T' bits",
            "WAH T' bits",
            "WAH compress time factor",
        ],
    );
    for (i, profile) in datasets::paper_profiles().iter().enumerate() {
        let built = build(profile, 1600 + i as u64);
        let base = datasets::paper_ted_params(profile);
        let (raw, t_raw) =
            timed(|| utcq_ted::compress_dataset(&built.net, &built.ds, &base).unwrap());
        let wah_params = utcq_ted::TedParams {
            wah_tflag: true,
            ..base
        };
        let (wah, t_wah) =
            timed(|| utcq_ted::compress_dataset(&built.net, &built.ds, &wah_params).unwrap());
        table.row(vec![
            profile.name.to_string(),
            raw.compressed.tflag.to_string(),
            wah.compressed.tflag.to_string(),
            f2(t_wah.as_secs_f64() / t_raw.as_secs_f64().max(1e-12)),
        ]);
    }
    table.print();
    table.save_json("ablation4_wah");
}
