//! Figure 10: probabilistic where & when query time, UTCQ vs TED, on all
//! three datasets.
//!
//! Run: `cargo run --release -p utcq-bench --bin fig10_where_when`

use std::sync::Arc;
use utcq_bench::measure::fmt_duration;
use utcq_bench::report::Table;
use utcq_bench::{build, datasets, timed, workload};
use utcq_core::query::PageRequest;
use utcq_core::stiu::StiuParams;
use utcq_core::Store;
use utcq_ted::{TedStore, TedStoreParams};

fn main() {
    let n_queries = 300;
    let mut table = Table::new(
        "Fig. 10 — where/when query time (paper: UTCQ faster on both; batch totals below)",
        &["dataset", "query", "UTCQ", "TED", "speedup"],
    );
    for (i, profile) in datasets::paper_profiles().iter().enumerate() {
        let built = build(profile, 1000 + i as u64);
        let params = datasets::paper_params(profile);
        let store = Store::build(
            Arc::new(built.net.clone()),
            &built.ds,
            params,
            StiuParams {
                partition_s: 900,
                grid_n: 32,
            },
        )
        .unwrap();
        let tstore = TedStore::build(
            &built.net,
            &built.ds,
            datasets::paper_ted_params(profile),
            TedStoreParams {
                partition_s: 900,
                grid_n: 32,
            },
        )
        .unwrap();

        let wq = workload::where_queries(&built.ds, n_queries, 101);
        let (_, u) = timed(|| {
            for q in &wq {
                let _ = store
                    .where_query(q.traj_id, q.t, q.alpha, PageRequest::all())
                    .unwrap();
            }
        });
        let (_, t) = timed(|| {
            for q in &wq {
                let _ = tstore.where_query(q.traj_id, q.t, q.alpha).unwrap();
            }
        });
        table.row(vec![
            profile.name.to_string(),
            "where".into(),
            fmt_duration(u),
            fmt_duration(t),
            format!("{:.2}x", t.as_secs_f64() / u.as_secs_f64().max(1e-12)),
        ]);

        let nq = workload::when_queries(&built.ds, n_queries, 102);
        let (_, u) = timed(|| {
            for q in &nq {
                let _ = store
                    .when_query(q.traj_id, q.edge, q.rd, q.alpha, PageRequest::all())
                    .unwrap();
            }
        });
        let (_, t) = timed(|| {
            for q in &nq {
                let _ = tstore.when_query(q.traj_id, q.edge, q.rd, q.alpha).unwrap();
            }
        });
        table.row(vec![
            profile.name.to_string(),
            "when".into(),
            fmt_duration(u),
            fmt_duration(t),
            format!("{:.2}x", t.as_secs_f64() / u.as_secs_f64().max(1e-12)),
        ]);
    }
    table.print();
    table.save_json("fig10_where_when");
}
