//! Offline query-latency harness emitting a machine-readable
//! `BENCH_queries.json`, so successive PRs leave a perf trajectory.
//!
//! Measures the **median** ns/op for the three probabilistic query types
//! in three cache modes on one shared [`utcq_core::Store`]:
//!
//! * **cold** — the decode cache is cleared before every pass: each pass
//!   re-pays every reference/instance/time-stream decode;
//! * **warm** — the cache keeps the workload's decoded working set (the
//!   steady state of a serving process);
//! * **nocache** — the cache budget is set to `0`: the pure overhead
//!   floor with no memoization at all.
//!
//! A second section runs the same warm workload on a
//! [`utcq_core::ShardedStore`]
//! (`UTCQ_SHARDS` partitions, default 4, `ByTime` routing) and compares
//! `par_range_query` throughput 1-shard vs N-shard, so the JSON tracks
//! what the sharding layer costs (fan-out/merge) and buys (independent
//! partitions) release over release.
//!
//! An `"open"` section times `ShardedStore::read_with` on the same v3
//! container bytes with sequential vs parallel per-shard blob
//! deserialization (interleaved), tracking what the work-queue open
//! buys release over release. Since tiny containers fall back to a
//! sequential open regardless of the flag (see
//! `utcq_core::shard::PARALLEL_OPEN_MIN_BYTES`), the section also
//! reports `"parallel_effective"` — which path actually ran. A paired
//! `"open_large"` section repeats the measurement on a container of
//! cheap trajectories sized *past* the threshold, so both the
//! sequential fallback and the real parallel open are exercised every
//! run.
//!
//! An `"ingest"` section times the live writer path — median ns per
//! published batch with durability off, a write-ahead log at
//! `FsyncPolicy::EveryN(8)`, and at `FsyncPolicy::Always` — tracking
//! what the log's append+sync window costs release over release.
//!
//! A third section (`"serve"` — bench_serve) round-trips the warm
//! where/when workloads through an in-process
//! `utcq_core::serve::Server` over one loopback TCP connection,
//! measuring the request→response median latency and throughput of the
//! `PROTOCOL.md` wire path on top of the warm store.
//!
//! A `"serve_load"` section measures the production-concurrency path:
//! single-connection **pipelined** throughput ([`PIPELINE_DEPTH`]
//! requests in flight before the first response is read), and an
//! **open-loop** traffic replay — [`LOAD_CONNS`] connections offering a
//! fixed aggregate rate on an absolute schedule (never throttled by
//! response latency, so server-side queueing shows up as client-observed
//! latency) while [`LOAD_IDLE_CONNS`] additional connections sit idle —
//! reporting achieved qps and p50/p99/p999 latency.
//! `UTCQ_BENCH_LOAD_QPS` overrides the offered rate;
//! `UTCQ_BENCH_P99_BOUND_MS`, when set, turns the measured p99 into a
//! CI gate (non-zero exit past the bound).
//!
//! ```text
//! cargo run --release -p utcq_bench --bin bench_queries \
//!     [-- --smoke] [--out FILE] [--baseline FILE]
//! ```
//!
//! `--smoke` (or `UTCQ_BENCH_SMOKE=1`) runs one pass per mode — the CI
//! mode that only proves the harness works. `UTCQ_TRAJS` scales the
//! dataset (default 80 trajectories); `UTCQ_SHARDS` the shard count.
//!
//! `--baseline FILE` diffs the freshly measured warm where/when medians
//! against a previously committed `BENCH_queries.json` and exits
//! non-zero on a > [`REGRESSION_FACTOR`]× regression — the CI gate that
//! keeps the perf trajectory monotone-ish.
//!
//! Two absolute gates cover the range overhaul:
//! `UTCQ_BENCH_RANGE_WARM_BOUND` (ns/op ceiling on the warm range
//! median — the range-result cache must keep carrying the warm path)
//! and `UTCQ_BENCH_PAR_RANGE_RATIO_BOUND` (floor on
//! `nshard_over_1shard` — the sharded batch engine must keep beating
//! the per-query path).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use utcq_bench::{datasets, workload};
use utcq_core::query::PageRequest;
use utcq_core::shard::ByTime;
use utcq_core::stiu::StiuParams;
use utcq_core::{QueryTarget, RangeQuery, ShardedStore, Store, StoreBuilder};

const SEED: u64 = 3000;

/// A fresh measurement must stay within this factor of the baseline's
/// warm where/when medians. The committed baseline carries absolute
/// ns/op from whatever machine produced it, so the factor doubles as
/// hardware headroom; `UTCQ_BENCH_BASELINE_FACTOR` overrides it when a
/// CI runner class is persistently slower than the baseline machine.
const REGRESSION_FACTOR: f64 = 2.0;

fn regression_factor() -> f64 {
    std::env::var("UTCQ_BENCH_BASELINE_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(REGRESSION_FACTOR)
}

struct ModeResult {
    cold_ns: f64,
    warm_ns: f64,
    nocache_ns: f64,
}

impl ModeResult {
    fn warm_speedup(&self) -> f64 {
        if self.warm_ns > 0.0 {
            self.cold_ns / self.warm_ns
        } else {
            0.0
        }
    }
}

/// Smoke mode still takes this many samples per mode: the regression
/// gate compares medians, and a median of one sample would reintroduce
/// exactly the single-deschedule flakiness the median exists to absorb.
const SMOKE_PASSES: usize = 7;

/// Median of a sample set (ns/op). The one definition both [`measure`]
/// and [`measure_pair`] — and therefore the CI regression gate — use.
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Median ns/op of `pass` (which runs `ops` queries), measured over
/// enough passes to fill the target time (a fixed handful in smoke
/// mode). `prepare` runs before *each* pass, outside the timed region.
/// The median (not the mean) is what the regression gate compares: one
/// descheduled pass must not fail CI.
fn measure(ops: usize, smoke: bool, mut prepare: impl FnMut(), mut pass: impl FnMut()) -> f64 {
    let target = if smoke {
        Duration::ZERO // sample count governed by SMOKE_PASSES instead
    } else {
        Duration::from_millis(400)
    };
    // Untimed warmup pass: page in code and (for warm modes) the cache.
    prepare();
    pass();
    let mut spent = Duration::ZERO;
    let mut samples: Vec<f64> = Vec::new();
    loop {
        prepare();
        let t0 = Instant::now();
        pass();
        let dt = t0.elapsed();
        spent += dt;
        samples.push(dt.as_nanos() as f64 / ops as f64);
        if (spent >= target && samples.len() >= SMOKE_PASSES) || samples.len() >= 50_000 {
            break;
        }
    }
    median(samples)
}

/// Median ns/op of two alternatives measured **interleaved** (A, B, A,
/// B, …): slow drift of the host (frequency scaling, noisy neighbors)
/// hits both sample sets equally, so their *ratio* stays meaningful
/// even when absolute numbers wander between runs.
fn measure_pair(
    ops: usize,
    smoke: bool,
    mut pass_a: impl FnMut(),
    mut pass_b: impl FnMut(),
) -> (f64, f64) {
    let target = if smoke {
        Duration::ZERO
    } else {
        Duration::from_millis(800)
    };
    pass_a();
    pass_b(); // untimed warmup
    let mut spent = Duration::ZERO;
    let mut samples_a: Vec<f64> = Vec::new();
    let mut samples_b: Vec<f64> = Vec::new();
    loop {
        let t0 = Instant::now();
        pass_a();
        let da = t0.elapsed();
        let t1 = Instant::now();
        pass_b();
        let db = t1.elapsed();
        spent += da + db;
        samples_a.push(da.as_nanos() as f64 / ops as f64);
        samples_b.push(db.as_nanos() as f64 / ops as f64);
        if (spent >= target && samples_a.len() >= SMOKE_PASSES) || samples_a.len() >= 50_000 {
            break;
        }
    }
    (median(samples_a), median(samples_b))
}

/// Requests written per flush before reading responses back on the
/// pipelined single-connection measurement.
const PIPELINE_DEPTH: usize = 64;

/// Active (request-sending) connections in the open-loop replay.
const LOAD_CONNS: usize = 16;

/// Additional connections held open but silent for the whole replay —
/// the event loop must keep them for free.
const LOAD_IDLE_CONNS: usize = 64;

/// One request→response per flush: the sequential wire round-trip.
fn serve_roundtrip(
    reader: &mut impl std::io::BufRead,
    writer: &mut impl std::io::Write,
    lines: &[String],
) {
    let mut response = String::new();
    for line in lines {
        writer.write_all(line.as_bytes()).expect("serve send");
        writer.write_all(b"\n").expect("serve send");
        writer.flush().expect("serve flush");
        response.clear();
        reader.read_line(&mut response).expect("serve recv");
        assert!(response.contains("\"ok\":true"), "serve error: {response}");
    }
}

/// `depth` requests per flush, responses read back afterwards — the
/// protocol-pipelining path (`PROTOCOL.md`: responses arrive in request
/// order, so a plain counted read-back is enough).
fn serve_pipelined(
    reader: &mut impl std::io::BufRead,
    writer: &mut impl std::io::Write,
    lines: &[String],
    depth: usize,
) {
    let mut response = String::new();
    for chunk in lines.chunks(depth) {
        for line in chunk {
            writer.write_all(line.as_bytes()).expect("serve send");
            writer.write_all(b"\n").expect("serve send");
        }
        writer.flush().expect("serve flush");
        for _ in chunk {
            response.clear();
            reader.read_line(&mut response).expect("serve recv");
            assert!(response.contains("\"ok\":true"), "serve error: {response}");
        }
    }
}

struct LoadReport {
    target_qps: f64,
    achieved_qps: f64,
    sent: usize,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

/// Open-loop traffic replay against a running server.
///
/// `conns` writer threads each offer `target_qps / conns` on an
/// **absolute** schedule (requests due at `start + i/rate`, sent in
/// catch-up batches on a ~1 ms tick, self-correcting for sleep
/// overshoot) and never wait for responses — so when the server falls
/// behind, the offered rate stays fixed and the backlog surfaces as
/// client-observed latency, exactly what a closed-loop harness hides.
/// A paired reader thread per connection timestamps responses against
/// the matching send time (responses are in request order). `idle`
/// extra connections stay open and silent throughout. Returns achieved
/// throughput plus p50/p99/p999 of the per-request latency.
fn open_loop_load(
    addr: std::net::SocketAddr,
    lines: &[String],
    conns: usize,
    idle: usize,
    target_qps: f64,
    duration: Duration,
) -> LoadReport {
    use std::collections::VecDeque;
    use std::io::{BufRead as _, BufReader, BufWriter, Write as _};
    use std::net::{Shutdown, TcpStream};
    use std::sync::Mutex;

    let idle_conns: Vec<TcpStream> = (0..idle)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();
    let per_conn_qps = target_qps / conns as f64;
    let start = Instant::now();
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut sent_total = 0usize;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..conns {
            handles.push(s.spawn(move || {
                let stream = TcpStream::connect(addr).expect("load connect");
                stream.set_nodelay(true).ok();
                let reader_stream = stream.try_clone().expect("clone load stream");
                // Send timestamps, popped in order by the reader —
                // valid because responses arrive in request order.
                let pending: Mutex<VecDeque<Instant>> = Mutex::new(VecDeque::new());
                let mut sent = 0usize;
                let mut lat_us: Vec<f64> = Vec::new();
                std::thread::scope(|s2| {
                    let pending = &pending;
                    let reader_handle = s2.spawn(move || {
                        let mut reader = BufReader::new(reader_stream);
                        let mut line = String::new();
                        let mut lat: Vec<f64> = Vec::new();
                        loop {
                            line.clear();
                            match reader.read_line(&mut line) {
                                Ok(0) => break, // server closed after our half-close
                                Ok(_) => {
                                    let ts = pending
                                        .lock()
                                        .unwrap()
                                        .pop_front()
                                        .expect("response without request");
                                    lat.push(ts.elapsed().as_secs_f64() * 1e6);
                                    assert!(line.contains("\"ok\":true"), "load error: {line}");
                                }
                                Err(e) => panic!("load recv: {e}"),
                            }
                        }
                        lat
                    });
                    let mut writer = BufWriter::new(&stream);
                    loop {
                        let elapsed = start.elapsed();
                        if elapsed >= duration {
                            break;
                        }
                        let due = (elapsed.as_secs_f64() * per_conn_qps) as usize;
                        let mut wrote = false;
                        while sent < due {
                            let line = &lines[(sent * conns + c) % lines.len()];
                            pending.lock().unwrap().push_back(Instant::now());
                            writer.write_all(line.as_bytes()).expect("load send");
                            writer.write_all(b"\n").expect("load send");
                            sent += 1;
                            wrote = true;
                        }
                        if wrote {
                            writer.flush().expect("load flush");
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    writer.flush().expect("load flush");
                    drop(writer);
                    // Half-close: the server drains our in-flight
                    // requests, flushes every response, then closes —
                    // the reader's EOF doubles as "all responses in".
                    stream.shutdown(Shutdown::Write).expect("load half-close");
                    lat_us = reader_handle.join().expect("load reader");
                });
                assert_eq!(lat_us.len(), sent, "connection lost responses under load");
                (sent, lat_us)
            }));
        }
        for h in handles {
            let (n, lat) = h.join().expect("load conn");
            sent_total += n;
            latencies_us.extend(lat);
        }
    });
    let wall = start.elapsed().as_secs_f64();
    drop(idle_conns);
    latencies_us.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        // bounds: index is (len-1)*p with p ≤ 1, so < len.
        latencies_us[((latencies_us.len() - 1) as f64 * p).round() as usize]
    };
    LoadReport {
        target_qps,
        achieved_qps: if wall > 0.0 {
            sent_total as f64 / wall
        } else {
            0.0
        },
        sent: sent_total,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
    }
}

/// Extracts `"field": <number>` from the `"section"` object of a flat
/// JSON document — enough structure awareness for our own emitter's
/// output, with no JSON dependency.
fn extract(json: &str, section: &str, field: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let rest = &json[sec..];
    let f = rest.find(&format!("\"{field}\""))?;
    let rest = &rest[f + field.len() + 2..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Compares fresh warm where/when medians against a baseline file.
/// Returns the failure messages (empty = pass).
fn baseline_regressions(
    baseline_json: &str,
    fresh: &[(&str, ModeResult)],
    factor: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for kind in ["where", "when"] {
        let Some(base) = extract(baseline_json, kind, "warm_ns_per_op") else {
            failures.push(format!("baseline has no warm {kind} median"));
            continue;
        };
        let Some((_, fresh_r)) = fresh.iter().find(|(n, _)| *n == kind) else {
            continue;
        };
        let ratio = fresh_r.warm_ns / base;
        if ratio > factor {
            failures.push(format!(
                "warm {kind} median regressed {ratio:.2}x ({:.1} ns/op vs baseline {base:.1} ns/op, limit {factor}x)",
                fresh_r.warm_ns
            ));
        } else {
            eprintln!(
                "baseline gate: warm {kind} {:.1} ns/op vs {base:.1} ns/op ({ratio:.2}x) ok",
                fresh_r.warm_ns
            );
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("UTCQ_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_queries.json".to_string());
    let baseline_path = flag_value("--baseline");

    let profile = utcq_datagen::profile::cd();
    let n_trajs = std::env::var("UTCQ_TRAJS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(80);
    let n_shards: u32 = std::env::var("UTCQ_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(2);
    eprintln!(
        "building dataset ({} trajectories, profile {})…",
        n_trajs, profile.name
    );
    let built = datasets::build_n(&profile, n_trajs, SEED);
    let stiu = StiuParams {
        partition_s: 900,
        grid_n: 32,
    };
    let store = Store::build(
        Arc::new(built.net.clone()),
        &built.ds,
        datasets::paper_params(&profile),
        stiu,
    )
    .expect("store build");
    eprintln!("building {n_shards}-shard store…");
    let sharded = StoreBuilder::new(
        Arc::new(built.net.clone()),
        datasets::paper_params(&profile),
    )
    .stiu_params(stiu)
    .shard_by(Arc::new(ByTime { interval_s: 900 }), n_shards)
    .expect("shard config")
    .ingest(&built.ds)
    .expect("sharded ingest")
    .finish()
    .expect("sharded store build");
    let default_budget = store.cache_bytes();

    let wq = workload::where_queries(&built.ds, 64, 301);
    let nq = workload::when_queries(&built.ds, 64, 302);
    let rq = workload::range_queries(&built.net, &built.ds, 32, 303);
    let ranges: Vec<RangeQuery> = rq
        .iter()
        .map(|q| RangeQuery {
            re: q.re,
            tq: q.tq,
            alpha: q.alpha,
        })
        .collect();

    // The same workload, runnable against any QueryTarget.
    let run_where = |t: &dyn QueryTarget| {
        for q in &wq {
            t.where_query(q.traj_id, q.t, q.alpha, PageRequest::all())
                .unwrap();
        }
    };
    let run_when = |t: &dyn QueryTarget| {
        for q in &nq {
            t.when_query(q.traj_id, q.edge, q.rd, q.alpha, PageRequest::all())
                .unwrap();
        }
    };
    let run_range = |t: &dyn QueryTarget| {
        for q in &rq {
            t.range_query(&q.re, q.tq, q.alpha, PageRequest::all())
                .unwrap();
        }
    };

    let mut results: Vec<(&str, ModeResult)> = Vec::new();
    for (name, ops, run) in [
        ("where", wq.len(), &run_where as &dyn Fn(&dyn QueryTarget)),
        ("when", nq.len(), &run_when),
        ("range", rq.len(), &run_range),
    ] {
        eprintln!("measuring {name}…");
        store.set_cache_bytes(default_budget);
        let cold_ns = measure(ops, smoke, || store.clear_cache(), || run(&store));
        let warm_ns = measure(ops, smoke, || {}, || run(&store));
        store.set_cache_bytes(0);
        let nocache_ns = measure(ops, smoke, || {}, || run(&store));
        store.set_cache_bytes(default_budget);
        results.push((
            name,
            ModeResult {
                cold_ns,
                warm_ns,
                nocache_ns,
            },
        ));
    }

    // Sharded section: warm medians for the three query types, plus
    // par_range throughput 1-shard vs N-shard on the same batch.
    let mut sharded_warm: Vec<(&str, f64)> = Vec::new();
    for (name, ops, run) in [
        ("where", wq.len(), &run_where as &dyn Fn(&dyn QueryTarget)),
        ("when", nq.len(), &run_when),
        ("range", rq.len(), &run_range),
    ] {
        eprintln!("measuring sharded {name}…");
        sharded_warm.push((name, measure(ops, smoke, || {}, || run(&sharded))));
    }
    eprintln!("measuring par_range 1-shard vs {n_shards}-shard (interleaved)…");
    let (par_single_ns, par_sharded_ns) = measure_pair(
        ranges.len(),
        smoke,
        || {
            store.par_range_query(&ranges).unwrap();
        },
        || {
            sharded.par_range_query(&ranges).unwrap();
        },
    );
    let qps = |ns: f64| if ns > 0.0 { 1e9 / ns } else { 0.0 };

    // Sharded container open: sequential vs parallel per-shard blob
    // deserialization on the same bytes, interleaved so host drift
    // cancels out of the ratio.
    eprintln!("measuring {n_shards}-shard v3 open (sequential vs parallel, interleaved)…");
    let mut v3_bytes = Vec::new();
    sharded.write(&mut v3_bytes).expect("serialize v3");
    let (open_seq_ns, open_par_ns) = measure_pair(
        1,
        smoke,
        || {
            ShardedStore::read_with(&mut v3_bytes.as_slice(), false).expect("sequential open");
        },
        || {
            ShardedStore::read_with(&mut v3_bytes.as_slice(), true).expect("parallel open");
        },
    );
    // Which path the parallel-permitted open actually took: tiny
    // containers fall back to sequential (PARALLEL_OPEN_MIN_BYTES),
    // where spawning per-shard threads used to *lose* time.
    let (_, open_parallel_effective) =
        ShardedStore::read_with_report(&mut v3_bytes.as_slice(), true).expect("open probe");

    // The query-workload container above is a few hundred KB — far
    // below `PARALLEL_OPEN_MIN_BYTES` — so the section above always
    // exercises the sequential fallback. This second entry builds a
    // container of cheap trajectories sized past the threshold so the
    // parallel per-shard open actually runs, and the gate can see both
    // paths. Trajectory count is fixed (not `UTCQ_TRAJS`-scaled): the
    // point is crossing the byte threshold, and cheap trajectories keep
    // the build a few hundred ms even in smoke mode.
    const OPEN_LARGE_TRAJS: usize = 12_000;
    eprintln!(
        "measuring {n_shards}-shard large open ({OPEN_LARGE_TRAJS} cheap trajectories, \
         sequential vs parallel, interleaved)…"
    );
    let large_bytes = {
        let mut cheap = utcq_datagen::profile::tiny();
        cheap.avg_instances = 1.5;
        cheap.max_instances = 2;
        cheap.avg_edges = 4.0;
        cheap.max_edges = 8;
        let open_net = Arc::new(utcq_datagen::generate_network(&cheap, SEED ^ 0x0e));
        let ds = utcq_datagen::generate_on_network(
            &open_net,
            &cheap,
            &utcq_datagen::GenOptions {
                n_trajectories: OPEN_LARGE_TRAJS,
                seed: SEED ^ 0x0f,
                min_instances: 1,
                max_samples: 4,
                variants: Default::default(),
            },
        );
        let large = StoreBuilder::new(
            Arc::clone(&open_net),
            utcq_core::CompressParams::with_interval(ds.default_interval),
        )
        .stiu_params(stiu)
        .shard_by(Arc::new(ByTime { interval_s: 900 }), n_shards)
        .expect("large shard config")
        .ingest(&ds)
        .expect("large sharded ingest")
        .finish()
        .expect("large sharded build");
        let mut bytes = Vec::new();
        large.write(&mut bytes).expect("serialize large v3");
        bytes
    };
    let (open_large_seq_ns, open_large_par_ns) = measure_pair(
        1,
        smoke,
        || {
            ShardedStore::read_with(&mut large_bytes.as_slice(), false)
                .expect("large sequential open");
        },
        || {
            ShardedStore::read_with(&mut large_bytes.as_slice(), true)
                .expect("large parallel open");
        },
    );
    let (_, open_large_parallel_effective) =
        ShardedStore::read_with_report(&mut large_bytes.as_slice(), true)
            .expect("large open probe");
    assert!(
        open_large_parallel_effective,
        "open_large container ({} bytes) unexpectedly below the parallel-open threshold",
        large_bytes.len()
    );

    // bench_ingest: the live writer path with the write-ahead log off
    // vs on — what publishing a batch costs under each fsync policy.
    // Each pass reopens a fresh copy of the base container (untimed)
    // and then ingests the same batch sequence (timed), so the ns/batch
    // medians isolate the append+sync+publish cost.
    eprintln!("measuring ingest (durability off vs EveryN(8) vs Always)…");
    let ingest_dir = std::env::temp_dir().join(format!("utcq-bench-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ingest_dir);
    std::fs::create_dir_all(&ingest_dir).expect("mk ingest scratch");
    let mut ingest_base = built.ds.clone();
    let ingest_tail = ingest_base
        .trajectories
        .split_off(ingest_base.trajectories.len() / 2);
    let ingest_batch_size = (ingest_tail.len() / 8).max(1);
    let ingest_batches: Vec<utcq_traj::Dataset> = ingest_tail
        .chunks(ingest_batch_size)
        .map(|c| utcq_traj::Dataset {
            name: built.ds.name.clone(),
            default_interval: built.ds.default_interval,
            trajectories: c.to_vec(),
        })
        .collect();
    let base_path = ingest_dir.join("base.utcq");
    Store::build(
        Arc::new(built.net.clone()),
        &ingest_base,
        datasets::paper_params(&profile),
        stiu,
    )
    .expect("ingest base build")
    .save(&base_path)
    .expect("save ingest base");
    let wal_path = ingest_dir.join("log.wal");
    let measure_ingest = |fsync: Option<utcq_core::FsyncPolicy>| -> f64 {
        let slot: std::cell::RefCell<Option<Store>> = std::cell::RefCell::new(None);
        measure(
            ingest_batches.len(),
            smoke,
            || {
                slot.borrow_mut().take();
                let _ = std::fs::remove_file(&wal_path);
                let store = match fsync {
                    None => Store::open(&base_path).expect("open ingest base"),
                    Some(p) => Store::open_durable(
                        &base_path,
                        utcq_core::WalConfig::new(&wal_path).fsync(p),
                    )
                    .expect("open durable ingest base"),
                };
                *slot.borrow_mut() = Some(store);
            },
            || {
                let s = slot.borrow();
                let s = s.as_ref().expect("prepared store");
                for b in &ingest_batches {
                    s.ingest(b).expect("bench ingest");
                }
            },
        )
    };
    let ingest_off_ns = measure_ingest(None);
    let ingest_every_ns = measure_ingest(Some(utcq_core::FsyncPolicy::EveryN(8)));
    let ingest_always_ns = measure_ingest(Some(utcq_core::FsyncPolicy::Always));
    let _ = std::fs::remove_dir_all(&ingest_dir);

    // bench_publish: what publishing one 64-trajectory batch costs as
    // the store grows 1k → 10k → 50k. The chunked snapshots share
    // sealed storage across epochs, so both the median ns and the
    // copied bytes (reported by `utcq_core::hooks::copied_bytes`) must
    // stay O(batch) — flat in store size. The copied-bytes ratio is
    // deterministic, which is what `UTCQ_BENCH_PUBLISH_RATIO_BOUND`
    // gates on in CI. Trajectories are deliberately cheap (short, few
    // instances): publish cost depends on the snapshot's shape, not on
    // how interesting the data is.
    eprintln!("measuring publish cost at 1k/10k/50k trajectories…");
    const PUBLISH_BATCH: usize = 64;
    const PUBLISH_BATCHES: usize = 8; // per timed pass; ids stay distinct
    let publish_sizes: [usize; 3] = [1_000, 10_000, 50_000];
    let mut publish_ns: Vec<f64> = Vec::new();
    let mut publish_copied: Vec<u64> = Vec::new();
    {
        let mut cheap = utcq_datagen::profile::tiny();
        cheap.avg_instances = 1.5;
        cheap.max_instances = 2;
        cheap.avg_edges = 4.0;
        cheap.max_edges = 8;
        let publish_net = Arc::new(utcq_datagen::generate_network(&cheap, SEED ^ 0x50));
        for (i, &n) in publish_sizes.iter().enumerate() {
            let mut base = utcq_datagen::generate_on_network(
                &publish_net,
                &cheap,
                &utcq_datagen::GenOptions {
                    n_trajectories: n + PUBLISH_BATCH * PUBLISH_BATCHES,
                    seed: SEED + i as u64,
                    min_instances: 1,
                    max_samples: 4,
                    variants: Default::default(),
                },
            );
            let tail = base.trajectories.split_off(n);
            let publish_batches: Vec<utcq_traj::Dataset> = tail
                .chunks(PUBLISH_BATCH)
                .map(|c| utcq_traj::Dataset {
                    name: base.name.clone(),
                    default_interval: base.default_interval,
                    trajectories: c.to_vec(),
                })
                .collect();
            let params = utcq_core::CompressParams::with_interval(base.default_interval);
            let built =
                Store::build(Arc::clone(&publish_net), &base, params, stiu).expect("publish build");
            let mut base_bytes = Vec::new();
            built
                .write(&mut base_bytes)
                .expect("serialize publish base");
            drop(built);

            // Copied bytes per publish: exact, differenced around one
            // ingest on a fresh reopen (main is single-threaded here,
            // so nothing else touches the process-global counter).
            let fresh = Store::read(&mut base_bytes.as_slice()).expect("reopen publish base");
            let before = utcq_core::hooks::copied_bytes();
            fresh.ingest(&publish_batches[0]).expect("bench publish");
            publish_copied.push(utcq_core::hooks::copied_bytes() - before);
            drop(fresh);

            let slot: std::cell::RefCell<Option<Store>> = std::cell::RefCell::new(None);
            publish_ns.push(measure(
                PUBLISH_BATCHES,
                smoke,
                || {
                    slot.borrow_mut().take();
                    *slot.borrow_mut() =
                        Some(Store::read(&mut base_bytes.as_slice()).expect("reopen publish base"));
                },
                || {
                    let s = slot.borrow();
                    let s = s.as_ref().expect("prepared store");
                    for b in &publish_batches {
                        s.ingest(b).expect("bench publish");
                    }
                },
            ));
        }
    }
    let publish_ratio = if publish_copied[0] > 0 {
        publish_copied[2] as f64 / publish_copied[0] as f64
    } else {
        0.0
    };

    // Leave the cache warm so the reported stats describe steady state.
    run_where(&store);
    run_when(&store);
    run_range(&store);
    let stats = store.cache_stats();
    let store_len = store.len();

    // bench_serve: the same warm where/when workloads, but every query
    // round-trips the PROTOCOL.md wire format over one TCP connection
    // to an in-process `utcq_core::serve::Server` — so the JSON tracks
    // what the serving layer (JSON encode/decode + loopback socket)
    // adds on top of the warm store, release over release.
    eprintln!("measuring serve round-trips (in-process server)…");
    let where_lines: Vec<String> = wq
        .iter()
        .map(|q| {
            format!(
                r#"{{"op":"where","traj":{},"t":{},"alpha":{}}}"#,
                q.traj_id, q.t, q.alpha
            )
        })
        .collect();
    let when_lines: Vec<String> = nq
        .iter()
        .map(|q| {
            format!(
                r#"{{"op":"when","traj":{},"edge":{},"rd":{},"alpha":{}}}"#,
                q.traj_id, q.edge.0, q.rd, q.alpha
            )
        })
        .collect();
    let opened = Arc::new(utcq_core::Opened::Single(Box::new(store)));
    let server =
        utcq_core::serve::Server::bind(Arc::clone(&opened), "127.0.0.1:0", 4).expect("bind serve");
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run().expect("serve run"));
    let stream = std::net::TcpStream::connect(addr).expect("connect serve");
    stream.set_nodelay(true).ok();
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone serve stream"));
    let mut writer = std::io::BufWriter::new(stream);
    let serve_where_ns = measure(
        wq.len(),
        smoke,
        || {},
        || serve_roundtrip(&mut reader, &mut writer, &where_lines),
    );
    let serve_when_ns = measure(
        nq.len(),
        smoke,
        || {},
        || serve_roundtrip(&mut reader, &mut writer, &when_lines),
    );

    // bench_serve_load: the same connection, but PIPELINE_DEPTH
    // requests in flight per flush — amortizing the per-request
    // round-trip that dominates the sequential numbers above.
    eprintln!("measuring pipelined serve throughput (depth {PIPELINE_DEPTH})…");
    let mut load_lines: Vec<String> = Vec::with_capacity(where_lines.len() + when_lines.len());
    for (w, n) in where_lines.iter().zip(when_lines.iter()) {
        load_lines.push(w.clone());
        load_lines.push(n.clone());
    }
    let pipelined_ns = measure(
        load_lines.len(),
        smoke,
        || {},
        || serve_pipelined(&mut reader, &mut writer, &load_lines, PIPELINE_DEPTH),
    );

    // Open-loop replay: fixed offered rate across LOAD_CONNS active
    // connections with LOAD_IDLE_CONNS idle ones held open.
    let load_target_qps: f64 = std::env::var("UTCQ_BENCH_LOAD_QPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2_000.0 } else { 40_000.0 });
    let load_duration = if smoke {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(2)
    };
    eprintln!(
        "measuring open-loop load ({LOAD_CONNS} conns + {LOAD_IDLE_CONNS} idle, \
         target {load_target_qps:.0} qps, {load_duration:?})…"
    );
    let load = open_loop_load(
        addr,
        &load_lines,
        LOAD_CONNS,
        LOAD_IDLE_CONNS,
        load_target_qps,
        load_duration,
    );

    serve_roundtrip(
        &mut reader,
        &mut writer,
        &[r#"{"op":"shutdown"}"#.to_string()],
    );
    drop(reader);
    drop(writer);
    runner.join().expect("serve thread");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"profile\": \"{}\", \"trajectories\": {}, \"seed\": {}}},",
        profile.name, store_len, SEED
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"where_queries\": {}, \"when_queries\": {}, \"range_queries\": {}}},",
        wq.len(),
        nq.len(),
        rq.len()
    );
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"stat\": \"median\",");
    let _ = writeln!(json, "  \"cache_budget_bytes\": {default_budget},");
    let _ = writeln!(json, "  \"results\": {{");
    for (i, (name, r)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{name}\": {{\"cold_ns_per_op\": {:.1}, \"warm_ns_per_op\": {:.1}, \
             \"nocache_ns_per_op\": {:.1}, \"warm_speedup\": {:.2}}}{comma}",
            r.cold_ns,
            r.warm_ns,
            r.nocache_ns,
            r.warm_speedup()
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"sharded\": {{\"shards\": {n_shards}, \"policy\": \"time\", \
         \"where_warm_ns_per_op\": {:.1}, \"when_warm_ns_per_op\": {:.1}, \
         \"range_warm_ns_per_op\": {:.1}}},",
        sharded_warm[0].1, sharded_warm[1].1, sharded_warm[2].1
    );
    let _ = writeln!(
        json,
        "  \"par_range\": {{\"batch\": {}, \"qps_1shard\": {:.1}, \"qps_nshard\": {:.1}, \
         \"nshard_over_1shard\": {:.3}}},",
        ranges.len(),
        qps(par_single_ns),
        qps(par_sharded_ns),
        if par_sharded_ns > 0.0 {
            par_single_ns / par_sharded_ns
        } else {
            0.0
        }
    );
    let _ = writeln!(
        json,
        "  \"open\": {{\"shards\": {n_shards}, \"container_bytes\": {}, \
         \"parallel_effective\": {open_parallel_effective}, \
         \"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.2}}},",
        v3_bytes.len(),
        open_seq_ns / 1e6,
        open_par_ns / 1e6,
        if open_par_ns > 0.0 {
            open_seq_ns / open_par_ns
        } else {
            0.0
        }
    );
    let _ = writeln!(
        json,
        "  \"open_large\": {{\"shards\": {n_shards}, \"trajectories\": {OPEN_LARGE_TRAJS}, \
         \"container_bytes\": {}, \"parallel_effective\": {open_large_parallel_effective}, \
         \"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.2}}},",
        large_bytes.len(),
        open_large_seq_ns / 1e6,
        open_large_par_ns / 1e6,
        if open_large_par_ns > 0.0 {
            open_large_seq_ns / open_large_par_ns
        } else {
            0.0
        }
    );
    let _ = writeln!(
        json,
        "  \"serve\": {{\"transport\": \"tcp-loopback\", \
         \"where_roundtrip_ns_per_op\": {:.1}, \"when_roundtrip_ns_per_op\": {:.1}, \
         \"where_qps\": {:.1}, \"when_qps\": {:.1}}},",
        serve_where_ns,
        serve_when_ns,
        qps(serve_where_ns),
        qps(serve_when_ns)
    );
    let _ = writeln!(
        json,
        "  \"serve_load\": {{\"pipeline_depth\": {PIPELINE_DEPTH}, \
         \"single_conn_pipelined_qps\": {:.1}, \"pipelined_over_sequential\": {:.2}, \
         \"connections\": {LOAD_CONNS}, \"idle_connections\": {LOAD_IDLE_CONNS}, \
         \"target_qps\": {:.1}, \"achieved_qps\": {:.1}, \"requests\": {}, \
         \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}}},",
        qps(pipelined_ns),
        if pipelined_ns > 0.0 {
            // Same-machine ratio vs the sequential round-trips above on
            // the same where/when mix — robust to host speed drift.
            (serve_where_ns + serve_when_ns) / 2.0 / pipelined_ns
        } else {
            0.0
        },
        load.target_qps,
        load.achieved_qps,
        load.sent,
        load.p50_us,
        load.p99_us,
        load.p999_us
    );
    let _ = writeln!(
        json,
        "  \"ingest\": {{\"batches\": {}, \"trajs_per_batch\": {}, \
         \"off_ns_per_batch\": {:.1}, \"wal_every8_ns_per_batch\": {:.1}, \
         \"wal_always_ns_per_batch\": {:.1}}},",
        ingest_batches.len(),
        ingest_batch_size,
        ingest_off_ns,
        ingest_every_ns,
        ingest_always_ns
    );
    let _ = writeln!(
        json,
        "  \"publish\": {{\"batch_trajs\": {PUBLISH_BATCH}, \
         \"store_sizes\": [{}, {}, {}], \
         \"ns_per_publish\": [{:.1}, {:.1}, {:.1}], \
         \"copied_bytes_per_publish\": [{}, {}, {}], \
         \"copied_ratio_50k_over_1k\": {:.3}}},",
        publish_sizes[0],
        publish_sizes[1],
        publish_sizes[2],
        publish_ns[0],
        publish_ns[1],
        publish_ns[2],
        publish_copied[0],
        publish_copied[1],
        publish_copied[2],
        publish_ratio
    );
    let _ = writeln!(
        json,
        "  \"cache_stats\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"entries\": {}, \"bytes\": {}, \"hit_rate\": {:.4}}}",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.entries,
        stats.bytes,
        stats.hit_rate()
    );
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH_queries.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
    for (name, r) in &results {
        eprintln!(
            "  {name:>5}: cold {:>10.0} ns/op | warm {:>10.0} ns/op | speedup {:.2}x",
            r.cold_ns,
            r.warm_ns,
            r.warm_speedup()
        );
    }
    eprintln!(
        "  par_range: 1-shard {:.0} qps | {n_shards}-shard {:.0} qps",
        qps(par_single_ns),
        qps(par_sharded_ns)
    );
    eprintln!(
        "  serve rt: where {:.0} ns/op ({:.0} qps) | when {:.0} ns/op ({:.0} qps)",
        serve_where_ns,
        qps(serve_where_ns),
        serve_when_ns,
        qps(serve_when_ns)
    );
    eprintln!(
        "  serve load: pipelined {:.0} qps | open-loop {:.0}/{:.0} qps | \
         p50 {:.0} µs p99 {:.0} µs p999 {:.0} µs",
        qps(pipelined_ns),
        load.achieved_qps,
        load.target_qps,
        load.p50_us,
        load.p99_us,
        load.p999_us
    );
    if let Some(bound_ms) = std::env::var("UTCQ_BENCH_P99_BOUND_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        let p99_ms = load.p99_us / 1000.0;
        if p99_ms > bound_ms {
            eprintln!("LOAD REGRESSION: open-loop p99 {p99_ms:.2} ms exceeds bound {bound_ms} ms");
            std::process::exit(1);
        }
        eprintln!("load gate: open-loop p99 {p99_ms:.3} ms within {bound_ms} ms");
    }
    eprintln!(
        "  ingest: off {:.0} ns/batch | wal every-8 {:.0} ns/batch | wal always {:.0} ns/batch",
        ingest_off_ns, ingest_every_ns, ingest_always_ns
    );
    eprintln!(
        "  publish: 1k {:.0} ns | 10k {:.0} ns | 50k {:.0} ns | \
         copied {} / {} / {} B (50k/1k ratio {:.2})",
        publish_ns[0],
        publish_ns[1],
        publish_ns[2],
        publish_copied[0],
        publish_copied[1],
        publish_copied[2],
        publish_ratio
    );
    if let Some(bound) = std::env::var("UTCQ_BENCH_RANGE_WARM_BOUND")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        // bounds: the results vec is built from a fixed 3-entry list
        let range_warm = results
            .iter()
            .find(|(n, _)| *n == "range")
            .unwrap()
            .1
            .warm_ns;
        if range_warm > bound {
            eprintln!(
                "RANGE REGRESSION: warm range median {range_warm:.1} ns/op exceeds \
                 bound {bound} ns/op — the epoch-keyed range-result cache is not \
                 carrying the warm path"
            );
            std::process::exit(1);
        }
        eprintln!("range gate: warm range {range_warm:.1} ns/op within {bound} ns/op");
    }
    let par_range_ratio = if par_sharded_ns > 0.0 {
        par_single_ns / par_sharded_ns
    } else {
        0.0
    };
    if let Some(bound) = std::env::var("UTCQ_BENCH_PAR_RANGE_RATIO_BOUND")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if par_range_ratio < bound {
            eprintln!(
                "PAR_RANGE REGRESSION: nshard_over_1shard {par_range_ratio:.3} fell \
                 below bound {bound} — the sharded batch engine (candidate index + \
                 cell filters + sub-unit scheduling) is not beating the per-query path"
            );
            std::process::exit(1);
        }
        eprintln!("par_range gate: nshard_over_1shard {par_range_ratio:.3} at or above {bound}");
    }
    if let Some(bound) = std::env::var("UTCQ_BENCH_PUBLISH_RATIO_BOUND")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if publish_ratio > bound {
            eprintln!(
                "PUBLISH REGRESSION: a 50k-store publish copies {publish_ratio:.2}x \
                 the bytes of a 1k-store publish (bound {bound}) — copy cost is \
                 scaling with the store, not the batch"
            );
            std::process::exit(1);
        }
        eprintln!("publish gate: copied-bytes ratio {publish_ratio:.2} within {bound}");
    }
    eprintln!(
        "  v3 open: sequential {:.2} ms | parallel {:.2} ms ({:.2}x)",
        open_seq_ns / 1e6,
        open_par_ns / 1e6,
        if open_par_ns > 0.0 {
            open_seq_ns / open_par_ns
        } else {
            0.0
        }
    );
    eprintln!(
        "  v3 open large ({:.1} MiB): sequential {:.2} ms | parallel {:.2} ms ({:.2}x, effective {})",
        large_bytes.len() as f64 / (1024.0 * 1024.0),
        open_large_seq_ns / 1e6,
        open_large_par_ns / 1e6,
        if open_large_par_ns > 0.0 {
            open_large_seq_ns / open_large_par_ns
        } else {
            0.0
        },
        open_large_parallel_effective
    );

    if let Some(path) = baseline_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let failures = baseline_regressions(&baseline, &results, regression_factor());
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("baseline gate passed ({path})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "results": {
    "where": {"cold_ns_per_op": 1611.0, "warm_ns_per_op": 293.3, "warm_speedup": 5.49},
    "when": {"cold_ns_per_op": 2636.1, "warm_ns_per_op": 514.9, "warm_speedup": 5.12}
  }
}"#;

    #[test]
    fn extract_reads_nested_fields() {
        assert_eq!(extract(SAMPLE, "where", "warm_ns_per_op"), Some(293.3));
        assert_eq!(extract(SAMPLE, "when", "warm_ns_per_op"), Some(514.9));
        assert_eq!(extract(SAMPLE, "when", "cold_ns_per_op"), Some(2636.1));
        assert_eq!(extract(SAMPLE, "range", "warm_ns_per_op"), None);
        assert_eq!(extract(SAMPLE, "where", "missing"), None);
    }

    #[test]
    fn regression_gate_trips_only_past_the_factor() {
        let fresh_ok = vec![
            (
                "where",
                ModeResult {
                    cold_ns: 0.0,
                    warm_ns: 293.3 * 1.9,
                    nocache_ns: 0.0,
                },
            ),
            (
                "when",
                ModeResult {
                    cold_ns: 0.0,
                    warm_ns: 514.9,
                    nocache_ns: 0.0,
                },
            ),
        ];
        assert!(baseline_regressions(SAMPLE, &fresh_ok, 2.0).is_empty());
        let fresh_bad = vec![(
            "where",
            ModeResult {
                cold_ns: 0.0,
                warm_ns: 293.3 * 2.5,
                nocache_ns: 0.0,
            },
        )];
        let failures = baseline_regressions(SAMPLE, &fresh_bad, 2.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("where"), "{failures:?}");
    }
}
