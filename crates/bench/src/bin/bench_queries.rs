//! Offline query-latency harness emitting a machine-readable
//! `BENCH_queries.json`, so successive PRs leave a perf trajectory.
//!
//! Measures ns/op for the three probabilistic query types in three cache
//! modes on one shared [`Store`]:
//!
//! * **cold** — the decode cache is cleared before every pass: each pass
//!   re-pays every reference/instance/time-stream decode;
//! * **warm** — the cache keeps the workload's decoded working set (the
//!   steady state of a serving process);
//! * **nocache** — the cache budget is set to `0`: the pure overhead
//!   floor with no memoization at all.
//!
//! ```text
//! cargo run --release -p utcq_bench --bin bench_queries [-- --smoke] [--out FILE]
//! ```
//!
//! `--smoke` (or `UTCQ_BENCH_SMOKE=1`) runs one pass per mode — the CI
//! mode that only proves the harness works. `UTCQ_TRAJS` scales the
//! dataset (default 80 trajectories).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use utcq_bench::{datasets, workload};
use utcq_core::query::PageRequest;
use utcq_core::stiu::StiuParams;
use utcq_core::Store;

const SEED: u64 = 3000;

struct ModeResult {
    cold_ns: f64,
    warm_ns: f64,
    nocache_ns: f64,
}

impl ModeResult {
    fn warm_speedup(&self) -> f64 {
        if self.warm_ns > 0.0 {
            self.cold_ns / self.warm_ns
        } else {
            0.0
        }
    }
}

/// Mean ns/op of `pass` (which runs `ops` queries), measured over enough
/// passes to fill the target time. `prepare` runs before *each* pass,
/// outside the timed region.
fn measure(ops: usize, smoke: bool, mut prepare: impl FnMut(), mut pass: impl FnMut()) -> f64 {
    let target = if smoke {
        Duration::ZERO // a single measured pass
    } else {
        Duration::from_millis(400)
    };
    // Untimed warmup pass: page in code and (for warm modes) the cache.
    prepare();
    pass();
    let mut spent = Duration::ZERO;
    let mut passes = 0u32;
    loop {
        prepare();
        let t0 = Instant::now();
        pass();
        spent += t0.elapsed();
        passes += 1;
        if spent >= target || passes >= 50_000 {
            break;
        }
    }
    spent.as_nanos() as f64 / (passes as usize * ops) as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("UTCQ_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_queries.json".to_string());

    let profile = utcq_datagen::profile::cd();
    let n_trajs = std::env::var("UTCQ_TRAJS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(80);
    eprintln!(
        "building dataset ({} trajectories, profile {})…",
        n_trajs, profile.name
    );
    let built = datasets::build_n(&profile, n_trajs, SEED);
    let store = Store::build(
        Arc::new(built.net.clone()),
        &built.ds,
        datasets::paper_params(&profile),
        StiuParams {
            partition_s: 900,
            grid_n: 32,
        },
    )
    .expect("store build");
    let default_budget = store.cache_bytes();

    let wq = workload::where_queries(&built.ds, 64, 301);
    let nq = workload::when_queries(&built.ds, 64, 302);
    let rq = workload::range_queries(&built.net, &built.ds, 32, 303);

    let run_where = || {
        for q in &wq {
            store
                .where_query(q.traj_id, q.t, q.alpha, PageRequest::all())
                .unwrap();
        }
    };
    let run_when = || {
        for q in &nq {
            store
                .when_query(q.traj_id, q.edge, q.rd, q.alpha, PageRequest::all())
                .unwrap();
        }
    };
    let run_range = || {
        for q in &rq {
            store
                .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
                .unwrap();
        }
    };

    let mut results: Vec<(&str, ModeResult)> = Vec::new();
    for (name, ops, run) in [
        ("where", wq.len(), &run_where as &dyn Fn()),
        ("when", nq.len(), &run_when),
        ("range", rq.len(), &run_range),
    ] {
        eprintln!("measuring {name}…");
        store.set_cache_bytes(default_budget);
        let cold_ns = measure(ops, smoke, || store.clear_cache(), run);
        let warm_ns = measure(ops, smoke, || {}, run);
        store.set_cache_bytes(0);
        let nocache_ns = measure(ops, smoke, || {}, run);
        store.set_cache_bytes(default_budget);
        results.push((
            name,
            ModeResult {
                cold_ns,
                warm_ns,
                nocache_ns,
            },
        ));
    }

    // Leave the cache warm so the reported stats describe steady state.
    run_where();
    run_when();
    run_range();
    let stats = store.cache_stats();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"profile\": \"{}\", \"trajectories\": {}, \"seed\": {}}},",
        profile.name,
        store.len(),
        SEED
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"where_queries\": {}, \"when_queries\": {}, \"range_queries\": {}}},",
        wq.len(),
        nq.len(),
        rq.len()
    );
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"cache_budget_bytes\": {default_budget},");
    let _ = writeln!(json, "  \"results\": {{");
    for (i, (name, r)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{name}\": {{\"cold_ns_per_op\": {:.1}, \"warm_ns_per_op\": {:.1}, \
             \"nocache_ns_per_op\": {:.1}, \"warm_speedup\": {:.2}}}{comma}",
            r.cold_ns,
            r.warm_ns,
            r.nocache_ns,
            r.warm_speedup()
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"cache_stats\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"entries\": {}, \"bytes\": {}, \"hit_rate\": {:.4}}}",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.entries,
        stats.bytes,
        stats.hit_rate()
    );
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH_queries.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
    for (name, r) in &results {
        eprintln!(
            "  {name:>5}: cold {:>10.0} ns/op | warm {:>10.0} ns/op | speedup {:.2}x",
            r.cold_ns,
            r.warm_ns,
            r.warm_speedup()
        );
    }
}
