//! Future-work experiment: multiple-order referential representation
//! (paper §8). Measures the referential footprint (E + T' + D streams)
//! of depth-1 (the shipped single-order scheme, = Algorithm 1), depth-2,
//! and depth-3 reference forests on all three datasets.
//!
//! Run: `cargo run --release -p utcq-bench --bin multiorder`

use utcq_bench::report::Table;
use utcq_bench::{build, datasets};
use utcq_core::multiorder;
use utcq_traj::TedView;

fn main() {
    let mut table = Table::new(
        "Future work — multiple-order referential representation (stream bits; order 1 = Algorithm 1)",
        &["dataset", "order 1", "order 2", "order 3", "roots@1", "roots@3", "gain 1→3"],
    );
    for (i, profile) in datasets::paper_profiles().iter().enumerate() {
        let built = build(profile, 1700 + i as u64);
        let params = datasets::paper_params(profile);
        let d_codec = params.d_codec();
        let w_e = utcq_core::compressed::edge_number_width(built.net.max_out_degree());
        let mut bits = [0u64; 3];
        let mut roots = [0usize; 3];
        for tu in &built.ds.trajectories {
            let views: Vec<TedView> = tu
                .instances
                .iter()
                .map(|inst| TedView::from_instance(&built.net, inst))
                .collect();
            let seqs: Vec<Vec<u32>> = views.iter().map(|v| v.entries.clone()).collect();
            let flags: Vec<Vec<bool>> = views.iter().map(|v| v.trimmed_flags().to_vec()).collect();
            let d_codes: Vec<Vec<u64>> = views
                .iter()
                .map(|v| v.rds.iter().map(|&rd| d_codec.quantize(rd)).collect())
                .collect();
            let svs: Vec<_> = views.iter().map(|v| v.sv).collect();
            let probs: Vec<f64> = views.iter().map(|v| v.prob).collect();
            for (k, order) in [1u32, 2, 3].into_iter().enumerate() {
                let plan = multiorder::plan(&seqs, &svs, &probs, params.n_pivots, order);
                multiorder::verify_lossless(&seqs, &flags, &plan)
                    .expect("chain replay must be lossless");
                bits[k] +=
                    multiorder::evaluate_bits(&seqs, &flags, &d_codes, &plan, w_e, d_codec.width());
                roots[k] += plan.root_count();
            }
        }
        table.row(vec![
            profile.name.to_string(),
            bits[0].to_string(),
            bits[1].to_string(),
            bits[2].to_string(),
            roots[0].to_string(),
            roots[2].to_string(),
            format!(
                "{:.2}%",
                100.0 * (bits[0] as f64 - bits[2] as f64) / bits[0] as f64
            ),
        ]);
    }
    table.print();
    table.save_json("multiorder");
}
