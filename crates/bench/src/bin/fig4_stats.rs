//! Figure 4 + Table 5: dataset statistics of the synthetic stand-ins,
//! checked against the paper's reported values.
//!
//! Run: `cargo run --release -p utcq-bench --bin fig4_stats`

use utcq_bench::report::{f2, f3, Table};
use utcq_bench::{build, datasets};
use utcq_traj::stats;

fn main() {
    let mut t5 = Table::new(
        "Table 5 — dataset summary (paper: DK 9 inst / 14 edges / 1 s; CD 3 / 11 / 10 s; HZ 13 / 13 / 20 s)",
        &["dataset", "trajs", "avg instances", "avg edges", "avg samples", "raw size"],
    );
    let mut t4a = Table::new(
        "Fig. 4a — sample-interval deviations (paper within ±1 s: DK 93%, CD 62%, HZ 54%)",
        &[
            "dataset",
            "=0",
            "=1",
            "(1,50]",
            "(50,100]",
            ">100",
            "within ±1 s",
        ],
    );
    let mut t4b = Table::new(
        "Fig. 4b — edit-distance similarity (paper intra ≤5: 88/94/83%; inter ≥9: 53/77/54%)",
        &[
            "dataset",
            "intra [0,2]",
            "intra [3,5]",
            "intra ≤5",
            "inter ≥9",
        ],
    );
    for (i, profile) in datasets::paper_profiles().iter().enumerate() {
        let built = build(profile, 100 + i as u64);
        let s = stats::summarize(&built.ds);
        t5.row(vec![
            profile.name.to_string(),
            s.trajectories.to_string(),
            f2(s.avg_instances),
            f2(s.avg_edges),
            f2(s.avg_samples),
            utcq_bench::measure::fmt_bits(s.raw_bytes * 8),
        ]);
        let h = stats::interval_deviations(&built.ds);
        t4a.row(vec![
            profile.name.to_string(),
            f3(h.zero),
            f3(h.one),
            f3(h.upto50),
            f3(h.upto100),
            f3(h.over100),
            f3(h.within_one()),
        ]);
        let intra = stats::intra_trajectory_similarity(&built.net, &built.ds, 20_000);
        let inter = stats::inter_trajectory_similarity(&built.net, &built.ds, 5_000);
        t4b.row(vec![
            profile.name.to_string(),
            f3(intra.d0_2),
            f3(intra.d3_5),
            f3(intra.within_five()),
            f3(inter.d9_up),
        ]);
    }
    t5.print();
    t5.save_json("table5_datasets");
    t4a.print();
    t4a.save_json("fig4a_deviations");
    t4b.print();
    t4b.save_json("fig4b_similarity");
}
