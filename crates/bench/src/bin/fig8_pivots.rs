//! Figure 8: effect of the number of pivots (1–5) on compression ratio
//! and time, on all three datasets.
//!
//! Run: `cargo run --release -p utcq-bench --bin fig8_pivots`

use utcq_bench::measure::fmt_duration;
use utcq_bench::report::{f2, Table};
use utcq_bench::{build, datasets, timed};

fn main() {
    let mut table = Table::new(
        "Fig. 8 — vs number of pivots (paper: ratio grows with pivots, so does time; defaults 2 on DK, 1 on CD/HZ)",
        &["dataset", "pivots", "UTCQ ratio", "time"],
    );
    for (i, profile) in datasets::paper_profiles().iter().enumerate() {
        let built = build(profile, 800 + i as u64);
        for n_pivots in 1..=5usize {
            let params = utcq_core::CompressParams {
                n_pivots,
                ..datasets::paper_params(profile)
            };
            let (cds, dt) =
                timed(|| utcq_core::compress_dataset(&built.net, &built.ds, &params).unwrap());
            table.row(vec![
                profile.name.to_string(),
                n_pivots.to_string(),
                f2(cds.ratios().total),
                fmt_duration(dt),
            ]);
        }
    }
    table.print();
    table.save_json("fig8_pivots");
}
