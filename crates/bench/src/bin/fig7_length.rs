//! Figure 7: effect of trajectory length (CD & HZ, trajectories with
//! ≥ 20 edges, keeping 20–100 % of each trajectory's samples).
//!
//! Run: `cargo run --release -p utcq-bench --bin fig7_length`

use utcq_bench::measure::{fmt_bits, fmt_duration, memory_model};
use utcq_bench::report::{f2, Table};
use utcq_bench::{datasets, timed};
use utcq_datagen::{transform, GenOptions};

fn main() {
    let mut table = Table::new(
        "Fig. 7 — vs trajectory length (paper: UTCQ ratio rises then drops; TED declines slightly; UTCQ 1–2 orders faster)",
        &["dataset", "length %", "UTCQ ratio", "TED ratio", "UTCQ time", "TED time", "UTCQ mem", "TED mem"],
    );
    for mut profile in [utcq_datagen::profile::cd(), utcq_datagen::profile::hz()] {
        // Long routes so the 20 % cut still leaves meaningful paths.
        profile.avg_edges = profile.avg_edges.max(30.0);
        let built = datasets::build_opts(
            &profile,
            GenOptions {
                n_trajectories: datasets::default_trajs() / 3,
                seed: 700,
                ..GenOptions::default()
            },
        );
        let base = transform::filter_min_edges(&built.ds, 20);
        let params = datasets::paper_params(&profile);
        let tparams = datasets::paper_ted_params(&profile);
        for pct in [20, 40, 60, 80, 100] {
            let ds = transform::keep_length_fraction(&base, pct as f64 / 100.0);
            let (cds, ut) =
                timed(|| utcq_core::compress_dataset(&built.net, &ds, &params).unwrap());
            let (tds, tt) =
                timed(|| utcq_ted::compress_dataset(&built.net, &ds, &tparams).unwrap());
            let mem = memory_model(&ds, cds.w_e);
            table.row(vec![
                profile.name.into(),
                pct.to_string(),
                f2(cds.ratios().total),
                f2(tds.ratios().total),
                fmt_duration(ut),
                fmt_duration(tt),
                fmt_bits(mem.utcq_bits),
                fmt_bits(mem.ted_bits),
            ]);
        }
    }
    table.print();
    table.save_json("fig7_length");
}
