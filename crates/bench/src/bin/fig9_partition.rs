//! Figure 9: effect of the spatial and temporal partition granularity on
//! probabilistic range queries — index sizes (UTCQ s-size / t-size, TED)
//! and query time (DK & HZ).
//!
//! Run: `cargo run --release -p utcq-bench --bin fig9_partition`

use std::time::Duration;

use std::sync::Arc;
use utcq_bench::measure::{fmt_bits, fmt_duration};
use utcq_bench::report::Table;
use utcq_bench::{build, datasets, timed, workload};
use utcq_core::query::PageRequest;
use utcq_core::stiu::StiuParams;
use utcq_core::Store;
use utcq_ted::{TedStore, TedStoreParams};

fn avg(d: Duration, n: usize) -> Duration {
    d / n.max(1) as u32
}

fn main() {
    let n_queries = 150;
    let mut grid_table = Table::new(
        "Fig. 9a/b — vs number of grid cells (paper: UTCQ index smaller than TED; finer grids → faster range queries)",
        &["dataset", "grid", "UTCQ s-size", "UTCQ t-size", "TED size", "UTCQ query", "TED query"],
    );
    let mut time_table = Table::new(
        "Fig. 9c/d — vs time partition duration (paper: finer partitions → larger t-size, faster queries)",
        &["dataset", "partition (min)", "UTCQ t-size", "UTCQ query"],
    );
    for (i, profile) in [utcq_datagen::profile::dk(), utcq_datagen::profile::hz()]
        .iter()
        .enumerate()
    {
        let built = build(profile, 900 + i as u64);
        let params = datasets::paper_params(profile);
        let tparams = datasets::paper_ted_params(profile);
        let queries = workload::range_queries(&built.net, &built.ds, n_queries, 91);

        for grid_n in [8u32, 16, 32, 64, 128] {
            let store = Store::build(
                Arc::new(built.net.clone()),
                &built.ds,
                params,
                StiuParams {
                    partition_s: 1800,
                    grid_n,
                },
            )
            .unwrap();
            let (s_bits, t_bits) = store.snapshot().stiu().size_bits(params.p_codec().width());
            let (_, udur) = timed(|| {
                for q in &queries {
                    let _ = store
                        .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
                        .unwrap();
                }
            });
            let tstore = TedStore::build(
                &built.net,
                &built.ds,
                tparams,
                TedStoreParams {
                    partition_s: 1800,
                    grid_n,
                },
            )
            .unwrap();
            let (_, tdur) = timed(|| {
                for q in &queries {
                    let _ = tstore.range_query(&q.re, q.tq, q.alpha).unwrap();
                }
            });
            grid_table.row(vec![
                profile.name.to_string(),
                format!("{grid_n}x{grid_n}"),
                fmt_bits(s_bits),
                fmt_bits(t_bits),
                fmt_bits(tstore.index_size_bits()),
                fmt_duration(avg(udur, n_queries)),
                fmt_duration(avg(tdur, n_queries)),
            ]);
        }

        for minutes in [10i64, 20, 30, 40, 50, 60] {
            let store = Store::build(
                Arc::new(built.net.clone()),
                &built.ds,
                params,
                StiuParams {
                    partition_s: minutes * 60,
                    grid_n: 32,
                },
            )
            .unwrap();
            let (_, t_bits) = store.snapshot().stiu().size_bits(params.p_codec().width());
            let (_, udur) = timed(|| {
                for q in &queries {
                    let _ = store
                        .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
                        .unwrap();
                }
            });
            time_table.row(vec![
                profile.name.to_string(),
                minutes.to_string(),
                fmt_bits(t_bits),
                fmt_duration(avg(udur, n_queries)),
            ]);
        }
    }
    grid_table.print();
    grid_table.save_json("fig9ab_grid");
    time_table.print();
    time_table.save_json("fig9cd_partition");
}
