//! Figure 6: effect of the number of instances on compression ratio,
//! time, and peak memory (DK & HZ, trajectories with ≥ 20 instances,
//! keeping 60–100 % of instances).
//!
//! Run: `cargo run --release -p utcq-bench --bin fig6_instances`

use utcq_bench::measure::{fmt_bits, fmt_duration, memory_model};
use utcq_bench::report::{f2, Table};
use utcq_bench::{datasets, timed};
use utcq_datagen::{transform, GenOptions};

fn main() {
    let mut table = Table::new
        ("Fig. 6 — vs number of instances (paper: UTCQ ratio grows slightly with instances, TED flat; UTCQ 1–2 orders faster & smaller memory)",
        &["dataset", "instances %", "UTCQ ratio", "TED ratio", "UTCQ time", "TED time", "UTCQ mem", "TED mem"],
    );
    for profile in [utcq_datagen::profile::dk(), utcq_datagen::profile::hz()] {
        // Generate with a floor of 20 instances (the paper filters to
        // trajectories with ≥ 20 instances).
        let built = datasets::build_opts(
            &profile,
            GenOptions {
                n_trajectories: datasets::default_trajs() / 3,
                seed: 600,
                min_instances: 20,
                ..GenOptions::default()
            },
        );
        let base = transform::filter_min_instances(&built.ds, 20);
        let params = datasets::paper_params(&profile);
        let tparams = datasets::paper_ted_params(&profile);
        for pct in [60, 70, 80, 90, 100] {
            let ds = transform::keep_instance_fraction(&base, pct as f64 / 100.0);
            let (cds, ut) =
                timed(|| utcq_core::compress_dataset(&built.net, &ds, &params).unwrap());
            let (tds, tt) =
                timed(|| utcq_ted::compress_dataset(&built.net, &ds, &tparams).unwrap());
            let mem = memory_model(&ds, cds.w_e);
            table.row(vec![
                profile.name.into(),
                pct.to_string(),
                f2(cds.ratios().total),
                f2(tds.ratios().total),
                fmt_duration(ut),
                fmt_duration(tt),
                fmt_bits(mem.utcq_bits),
                fmt_bits(mem.ted_bits),
            ]);
        }
    }
    table.print();
    table.save_json("fig6_instances");
}
