//! Table 8: compression ratio breakdown and compression time, UTCQ vs
//! TED, on the three datasets.
//!
//! Run: `cargo run --release -p utcq-bench --bin table8_compression`

use utcq_bench::measure::fmt_duration;
use utcq_bench::report::{f2, Table};
use utcq_bench::{build, datasets, timed};

fn main() {
    let mut table = Table::new(
        "Table 8 — compression ratios & time (paper: UTCQ total 14.3/11.9/13.8, TED 4.4/4.3/4.0; UTCQ 1–2 orders faster)",
        &[
            "dataset", "method", "Total", "T", "E", "D", "T'", "p", "time",
        ],
    );
    for (i, profile) in datasets::paper_profiles().iter().enumerate() {
        let built = build(profile, 200 + i as u64);
        let params = datasets::paper_params(profile);
        let (cds, utcq_time) =
            timed(|| utcq_core::compress_dataset(&built.net, &built.ds, &params).unwrap());
        let r = cds.ratios();
        table.row(vec![
            profile.name.into(),
            "UTCQ".into(),
            f2(r.total),
            f2(r.t),
            f2(r.e),
            f2(r.d),
            f2(r.tflag),
            f2(r.p),
            fmt_duration(utcq_time),
        ]);
        let tparams = datasets::paper_ted_params(profile);
        let (tds, ted_time) =
            timed(|| utcq_ted::compress_dataset(&built.net, &built.ds, &tparams).unwrap());
        let r = tds.ratios();
        table.row(vec![
            profile.name.into(),
            "TED".into(),
            f2(r.total),
            f2(r.t),
            f2(r.e),
            f2(r.d),
            f2(r.tflag),
            f2(r.p),
            fmt_duration(ted_time),
        ]);
        let speedup = ted_time.as_secs_f64() / utcq_time.as_secs_f64().max(1e-9);
        println!(
            "  {}: UTCQ/TED total ratio {:.2}x, compression speedup {:.1}x",
            profile.name,
            cds.ratios().total / tds.ratios().total,
            speedup
        );
    }
    table.print();
    table.save_json("table8_compression");
}
