//! Figure 12: scalability — compression ratio, compression time, and
//! range-query time vs data size (20–100 % of the dataset; CD & HZ).
//!
//! Run: `cargo run --release -p utcq-bench --bin fig12_scalability`

use std::sync::Arc;
use utcq_bench::measure::fmt_duration;
use utcq_bench::report::{f2, Table};
use utcq_bench::{build, datasets, timed, workload};
use utcq_core::query::PageRequest;
use utcq_core::stiu::StiuParams;
use utcq_core::Store;
use utcq_datagen::transform;
use utcq_ted::{TedStore, TedStoreParams};

fn main() {
    let n_queries = 150;
    let mut table = Table::new(
        "Fig. 12 — scalability (paper: ratios flat; UTCQ time linear, TED super-linear; query time linear, UTCQ faster)",
        &[
            "dataset", "size %", "UTCQ ratio", "TED ratio", "UTCQ comp", "TED comp",
            "UTCQ range q", "TED range q",
        ],
    );
    for (i, profile) in [utcq_datagen::profile::cd(), utcq_datagen::profile::hz()]
        .iter()
        .enumerate()
    {
        let built = build(profile, 1200 + i as u64);
        let params = datasets::paper_params(profile);
        let tparams = datasets::paper_ted_params(profile);
        for pct in [20, 40, 60, 80, 100] {
            let ds = transform::subset_fraction(&built.ds, pct as f64 / 100.0);
            let (cds, ut) =
                timed(|| utcq_core::compress_dataset(&built.net, &ds, &params).unwrap());
            let (tds, tt) =
                timed(|| utcq_ted::compress_dataset(&built.net, &ds, &tparams).unwrap());
            let store = Store::build(
                Arc::new(built.net.clone()),
                &ds,
                params,
                StiuParams::default(),
            )
            .unwrap();
            let tstore =
                TedStore::build(&built.net, &ds, tparams, TedStoreParams::default()).unwrap();
            let queries = workload::range_queries(&built.net, &ds, n_queries, 121);
            let (_, uq) = timed(|| {
                for q in &queries {
                    let _ = store
                        .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
                        .unwrap();
                }
            });
            let (_, tq) = timed(|| {
                for q in &queries {
                    let _ = tstore.range_query(&q.re, q.tq, q.alpha).unwrap();
                }
            });
            table.row(vec![
                profile.name.to_string(),
                pct.to_string(),
                f2(cds.ratios().total),
                f2(tds.ratios().total),
                fmt_duration(ut),
                fmt_duration(tt),
                fmt_duration(uq),
                fmt_duration(tq),
            ]);
        }
    }
    table.print();
    table.save_json("fig12_scalability");
}
