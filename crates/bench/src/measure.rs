//! Measurement helpers.

use std::time::{Duration, Instant};

/// Runs `f`, returning its result and the wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Modeled peak working-set, in bits, of the two compressors. The paper
/// reports resident memory; we report the dominant *algorithmic* term,
/// which is deterministic and captures the 1–2 order gap: UTCQ streams
/// one trajectory at a time (peak = the largest per-trajectory input),
/// while TED's matrix pass buffers every edge sequence.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryModel {
    /// UTCQ peak: largest single-trajectory raw footprint.
    pub utcq_bits: u64,
    /// TED peak: total buffered edge-sequence bits.
    pub ted_bits: u64,
}

/// Computes the memory model for a dataset.
pub fn memory_model(ds: &utcq_traj::Dataset, w_e: u32) -> MemoryModel {
    let mut utcq_peak = 0u64;
    let mut ted_total = 0u64;
    for tu in &ds.trajectories {
        let raw = utcq_traj::size::uncompressed_bits(tu);
        utcq_peak = utcq_peak.max(raw.total());
        for inst in &tu.instances {
            ted_total += utcq_traj::size::entry_count(inst) as u64 * u64::from(w_e);
        }
    }
    MemoryModel {
        utcq_bits: utcq_peak,
        ted_bits: ted_total,
    }
}

/// Pretty-prints a duration in the unit the paper's plots use.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Pretty-prints a bit count.
pub fn fmt_bits(bits: u64) -> String {
    let bytes = bits as f64 / 8.0;
    if bytes >= 1024.0 * 1024.0 {
        format!("{:.2} MiB", bytes / (1024.0 * 1024.0))
    } else if bytes >= 1024.0 {
        format!("{:.2} KiB", bytes / 1024.0)
    } else {
        format!("{bytes:.0} B")
    }
}
