//! Table printing and JSON persistence for experiment results.

use std::io::Write as _;
use std::path::PathBuf;

/// A simple aligned text table that doubles as a JSON record list.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Persists the table as JSON under `target/experiments/<name>.json`.
    ///
    /// Every cell is already a string, so the document is emitted directly
    /// rather than through a JSON library (the build is offline).
    pub fn save_json(&self, name: &str) {
        let mut doc = String::new();
        doc.push_str("{\n  \"title\": ");
        doc.push_str(&json_string(&self.title));
        doc.push_str(",\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str("\n    {");
            for (j, (h, c)) in self.headers.iter().zip(row).enumerate() {
                if j > 0 {
                    doc.push_str(", ");
                }
                doc.push_str(&json_string(h));
                doc.push_str(": ");
                doc.push_str(&json_string(c));
            }
            doc.push('}');
        }
        doc.push_str("\n  ]\n}");
        let dir = out_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{name}.json"));
            if let Ok(mut f) = std::fs::File::create(&path) {
                let _ = writeln!(f, "{doc}");
                println!("  [saved {}]", path.display());
            }
        }
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Output directory for experiment artifacts.
pub fn out_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}
