//! Query workload generation for the query-performance experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use utcq_network::{EdgeId, Rect, RoadNetwork};
use utcq_traj::Dataset;

/// A probabilistic *where* query instance.
#[derive(Debug, Clone, Copy)]
pub struct WhereQ {
    /// Target trajectory.
    pub traj_id: u64,
    /// Query time.
    pub t: i64,
    /// Probability threshold α.
    pub alpha: f64,
}

/// A probabilistic *when* query instance.
#[derive(Debug, Clone, Copy)]
pub struct WhenQ {
    /// Target trajectory.
    pub traj_id: u64,
    /// Query edge.
    pub edge: EdgeId,
    /// Relative distance on the edge.
    pub rd: f64,
    /// Probability threshold α.
    pub alpha: f64,
}

/// A probabilistic *range* query instance.
#[derive(Debug, Clone)]
pub struct RangeQ {
    /// Query region.
    pub re: Rect,
    /// Query time.
    pub tq: i64,
    /// Probability threshold α.
    pub alpha: f64,
}

/// Generates `n` where-queries over random trajectories and in-span
/// times.
pub fn where_queries(ds: &Dataset, n: usize, seed: u64) -> Vec<WhereQ> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let tu = &ds.trajectories[rng.gen_range(0..ds.trajectories.len())];
            let span = tu.times[tu.times.len() - 1] - tu.times[0];
            WhereQ {
                traj_id: tu.id,
                t: tu.times[0] + rng.gen_range(0..=span.max(1)),
                alpha: *[0.1, 0.25, 0.5].get(rng.gen_range(0..3)).unwrap(),
            }
        })
        .collect()
}

/// Generates `n` when-queries over edges the target trajectory actually
/// traverses (so answers are non-trivial).
pub fn when_queries(ds: &Dataset, n: usize, seed: u64) -> Vec<WhenQ> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let tu = &ds.trajectories[rng.gen_range(0..ds.trajectories.len())];
            let inst = tu.top_instance();
            let edge = inst.path[rng.gen_range(0..inst.path.len())];
            WhenQ {
                traj_id: tu.id,
                edge,
                rd: rng.gen_range(0.1..0.9),
                alpha: *[0.1, 0.25, 0.5].get(rng.gen_range(0..3)).unwrap(),
            }
        })
        .collect()
}

/// Generates `n` range-queries: rectangles sized a fraction of the
/// network extent, at times when some trajectory is active.
pub fn range_queries(net: &RoadNetwork, ds: &Dataset, n: usize, seed: u64) -> Vec<RangeQ> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds = net.bounding_rect();
    (0..n)
        .map(|_| {
            let frac = rng.gen_range(0.05..0.2);
            let w = bounds.width() * frac;
            let h = bounds.height() * frac;
            let x = rng.gen_range(bounds.min_x..(bounds.max_x - w));
            let y = rng.gen_range(bounds.min_y..(bounds.max_y - h));
            let tu = &ds.trajectories[rng.gen_range(0..ds.trajectories.len())];
            let span = tu.times[tu.times.len() - 1] - tu.times[0];
            RangeQ {
                re: Rect::new(x, y, x + w, y + h),
                tq: tu.times[0] + rng.gen_range(0..=span.max(1)),
                alpha: *[0.1, 0.3, 0.6].get(rng.gen_range(0..3)).unwrap(),
            }
        })
        .collect()
}
