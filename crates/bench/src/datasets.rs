//! Calibrated dataset construction for the experiments.

use utcq_datagen::{generate_network, generate_on_network, DatasetProfile, GenOptions};
use utcq_network::RoadNetwork;
use utcq_traj::Dataset;

/// A generated network + dataset pair.
pub struct BuiltDataset {
    /// The road network.
    pub net: RoadNetwork,
    /// The dataset.
    pub ds: Dataset,
    /// The profile it was generated from.
    pub profile: DatasetProfile,
}

/// Number of trajectories per dataset (override with `UTCQ_TRAJS`).
pub fn default_trajs() -> usize {
    std::env::var("UTCQ_TRAJS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Builds a dataset for a profile at the default scale.
pub fn build(profile: &DatasetProfile, seed: u64) -> BuiltDataset {
    build_n(profile, default_trajs(), seed)
}

/// Builds a dataset with an explicit trajectory count.
pub fn build_n(profile: &DatasetProfile, n: usize, seed: u64) -> BuiltDataset {
    build_opts(
        profile,
        GenOptions {
            n_trajectories: n,
            seed,
            ..GenOptions::default()
        },
    )
}

/// Builds a dataset with full generator options.
pub fn build_opts(profile: &DatasetProfile, opts: GenOptions) -> BuiltDataset {
    let net = generate_network(profile, opts.seed);
    let ds = generate_on_network(&net, profile, &opts);
    BuiltDataset {
        net,
        ds,
        profile: profile.clone(),
    }
}

/// The three paper profiles, in Table 5 order.
pub fn paper_profiles() -> Vec<DatasetProfile> {
    utcq_datagen::profile::all()
}

/// The UTCQ parameter set the paper uses for a profile (Table 7 defaults:
/// `ηD = 1/128`; `ηp = 1/512` for DK/CD, `1/2048` for HZ; 2 pivots on DK,
/// 1 elsewhere).
pub fn paper_params(profile: &DatasetProfile) -> utcq_core::CompressParams {
    utcq_core::CompressParams {
        eta_d: 1.0 / 128.0,
        eta_p: if profile.name == "HZ" {
            1.0 / 2048.0
        } else {
            1.0 / 512.0
        },
        n_pivots: if profile.name == "DK" { 2 } else { 1 },
        default_interval: profile.default_interval,
    }
}

/// The matching TED parameter set.
pub fn paper_ted_params(profile: &DatasetProfile) -> utcq_ted::TedParams {
    utcq_ted::TedParams {
        eta_d: 1.0 / 128.0,
        eta_p: if profile.name == "HZ" {
            1.0 / 2048.0
        } else {
            1.0 / 512.0
        },
        wah_tflag: false,
    }
}
