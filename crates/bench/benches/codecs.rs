//! Micro-benchmarks of the bit-level codecs (the kernels behind Table 8's
//! per-component ratios).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use utcq_bitio::golomb;
use utcq_bitio::pddp::PddpCodec;
use utcq_bitio::wah::WahBitmap;
use utcq_bitio::{BitBuf, BitWriter};
use utcq_core::siar;

fn deviations() -> Vec<i64> {
    // A DK-like mix: mostly 0/±1 with a heavy tail.
    (0..512)
        .map(|i| match i % 20 {
            0..=13 => 0,
            14..=16 => 1,
            17 => -1,
            18 => 27,
            _ => 140,
        })
        .collect()
}

fn bench_exp_golomb(c: &mut Criterion) {
    let devs = deviations();
    c.bench_function("golomb/encode_deviations_512", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &d in &devs {
                golomb::encode_deviation(&mut w, black_box(d)).unwrap();
            }
            w.finish()
        })
    });
    let mut w = BitWriter::new();
    for &d in &devs {
        golomb::encode_deviation(&mut w, d).unwrap();
    }
    let buf = w.finish();
    c.bench_function("golomb/decode_deviations_512", |b| {
        b.iter(|| {
            let mut r = buf.reader();
            for _ in 0..devs.len() {
                black_box(golomb::decode_deviation(&mut r).unwrap());
            }
        })
    });
}

fn bench_siar(c: &mut Criterion) {
    let mut times = vec![18205i64];
    for d in deviations() {
        times.push(times.last().unwrap() + 240 + d);
    }
    c.bench_function("siar/encode_513_timestamps", |b| {
        b.iter(|| siar::encode(black_box(&times), 240).unwrap())
    });
    let buf = siar::encode(&times, 240).unwrap();
    c.bench_function("siar/decode_513_timestamps", |b| {
        b.iter(|| siar::decode(black_box(&buf), times.len(), 240).unwrap())
    });
    c.bench_function("ted_pairs/encode_513_timestamps", |b| {
        b.iter(|| utcq_ted::time::encode(black_box(&times)).unwrap())
    });
}

fn bench_pddp(c: &mut Criterion) {
    let codec = PddpCodec::from_error_bound(1.0 / 128.0);
    let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.618) % 1.0).collect();
    c.bench_function("pddp/quantize_1000", |b| {
        b.iter(|| {
            values
                .iter()
                .map(|&v| codec.quantize(black_box(v)))
                .sum::<u64>()
        })
    });
}

fn bench_wah(c: &mut Criterion) {
    let bits: Vec<bool> = (0..4096).map(|i| i % 97 != 0).collect();
    let buf = BitBuf::from_bits(&bits);
    c.bench_function("wah/compress_4096", |b| {
        b.iter(|| WahBitmap::compress(black_box(&buf)))
    });
}

fn bench_flag_arrays(c: &mut Criterion) {
    // Partial T' decompression (Formulas 4–6) vs naive materialization.
    use utcq_core::factor::{apply_t, factorize_t};
    use utcq_core::flagarr::{nref_ones_before_full, FlagArray};
    let refb: Vec<bool> = (0..200).map(|i| i % 7 != 3).collect();
    let mut nref = refb.clone();
    nref[31] = !nref[31];
    nref[130] = !nref[130];
    let tcom = factorize_t(&nref, &refb);
    let omega = FlagArray::new(&refb);
    let n_entries = nref.len() + 2;
    c.bench_function("flagarr/partial_gamma", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for g in (0..=n_entries).step_by(13) {
                acc += nref_ones_before_full(black_box(&tcom), &refb, &omega, n_entries, g);
            }
            acc
        })
    });
    c.bench_function("flagarr/naive_materialize", |b| {
        b.iter(|| {
            let bits = apply_t(black_box(&tcom), &refb);
            let mut acc = 0u32;
            for g in (0..=n_entries).step_by(13) {
                let k = g.min(bits.len());
                acc += bits[..k].iter().map(|&b| u32::from(b)).sum::<u32>();
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_exp_golomb,
    bench_siar,
    bench_pddp,
    bench_wah,
    bench_flag_arrays
);
criterion_main!(benches);
