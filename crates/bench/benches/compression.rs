//! Compression benchmarks: UTCQ vs TED per dataset profile (the kernels
//! behind Table 8 and Figs. 6–8).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use utcq_bench::datasets;

fn bench_compressors(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_dataset_40trajs");
    group.sample_size(10);
    for (i, profile) in datasets::paper_profiles().iter().enumerate() {
        let built = datasets::build_n(profile, 40, 2000 + i as u64);
        let params = datasets::paper_params(profile);
        let tparams = datasets::paper_ted_params(profile);
        group.bench_with_input(
            BenchmarkId::new("utcq", profile.name),
            &built,
            |b, built| {
                b.iter(|| {
                    utcq_core::compress_dataset(&built.net, black_box(&built.ds), &params).unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("ted", profile.name), &built, |b, built| {
            b.iter(|| {
                utcq_ted::compress_dataset(&built.net, black_box(&built.ds), &tparams).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_reference_selection(c: &mut Criterion) {
    use utcq_core::reference::assign_roles;
    use utcq_traj::TedView;
    let profile = utcq_datagen::profile::hz();
    let built = datasets::build_n(&profile, 30, 2100);
    // Pre-extract the biggest trajectory's inputs.
    let tu = built
        .ds
        .trajectories
        .iter()
        .max_by_key(|t| t.instance_count())
        .unwrap();
    let views: Vec<TedView> = tu
        .instances
        .iter()
        .map(|i| TedView::from_instance(&built.net, i))
        .collect();
    let seqs: Vec<Vec<u32>> = views.iter().map(|v| v.entries.clone()).collect();
    let svs: Vec<_> = views.iter().map(|v| v.sv).collect();
    let probs: Vec<f64> = views.iter().map(|v| v.prob).collect();
    c.bench_function(
        &format!("reference_selection/{}_instances", seqs.len()),
        |b| b.iter(|| assign_roles(black_box(&seqs), &svs, &probs, 1)),
    );
}

fn bench_decompression(c: &mut Criterion) {
    let profile = utcq_datagen::profile::cd();
    let built = datasets::build_n(&profile, 40, 2200);
    let params = datasets::paper_params(&profile);
    let cds = utcq_core::compress_dataset(&built.net, &built.ds, &params).unwrap();
    c.bench_function("decompress_dataset_40trajs/cd", |b| {
        b.iter(|| utcq_core::decompress_dataset(&built.net, black_box(&cds)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_compressors,
    bench_reference_selection,
    bench_decompression
);
criterion_main!(benches);
