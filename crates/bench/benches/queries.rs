//! Query benchmarks: UTCQ vs TED on the three probabilistic query types
//! (the kernels behind Figs. 9–10 and 12c/d), plus cold- vs warm-cache
//! variants exercising the store's shared decode cache.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use utcq_bench::{datasets, workload};
use utcq_core::query::PageRequest;
use utcq_core::stiu::StiuParams;
use utcq_core::Store;
use utcq_ted::{TedStore, TedStoreParams};

fn bench_queries(c: &mut Criterion) {
    let profile = utcq_datagen::profile::cd();
    let built = datasets::build_n(&profile, 80, 3000);
    let params = datasets::paper_params(&profile);
    let store = Store::build(
        Arc::new(built.net.clone()),
        &built.ds,
        params,
        StiuParams {
            partition_s: 900,
            grid_n: 32,
        },
    )
    .unwrap();
    let tstore = TedStore::build(
        &built.net,
        &built.ds,
        datasets::paper_ted_params(&profile),
        TedStoreParams {
            partition_s: 900,
            grid_n: 32,
        },
    )
    .unwrap();

    let wq = workload::where_queries(&built.ds, 64, 301);
    // Cold: every iteration starts from an empty decode cache and
    // re-pays every reference/instance/time-stream decode.
    c.bench_function("where/utcq_64q_cold", |b| {
        b.iter(|| {
            store.clear_cache();
            for q in &wq {
                black_box(
                    store
                        .where_query(q.traj_id, q.t, q.alpha, PageRequest::all())
                        .unwrap(),
                );
            }
        })
    });
    // Warm: the cache holds the workload's decoded working set.
    c.bench_function("where/utcq_64q_warm", |b| {
        b.iter(|| {
            for q in &wq {
                black_box(
                    store
                        .where_query(q.traj_id, q.t, q.alpha, PageRequest::all())
                        .unwrap(),
                );
            }
        })
    });
    c.bench_function("where/ted_64q", |b| {
        b.iter(|| {
            for q in &wq {
                black_box(tstore.where_query(q.traj_id, q.t, q.alpha).unwrap());
            }
        })
    });

    let nq = workload::when_queries(&built.ds, 64, 302);
    c.bench_function("when/utcq_64q_cold", |b| {
        b.iter(|| {
            store.clear_cache();
            for q in &nq {
                black_box(
                    store
                        .when_query(q.traj_id, q.edge, q.rd, q.alpha, PageRequest::all())
                        .unwrap(),
                );
            }
        })
    });
    c.bench_function("when/utcq_64q_warm", |b| {
        b.iter(|| {
            for q in &nq {
                black_box(
                    store
                        .when_query(q.traj_id, q.edge, q.rd, q.alpha, PageRequest::all())
                        .unwrap(),
                );
            }
        })
    });
    c.bench_function("when/ted_64q", |b| {
        b.iter(|| {
            for q in &nq {
                black_box(tstore.when_query(q.traj_id, q.edge, q.rd, q.alpha).unwrap());
            }
        })
    });

    let rq = workload::range_queries(&built.net, &built.ds, 32, 303);
    c.bench_function("range/utcq_32q_cold", |b| {
        b.iter(|| {
            store.clear_cache();
            for q in &rq {
                black_box(
                    store
                        .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
                        .unwrap(),
                );
            }
        })
    });
    c.bench_function("range/utcq_32q_warm", |b| {
        b.iter(|| {
            for q in &rq {
                black_box(
                    store
                        .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
                        .unwrap(),
                );
            }
        })
    });
    c.bench_function("range/ted_32q", |b| {
        b.iter(|| {
            for q in &rq {
                black_box(tstore.range_query(&q.re, q.tq, q.alpha).unwrap());
            }
        })
    });

    // The batched parallel path: a skewed mix (some region-sized, some
    // tiny) exercising the atomic-counter work queue.
    let batch: Vec<utcq_core::RangeQuery> = rq
        .iter()
        .map(|q| utcq_core::RangeQuery {
            re: q.re,
            tq: q.tq,
            alpha: q.alpha,
        })
        .collect();
    c.bench_function("range/utcq_par_batch32", |b| {
        b.iter(|| black_box(store.par_range_query(&batch).unwrap()))
    });
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
