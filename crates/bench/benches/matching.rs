//! Probabilistic map-matching benchmark (the substrate that produces
//! uncertain trajectories from raw GPS in the end-to-end pipeline).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use utcq_datagen::instances::base_positions;
use utcq_datagen::raw::observe;
use utcq_datagen::route::random_route;
use utcq_matcher::{Matcher, MatcherConfig};
use utcq_network::gen::{grid_city, GridCityConfig};
use utcq_traj::{Instance, RawTrajectory};

fn bench_matcher(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4000);
    let net = grid_city(&GridCityConfig::default(), &mut rng);
    let matcher = Matcher::new(&net, 200.0);
    // A batch of noisy raw trajectories over ground-truth routes.
    let mut raws: Vec<RawTrajectory> = Vec::new();
    for _ in 0..8 {
        let route = random_route(&net, &mut rng, 12, 30).unwrap();
        let times: Vec<i64> = (0..15).map(|i| i * 15).collect();
        let positions = base_positions(&net, &mut rng, &route, &times);
        let inst = Instance {
            path: route,
            positions,
            prob: 1.0,
        };
        raws.push(observe(&net, &inst, &times, 10.0, &mut rng));
    }
    let cfg = MatcherConfig::default();
    c.bench_function("matcher/8_trajectories_15pts", |b| {
        b.iter(|| {
            for raw in &raws {
                black_box(matcher.match_trajectory(raw, &cfg));
            }
        })
    });
}

criterion_group!(benches, bench_matcher);
criterion_main!(benches);
