//! Crash-point fault injection over the core's hook points.
//!
//! The core is instrumented with `utcq_core::hooks::point` calls at the
//! durability-critical instants (`wal.before_append`, `wal.appended`,
//! `wal.synced`, `save.before_rename`, the publish points). The
//! schedule explorer uses them to interleave threads; this module uses
//! the same points to **kill** the code mid-operation: [`crash_at`]
//! arms one label for the calling thread and the shared hook dispatcher
//! unwinds the operation the moment it is hit — simulating a process
//! that died at exactly that instant, while the files it was writing
//! stay behind in whatever state they were in.
//!
//! The tests in this module are the crash-point matrix for the
//! write-ahead-log path: for every injected crash the container must
//! reopen, replay, and end up **byte-identical** to a store that ran
//! the same history without crashing, with monotonic epochs throughout.
//! (`ingest` is all-or-nothing under crashes: a batch whose record hit
//! the log replays on reopen even though the client never saw the ack —
//! the documented leader-side window, see `docs/DURABILITY.md`.)

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

thread_local! {
    static CRASH_AT: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// Panic payload marking an injected crash (as opposed to a genuine
/// panic in the code under test, which must propagate).
struct CrashMarker(#[allow(dead_code)] &'static str);

/// Called by the shared hook dispatcher on every `hooks::point`; kills
/// the calling thread when its armed label matches. No-op everywhere
/// else — in particular for scheduler virtual threads and ordinary
/// tests, whose `CRASH_AT` slot is `None`.
pub(crate) fn hit(label: &'static str) {
    if CRASH_AT.with(|c| c.get()) == Some(label) {
        CRASH_AT.with(|c| c.set(None));
        std::panic::panic_any(CrashMarker(label));
    }
}

/// Runs `f`, crashing it at the first hook point named `label`.
///
/// Returns `Some(result)` when `f` completed without reaching the
/// point (the label never fired), `None` when the injected crash cut
/// it short. A genuine panic inside `f` is re-raised unchanged.
///
/// The crash only unwinds the operation — the in-memory store object
/// survives (its locks are poison-adopted by design). To model the
/// process dying, drop the store afterwards and reopen from disk; the
/// tests below do exactly that.
pub fn crash_at<R>(label: &'static str, f: impl FnOnce() -> R) -> Option<R> {
    crate::sched::ensure_hooks_installed();
    CRASH_AT.with(|c| c.set(Some(label)));
    let r = crate::quiet::with_quiet_panics(|| catch_unwind(AssertUnwindSafe(f)));
    CRASH_AT.with(|c| c.set(None));
    match r {
        Ok(v) => Some(v),
        Err(p) if p.downcast_ref::<CrashMarker>().is_some() => None,
        Err(p) => resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::{Path, PathBuf};
    use std::sync::Arc;
    use utcq_core::{CompressParams, StiuParams, Store, WalConfig};
    use utcq_datagen::profile;
    use utcq_traj::Dataset;

    /// A scratch directory unique to one test.
    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("utcq-crash-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk tmp dir");
        dir
    }

    /// Two ingest batches over a tiny synthetic dataset.
    fn two_batches() -> (Arc<utcq_network::RoadNetwork>, Dataset, Dataset) {
        let (net, mut a) = utcq_datagen::generate(&profile::tiny(), 6, 11);
        let mut b = a.clone();
        b.trajectories = a.trajectories.split_off(3);
        (Arc::new(net), a, b)
    }

    fn build(net: &Arc<utcq_network::RoadNetwork>, ds: &Dataset) -> Store {
        Store::build(
            Arc::clone(net),
            ds,
            CompressParams::with_interval(ds.default_interval),
            StiuParams::default(),
        )
        .expect("build store")
    }

    /// Saves `store` and returns the container bytes — the
    /// byte-identity probe every crash case is judged by.
    fn container_bytes(store: &Store, dir: &Path, name: &str) -> Vec<u8> {
        let p = dir.join(name);
        store.save(&p).expect("save");
        std::fs::read(&p).expect("read saved container")
    }

    /// The crash-point matrix: for each label, crash one ingest there,
    /// reopen, and check the recovered state against the no-crash
    /// reference for that label's durability class.
    #[test]
    fn ingest_crash_points_recover_byte_identical() {
        // Labels before the record is in the file lose the batch;
        // labels after keep it (fsync'd or still in the OS cache — a
        // same-machine restart reads both).
        let cases: &[(&str, bool)] = &[
            ("wal.before_append", false),
            ("wal.appended", true),
            ("wal.synced", true),
        ];
        for &(label, survives) in cases {
            let dir = tmp_dir(&label.replace('.', "-"));
            let (net, a, b) = two_batches();
            let container = dir.join("c.utcq");
            build(&net, &a).save(&container).expect("seed container");

            let wal_cfg = || WalConfig::new(dir.join("log.wal"));
            let store = Store::open_durable(&container, wal_cfg()).expect("open durable");
            let epoch_before = store.snapshot().epoch();
            let crashed = crash_at(label, || store.ingest(&b));
            assert!(crashed.is_none(), "{label}: crash point must fire");
            drop(store);

            // The process "died"; reopen from disk and replay.
            let reopened = Store::open_durable(&container, wal_cfg()).expect("reopen");
            let recovered = container_bytes(&reopened, &dir, "recovered.utcq");

            // Reference: the same history executed without a crash.
            let reference = Store::open(&container).expect("reference open");
            if survives {
                reference.ingest(&b).expect("reference ingest");
            }
            let expected = container_bytes(&reference, &dir, "reference.utcq");
            assert_eq!(
                recovered, expected,
                "{label}: recovered container must be byte-identical to the reference"
            );

            // Epochs stay monotonic: exactly one epoch per surviving
            // batch, none for a lost one.
            let want_epoch = epoch_before + u64::from(survives);
            assert_eq!(reopened.snapshot().epoch(), want_epoch, "{label}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// A torn final record (the classic power-cut shape: the frame
    /// header landed, the payload didn't finish) is truncated away on
    /// open — the batch is lost, everything before it replays.
    #[test]
    fn torn_final_record_truncates_to_the_last_full_batch() {
        let dir = tmp_dir("torn");
        let (net, a, b) = two_batches();
        let container = dir.join("c.utcq");
        build(&net, &a).save(&container).expect("seed container");
        let wal_path = dir.join("log.wal");

        let store = Store::open_durable(&container, WalConfig::new(&wal_path)).expect("open");
        store.ingest(&b).expect("ingest");
        drop(store);

        // Tear the tail mid-record.
        let bytes = std::fs::read(&wal_path).expect("read wal");
        std::fs::write(&wal_path, &bytes[..bytes.len() - 7]).expect("tear");

        let reopened = Store::open_durable(&container, WalConfig::new(&wal_path)).expect("reopen");
        let recovered = container_bytes(&reopened, &dir, "recovered.utcq");
        let expected = container_bytes(&Store::open(&container).expect("ref"), &dir, "ref.utcq");
        assert_eq!(recovered, expected, "torn batch must be dropped cleanly");
        assert_eq!(reopened.snapshot().epoch(), 0);
        // And the truncation is physical: a second reopen starts from a
        // clean, header-only-or-full-records file with no torn tail.
        drop(reopened);
        let scanned = utcq_core::wal::scan(&std::fs::read(&wal_path).expect("reread"))
            .expect("scan truncated log");
        assert!(!scanned.torn, "open must have truncated the torn tail");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Crash between the checkpoint's tmp-file write and its rename:
    /// the old container stays intact, the log is not truncated, and a
    /// reopen replays the full history.
    #[test]
    fn mid_checkpoint_rename_crash_keeps_log_and_container_consistent() {
        let dir = tmp_dir("ckpt-rename");
        let (net, a, b) = two_batches();
        let container = dir.join("c.utcq");
        build(&net, &a).save(&container).expect("seed container");
        let wal_cfg = || WalConfig::new(dir.join("log.wal")).checkpoint_to(&container);

        let store = Store::open_durable(&container, wal_cfg()).expect("open");
        store.ingest(&b).expect("ingest");
        let log_bytes = store.wal_bytes().expect("wal attached");
        let crashed = crash_at("save.before_rename", || store.checkpoint());
        assert!(crashed.is_none(), "crash point must fire");
        drop(store);

        // Neither side of the checkpoint happened: same log, and the
        // container still opens to the pre-checkpoint state.
        let reopened = Store::open_durable(&container, wal_cfg()).expect("reopen");
        assert_eq!(
            reopened.wal_bytes(),
            Some(log_bytes),
            "interrupted checkpoint must not truncate the log"
        );
        assert_eq!(reopened.snapshot().epoch(), 1, "batch replays");
        let recovered = container_bytes(&reopened, &dir, "recovered.utcq");
        let reference = Store::open(&container).expect("ref");
        reference.ingest(&b).expect("reference ingest");
        let expected = container_bytes(&reference, &dir, "ref.utcq");
        assert_eq!(recovered, expected);

        // A completed checkpoint afterwards truncates and the next
        // open replays nothing.
        let report = reopened.checkpoint().expect("checkpoint").expect("report");
        assert_eq!(report.epoch, 1);
        drop(reopened);
        let fresh = Store::open_durable(&container, wal_cfg()).expect("post-checkpoint open");
        assert_eq!(fresh.snapshot().epoch(), 0, "log was truncated");
        assert_eq!(fresh.len(), 6, "checkpointed container holds both batches");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A label that never fires leaves the operation untouched and
    /// returns its result; genuine panics still propagate.
    #[test]
    fn unfired_labels_and_real_panics_pass_through() {
        assert_eq!(crash_at("no.such.label", || 41 + 1), Some(42));
        // No outer with_quiet_panics here: crash_at takes the hook lock
        // itself, and resume_unwind bypasses the hook anyway.
        let r = catch_unwind(AssertUnwindSafe(|| {
            crash_at("no.such.label", || panic!("genuine"))
        }));
        let msg = crate::quiet::payload_msg(r.expect_err("must propagate"));
        assert!(msg.contains("genuine"), "{msg}");
    }
}
