//! A structure-aware, seeded fuzzer for the parse surfaces that face
//! untrusted bytes: the binary container loaders (`utcq_core::storage`,
//! `Store::open`/`Opened::open`), the serve wire protocol
//! (`wire::handle_line`) and the write-ahead-log reader
//! (`utcq_core::wal::scan` / `Wal::open`).
//!
//! No external fuzzing engine (the workspace builds offline): the
//! corpus is the checked-in fixtures under `tests/fixtures/`, the
//! mutation engine is the workspace `rand` shim seeded from the CLI,
//! and the contract under test is simple — **parsers return `Err` (or
//! a protocol error line); they never panic**. Every iteration is
//! reproducible from `(seed, iteration)` alone.
//!
//! Failures are minimized with a ddmin-style reducer and written to
//! `tests/fuzz_regressions/`, where a checked-in test replays them
//! forever after.

use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use rand::prelude::*;
use utcq_core::wal;
use utcq_core::wire::{self, Json};
use utcq_core::Opened;

use crate::quiet::with_quiet_panics;

/// Fuzzer parameters.
#[derive(Clone, Debug)]
pub struct FuzzOpts {
    /// Mutated inputs to execute.
    pub iters: u64,
    /// Master seed; `(seed, iteration)` fully determines each input.
    pub seed: u64,
    /// Where to write minimized failing inputs (skipped when `None`).
    pub regressions_dir: Option<PathBuf>,
    /// Stop after this many distinct failures.
    pub max_failures: usize,
    /// Fuzz only this harness (`container`, `wire` or `wal`); `None`
    /// splits iterations across all of them.
    pub target: Option<String>,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        Self {
            iters: 10_000,
            seed: 0xC0FFEE,
            regressions_dir: None,
            max_failures: 8,
            target: None,
        }
    }
}

/// One input that made a parser panic.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Which harness: `container`, `wire` or `wal`.
    pub target: &'static str,
    /// The panic message.
    pub message: String,
    /// Iteration that produced it (with the master seed, replays it).
    pub iteration: u64,
    /// Size of the minimized reproducer.
    pub minimized_len: usize,
    /// Where the reproducer was written, if a directory was given.
    pub path: Option<PathBuf>,
}

/// The result of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters: u64,
    /// Corpus seeds loaded (containers + lines).
    pub corpus: usize,
    /// Panics found (empty on a healthy run).
    pub failures: Vec<Failure>,
}

/// The seed corpus plus the long-lived query target mutated requests
/// are executed against.
pub struct Fixtures {
    containers: Vec<Vec<u8>>,
    lines: Vec<String>,
    wals: Vec<Vec<u8>>,
    opened: Opened,
    scratch: PathBuf,
    wal_scratch: PathBuf,
}

impl Fixtures {
    /// Loads the corpus from `tests/fixtures/` under `repo_root`.
    pub fn load(repo_root: &Path) -> io::Result<Self> {
        let dir = repo_root.join("tests/fixtures");
        let mut containers = Vec::new();
        for name in ["tiny_v1.utcq", "tiny_v2.utcq", "tiny_v3.utcq"] {
            containers.push(fs::read(dir.join(name))?);
        }
        let mut lines: Vec<String> = Vec::new();
        for name in ["serve_session.ndjson", "serve_session_writable.ndjson"] {
            let text = fs::read_to_string(dir.join(name))?;
            lines.extend(
                text.lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty())
                    .map(String::from),
            );
        }
        // A few canonical shapes the sessions may not cover. The first
        // range line is deliberately the *wrong* field shape (a legacy
        // guess) — rejection paths deserve seeds too.
        lines.push(
            r#"{"op":"range","rect":[0,0,1000,1000],"t":70000,"alpha":0.1,"limit":3}"#.into(),
        );
        // Well-formed PROTOCOL.md range requests, so mutations start
        // from the real grammar: the wire shape is min_x/min_y/max_x/
        // max_y + tq, α optional. Boundary and adversarial α values
        // (0, 1, out-of-range, overflowing literal, non-numeric) seed
        // the probability-pruning and error paths directly.
        lines.push(
            r#"{"op":"range","min_x":0,"min_y":0,"max_x":1000,"max_y":1000,"tq":70000,"alpha":0.1,"limit":3}"#.into(),
        );
        lines.push(
            r#"{"id":7,"op":"range","min_x":-4.5,"min_y":-4.5,"max_x":4.5,"max_y":4.5,"tq":19285,"alpha":0,"cursor":"1"}"#.into(),
        );
        lines.push(
            r#"{"op":"range","min_x":0,"min_y":0,"max_x":1,"max_y":1,"tq":0,"alpha":1}"#.into(),
        );
        lines.push(
            r#"{"op":"range","min_x":0,"min_y":0,"max_x":1,"max_y":1,"tq":0,"alpha":-3.5}"#.into(),
        );
        lines.push(
            r#"{"op":"range","min_x":0,"min_y":0,"max_x":1,"max_y":1,"tq":0,"alpha":1e999}"#.into(),
        );
        lines.push(
            r#"{"op":"range","min_x":0,"min_y":0,"max_x":1,"max_y":1,"tq":0,"alpha":"NaN"}"#.into(),
        );
        lines.push(r#"{"op":"when","traj":0,"edge":1,"d":10.5,"alpha":0}"#.into());
        lines.push(r#"{"op":"stats"}"#.into());
        let opened = Opened::open(dir.join("tiny_v2.utcq"))
            .map_err(|e| io::Error::other(format!("open tiny_v2 fixture: {e}")))?;
        let scratch = std::env::temp_dir().join(format!(
            "utcq-audit-fuzz-{}-{:x}.utcq",
            std::process::id(),
            &containers as *const _ as usize
        ));
        let wal_scratch = scratch.with_extension("wal");
        Ok(Self {
            containers,
            lines,
            wals: wal_seed_corpus(),
            opened,
            scratch,
            wal_scratch,
        })
    }

    fn corpus_len(&self) -> usize {
        self.containers.len() + self.lines.len() + self.wals.len()
    }
}

impl Drop for Fixtures {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.scratch);
        let _ = fs::remove_file(&self.wal_scratch);
    }
}

/// Builds well-formed WAL files in memory — header plus a few
/// checksummed batch records — as the seed corpus for the `wal` target.
fn wal_seed_corpus() -> Vec<Vec<u8>> {
    use utcq_network::EdgeId;
    use utcq_traj::{Instance, PathPosition, UncertainTrajectory};
    let record = |epoch: u64, id: u64, n_times: usize| wal::Record {
        epoch,
        name: format!("fuzz-seed-{id}"),
        default_interval: 30,
        trajectories: vec![UncertainTrajectory {
            id,
            times: (0..n_times as i64).map(|k| k * 30).collect(),
            instances: vec![Instance {
                path: vec![EdgeId(0), EdgeId(1), EdgeId(2)],
                positions: vec![
                    PathPosition {
                        path_idx: 0,
                        rd: 0.25,
                    },
                    PathPosition {
                        path_idx: 1,
                        rd: 0.5,
                    },
                    PathPosition {
                        path_idx: 2,
                        rd: 0.75,
                    },
                ],
                prob: 0.5,
            }],
        }],
    };
    let header = || {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(wal::WAL_MAGIC);
        bytes.extend_from_slice(&wal::WAL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no extra header
        bytes
    };
    let mut one = header();
    one.extend_from_slice(&wal::encode_record(&record(1, 10, 3)));
    let mut three = header();
    for (e, id) in [(1u64, 20u64), (2, 21), (3, 22)] {
        three.extend_from_slice(&wal::encode_record(&record(e, id, 5)));
    }
    vec![header(), one, three]
}

// ---------------------------------------------------------------------
// Harnesses: run a candidate input through every parser that should
// reject it gracefully. The contract is "no panic"; return values are
// deliberately ignored.

fn container_harness(fx: &Fixtures, bytes: &[u8]) {
    let _ = utcq_core::storage::load(&mut &bytes[..]);
    let _ = utcq_core::storage::load_v2(&mut &bytes[..]);
    let _ = utcq_core::storage::load_v3(&mut &bytes[..]);
    // The full open path (header sniffing, snapshot build) via the
    // facade; a scratch file because `open` takes a path.
    if fs::write(&fx.scratch, bytes).is_ok() {
        let _ = Opened::open(&fx.scratch);
    }
}

fn wire_harness(fx: &Fixtures, bytes: &[u8]) {
    let Ok(line) = std::str::from_utf8(bytes) else {
        return; // requests are lines of text by construction
    };
    let _ = Json::parse(line);
    let _ = wire::handle_line(&fx.opened, line);
}

fn wal_harness(fx: &Fixtures, bytes: &[u8]) {
    // The pure scanner first (what replay and torn-tail detection run
    // on), then the full open path, which additionally truncates a torn
    // tail on a scratch copy of the file.
    let _ = wal::scan(bytes);
    if fs::write(&fx.wal_scratch, bytes).is_ok() {
        let _ = wal::Wal::open(&wal::WalConfig::new(&fx.wal_scratch));
    }
}

fn runs_clean(fx: &Fixtures, target: &str, bytes: &[u8]) -> Result<(), String> {
    let r = catch_unwind(AssertUnwindSafe(|| match target {
        "container" => container_harness(fx, bytes),
        "wal" => wal_harness(fx, bytes),
        _ => wire_harness(fx, bytes),
    }));
    r.map_err(crate::quiet::payload_msg)
}

// ---------------------------------------------------------------------
// Mutation engine.

/// Huge decimal strings that overflow u64/i64/f64-exactness when a
/// field is swapped for one (cursor fields travel as decimal strings).
const HUGE_DECIMALS: &[&str] = &[
    "9223372036854775808",                     // 2^63
    "18446744073709551615",                    // 2^64 - 1
    "18446744073709551616",                    // 2^64
    "340282366920938463463374607431768211456", // 2^128
    "-9223372036854775809",
];

fn mutate_bytes(rng: &mut StdRng, data: &mut Vec<u8>) {
    if data.is_empty() {
        data.extend_from_slice(b"\x00");
        return;
    }
    match rng.gen_range(0u32..7) {
        0 => {
            // Flip one bit.
            let i = rng.gen_range(0..data.len());
            data[i] ^= 1 << rng.gen_range(0u32..8);
        }
        1 => {
            // Overwrite one byte.
            let i = rng.gen_range(0..data.len());
            data[i] = (rng.gen::<u32>() & 0xFF) as u8;
        }
        2 => {
            // Truncate.
            data.truncate(rng.gen_range(0..data.len()));
        }
        3 => {
            // Zero a range.
            let i = rng.gen_range(0..data.len());
            let j = (i + rng.gen_range(1..64usize)).min(data.len());
            for b in &mut data[i..j] {
                *b = 0;
            }
        }
        4 => {
            // Corrupt a little-endian length-looking field: huge or
            // sign-flipped values provoke over-allocation bugs.
            let width = if rng.gen_bool(0.5) { 4 } else { 8 };
            if data.len() > width {
                let i = rng.gen_range(0..data.len() - width);
                let v: u64 = if rng.gen_bool(0.5) {
                    u64::MAX
                } else {
                    rng.gen::<u64>()
                };
                data[i..i + width].copy_from_slice(&v.to_le_bytes()[..width]);
            }
        }
        5 => {
            // Duplicate a chunk (messes with element counts).
            let i = rng.gen_range(0..data.len());
            let j = (i + rng.gen_range(1..32usize)).min(data.len());
            let chunk: Vec<u8> = data[i..j].to_vec();
            let at = rng.gen_range(0..=data.len());
            data.splice(at..at, chunk);
        }
        _ => {
            // Insert random bytes.
            let at = rng.gen_range(0..=data.len());
            let n = rng.gen_range(1..16usize);
            let junk: Vec<u8> = (0..n).map(|_| (rng.gen::<u32>() & 0xFF) as u8).collect();
            data.splice(at..at, junk);
        }
    }
}

fn mutate_line(rng: &mut StdRng, line: &mut String) {
    match rng.gen_range(0u32..6) {
        0 => {
            // Swap a number (or any digit run) for a huge decimal.
            let digits: Vec<(usize, usize)> = digit_runs(line);
            if let Some(&(start, end)) = pick(rng, &digits) {
                let huge = HUGE_DECIMALS[rng.gen_range(0..HUGE_DECIMALS.len())];
                line.replace_range(start..end, huge);
            }
        }
        1 => {
            // Duplicate a top-level-ish "key":value segment.
            let commas: Vec<usize> = line
                .char_indices()
                .filter(|&(_, c)| c == ',')
                .map(|(i, _)| i)
                .collect();
            if let Some(&cut) = pick(rng, &commas) {
                let end = line[cut + 1..]
                    .find([',', '}'])
                    .map_or(line.len(), |e| cut + 1 + e);
                let segment = line[cut..end].to_string();
                line.insert_str(cut, &segment);
            }
        }
        2 => {
            // Rename a key by mangling a letter inside quotes.
            let letters: Vec<usize> = line
                .char_indices()
                .filter(|&(i, c)| c.is_ascii_lowercase() && line[..i].matches('"').count() % 2 == 1)
                .map(|(i, _)| i)
                .collect();
            if let Some(&i) = pick(rng, &letters) {
                let c = (b'a' + (rng.gen::<u32>() % 26) as u8) as char;
                line.replace_range(i..i + 1, &c.to_string());
            }
        }
        3 => {
            // Deep nesting around the JSON depth limit.
            let depth = rng.gen_range(100..200usize);
            let mut nested = String::with_capacity(depth * 2 + 32);
            nested.push_str("{\"op\":\"where\",\"traj\":");
            for _ in 0..depth {
                nested.push('[');
            }
            nested.push('1');
            for _ in 0..depth {
                nested.push(']');
            }
            nested.push('}');
            *line = nested;
        }
        4 => {
            // Oversize the line past MAX_REQUEST_BYTES.
            let pad = wire::MAX_REQUEST_BYTES + rng.gen_range(1..4096usize);
            let mut big = line.clone();
            big.reserve(pad);
            while big.len() <= pad {
                big.push(' ');
            }
            *line = big;
        }
        _ => {
            // Fall back to byte-level damage, repaired into UTF-8.
            let mut bytes = line.clone().into_bytes();
            mutate_bytes(rng, &mut bytes);
            *line = String::from_utf8_lossy(&bytes).into_owned();
        }
    }
}

fn digit_runs(s: &str) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut start = None;
    for (i, c) in s.char_indices() {
        match (c.is_ascii_digit(), start) {
            (true, None) => start = Some(i),
            (false, Some(st)) => {
                runs.push((st, i));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(st) = start {
        runs.push((st, s.len()));
    }
    runs
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())]) // bounds: non-empty checked
    }
}

/// Builds the input for `(seed, iteration)` — the whole run replays
/// from these two numbers (and the optional forced target).
fn build_input(
    fx: &Fixtures,
    seed: u64,
    iteration: u64,
    forced: Option<&str>,
) -> (&'static str, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let rounds = rng.gen_range(1..=4usize);
    let target = match forced {
        Some("container") => 0,
        Some("wal") => 1,
        Some(_) => 2,
        None => rng.gen_range(0u32..3),
    };
    match target {
        0 => {
            let base = &fx.containers[rng.gen_range(0..fx.containers.len())]; // bounds: three fixtures always load
            let mut bytes = base.clone();
            for _ in 0..rounds {
                mutate_bytes(&mut rng, &mut bytes);
            }
            ("container", bytes)
        }
        1 => {
            let base = &fx.wals[rng.gen_range(0..fx.wals.len())]; // bounds: three seeds always built
            let mut bytes = base.clone();
            for _ in 0..rounds {
                mutate_bytes(&mut rng, &mut bytes);
            }
            ("wal", bytes)
        }
        _ => {
            let base = &fx.lines[rng.gen_range(0..fx.lines.len())]; // bounds: fixture sessions are non-empty
            let mut line = base.clone();
            for _ in 0..rounds {
                mutate_line(&mut rng, &mut line);
            }
            ("wire", line.into_bytes())
        }
    }
}

// ---------------------------------------------------------------------
// Minimization: ddmin-lite. Repeatedly delete chunks (halving the
// chunk size) while the input still panics, bounded by a fixed budget
// of harness executions.

fn minimize(fx: &Fixtures, target: &str, input: &[u8]) -> Vec<u8> {
    let mut cur = input.to_vec();
    let mut budget = 2_000usize;
    let mut chunk = (cur.len() / 2).max(1);
    while chunk >= 1 && budget > 0 {
        let mut i = 0;
        let mut shrunk = false;
        while i < cur.len() && budget > 0 {
            let mut candidate = Vec::with_capacity(cur.len());
            candidate.extend_from_slice(&cur[..i]);
            candidate.extend_from_slice(&cur[(i + chunk).min(cur.len())..]);
            budget -= 1;
            if !candidate.is_empty() && runs_clean(fx, target, &candidate).is_err() {
                cur = candidate;
                shrunk = true;
                // Same offset again: the next chunk slid into place.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 && !shrunk {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    cur
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the fuzzer. Deterministic for a given `(corpus, opts)`.
pub fn run(fx: &Fixtures, opts: &FuzzOpts) -> io::Result<FuzzReport> {
    let mut report = FuzzReport {
        corpus: fx.corpus_len(),
        ..FuzzReport::default()
    };
    let mut seen_messages: Vec<String> = Vec::new();
    with_quiet_panics(|| {
        for i in 0..opts.iters {
            let (target, input) = build_input(fx, opts.seed, i, opts.target.as_deref());
            report.iters += 1;
            let Err(message) = runs_clean(fx, target, &input) else {
                continue;
            };
            // Dedup by panic message so one bug doesn't flood the run.
            if seen_messages.contains(&message) {
                continue;
            }
            seen_messages.push(message.clone());
            let minimized = minimize(fx, target, &input);
            let path = match &opts.regressions_dir {
                Some(dir) => {
                    fs::create_dir_all(dir)?;
                    let name = format!("{target}-{:016x}.bin", fnv1a(&minimized));
                    let p = dir.join(name);
                    fs::write(&p, &minimized)?;
                    Some(p)
                }
                None => None,
            };
            report.failures.push(Failure {
                target,
                message,
                iteration: i,
                minimized_len: minimized.len(),
                path,
            });
            if report.failures.len() >= opts.max_failures {
                break;
            }
        }
        Ok(())
    })
    .map(|()| report)
}

/// Replays every `*.bin` under `dir` (the regression corpus); returns
/// the inputs that still panic. An empty result is the healthy state.
pub fn replay_dir(fx: &Fixtures, dir: &Path) -> io::Result<Vec<Failure>> {
    let mut failures = Vec::new();
    if !dir.exists() {
        return Ok(failures);
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    entries.sort();
    with_quiet_panics(|| {
        for p in entries {
            let bytes = fs::read(&p)?;
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            let target = if name.starts_with("container-") {
                "container"
            } else if name.starts_with("wal-") {
                "wal"
            } else {
                "wire"
            };
            if let Err(message) = runs_clean(fx, target, &bytes) {
                failures.push(Failure {
                    target,
                    message,
                    iteration: 0,
                    minimized_len: bytes.len(),
                    path: Some(p),
                });
            }
        }
        Ok(())
    })
    .map(|()| failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixtures() -> Fixtures {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        Fixtures::load(&root).expect("fixture corpus")
    }

    #[test]
    fn inputs_are_reproducible_from_seed_and_iteration() {
        let fx = fixtures();
        for i in [0, 1, 17, 4096] {
            let a = build_input(&fx, 0xC0FFEE, i, None);
            let b = build_input(&fx, 0xC0FFEE, i, None);
            assert_eq!(a, b);
        }
        let (_, a) = build_input(&fx, 1, 0, None);
        let (_, b) = build_input(&fx, 2, 0, None);
        assert_ne!(a, b, "different seeds must differ");
        for forced in ["container", "wal", "wire"] {
            let (t, _) = build_input(&fx, 1, 0, Some(forced));
            assert_eq!(t, forced);
        }
    }

    #[test]
    fn pristine_fixtures_run_clean() {
        let fx = fixtures();
        for (i, c) in fx.containers.clone().iter().enumerate() {
            assert!(runs_clean(&fx, "container", c).is_ok(), "fixture {i}");
        }
        for l in fx.lines.clone() {
            assert!(runs_clean(&fx, "wire", l.as_bytes()).is_ok(), "{l}");
        }
        for (i, w) in fx.wals.clone().iter().enumerate() {
            assert!(runs_clean(&fx, "wal", w).is_ok(), "wal seed {i}");
        }
    }

    #[test]
    fn smoke_run_is_deterministic_and_panic_free() {
        let fx = fixtures();
        let opts = FuzzOpts {
            iters: 300,
            seed: 0xC0FFEE,
            regressions_dir: None,
            max_failures: 8,
            target: None,
        };
        let r1 = run(&fx, &opts).unwrap();
        assert_eq!(r1.iters, 300);
        if let Some(f) = r1.failures.first() {
            panic!("fuzzer found a panic: [{}] {}", f.target, f.message);
        }
    }
}
