//! A miniature deterministic model checker for the store's
//! concurrency protocols, in the spirit of `loom` (shipped in-tree —
//! the workspace builds offline).
//!
//! Virtual threads are plain OS threads gated so that **exactly one
//! runs at a time**; they hand control over at explicit yield points —
//! the `utcq_core::hooks::point` instrumentation compiled in by the
//! core's `audit` feature, or direct [`point`] calls in modelled code.
//! A schedule is the sequence of "which thread runs next" choices made
//! at those points. The explorer enumerates schedules by depth-first
//! search over a replayed choice prefix, bounded by the number of
//! *preemptions* (choices that switch away from a thread that could
//! have continued) — the classic CHESS result is that almost all
//! concurrency bugs surface within two or three preemptions, so a
//! small bound buys near-exhaustive coverage at a tractable cost.
//!
//! Determinism is the point: a reported violation carries the exact
//! schedule that produced it, and replaying that schedule reproduces
//! the failure every time.
//!
//! ## Placement rule for yield points
//!
//! A yield point must never sit inside a *contended* critical section:
//! a virtual thread suspended while holding a `std` lock would
//! deadlock any scheduled thread that then takes the same lock (the
//! scheduler detects and reports this as a stall rather than hanging).
//! The hooks in `utcq_core` observe this rule — they bracket lock
//! acquisitions from outside, and the only lock held across a point
//! (the store's writer mutex) is taken by exactly one modelled thread.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::time::Duration;

/// Payload used to unwind virtual threads when a run is abandoned
/// (deadlock or replay divergence); never reported as a violation.
const ABORT: &str = "utcq-audit-sched-abort";

/// How long the driver waits without progress before declaring the
/// schedule stalled (a real deadlock, or a blocked virtual thread).
const STALL: Duration = Duration::from_secs(10);

/// Hard cap on choices in one schedule; past it the run is reported
/// as a livelock instead of spinning forever.
const MAX_TRACE: usize = 100_000;

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct SchedOpts {
    /// Maximum preemptive context switches per schedule (CHESS-style
    /// bound; non-preemptive switches at thread exit are free).
    pub preemption_bound: usize,
    /// Stop after this many schedules even if the space is larger.
    pub max_schedules: usize,
}

impl Default for SchedOpts {
    fn default() -> Self {
        Self {
            preemption_bound: 4,
            max_schedules: 1_000,
        }
    }
}

/// One interleaving's worth of work: the virtual threads to run, plus
/// an optional quiescence check executed after every thread finished.
pub struct Scenario {
    /// The virtual threads. Index = thread id in schedules/traces.
    pub threads: Vec<Box<dyn FnOnce() + Send + 'static>>,
    /// Runs on the driver after all threads join — for invariants that
    /// only hold at quiescence. A panic here is a violation.
    pub finale: Option<Box<dyn FnOnce() + Send + 'static>>,
}

/// A failed schedule: what broke and exactly how to replay it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The panic/assertion message.
    pub message: String,
    /// The choice sequence to replay (thread id per yield point).
    pub schedule: Vec<usize>,
    /// Human-readable trace: one `t<id> @ label` entry per choice.
    pub trace: Vec<String>,
}

/// The result of exploring one scenario.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Scenario name (for reporting).
    pub name: String,
    /// Distinct schedules executed.
    pub schedules: usize,
    /// True when the bounded schedule space was fully enumerated.
    pub exhausted: bool,
    /// The first violation found, if any (exploration stops there).
    pub violation: Option<Violation>,
}

#[derive(Clone, Debug)]
struct Choice {
    chosen: usize,
    enabled: Vec<usize>,
    prev: Option<usize>,
    preemption: bool,
    label: &'static str,
}

struct State {
    n: usize,
    registered: usize,
    current: Option<usize>,
    finished: Vec<bool>,
    finished_count: usize,
    prefix: Vec<usize>,
    trace: Vec<Choice>,
    violation: Option<String>,
    aborted: bool,
}

struct Shared {
    mu: Mutex<State>,
    cv: Condvar,
}

impl Shared {
    fn new(n: usize, prefix: Vec<usize>) -> Self {
        Shared {
            mu: Mutex::new(State {
                n,
                registered: 0,
                current: None,
                finished: vec![false; n],
                finished_count: 0,
                prefix,
                trace: Vec::new(),
                violation: None,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        match self.mu.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// First call of every virtual thread: report in, then wait to be
    /// scheduled. The last thread to register makes the first choice.
    fn enter(&self, t: usize) {
        let mut st = self.lock();
        st.registered += 1;
        if st.registered == st.n {
            choose(&mut st, None, "start");
        }
        self.cv.notify_all();
        self.wait_for_turn(st, t);
    }

    /// A yield point: pick who runs next; park if it is not us.
    fn yield_point(&self, t: usize, label: &'static str) {
        let mut st = self.lock();
        if st.aborted {
            drop(st);
            std::panic::panic_any(ABORT);
        }
        choose(&mut st, Some(t), label);
        if st.current == Some(t) {
            return;
        }
        self.cv.notify_all();
        self.wait_for_turn(st, t);
    }

    fn wait_for_turn(&self, mut st: std::sync::MutexGuard<'_, State>, t: usize) {
        loop {
            if st.aborted {
                drop(st);
                std::panic::panic_any(ABORT);
            }
            if st.current == Some(t) {
                return;
            }
            st = match self.cv.wait_timeout(st, Duration::from_millis(100)) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Last call of every virtual thread (normal return or panic):
    /// mark finished and hand control to a remaining thread.
    fn finish(&self, t: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.finished[t] = true;
        st.finished_count += 1;
        if let Some(m) = panic_msg {
            if m != ABORT && st.violation.is_none() {
                st.violation = Some(m);
            }
        }
        if st.finished_count < st.n && !st.aborted && st.violation.is_none() {
            choose(&mut st, Some(t), "exit");
        } else {
            st.current = None;
            // A violation ends the run: release every parked thread.
            if st.violation.is_some() {
                st.aborted = true;
            }
        }
        self.cv.notify_all();
    }

    /// Driver side: wait for all threads to finish; on a stall, mark
    /// the run aborted (parked threads unwind, stuck ones are leaked —
    /// exploration stops right after, so at most once per audit run).
    fn wait_done(&self) -> bool {
        let mut st = self.lock();
        let mut last_progress = (st.registered, st.finished_count, st.trace.len());
        let mut stalled_for = Duration::ZERO;
        loop {
            if st.finished_count == st.n {
                return true;
            }
            let before = std::time::Instant::now();
            st = match self.cv.wait_timeout(st, Duration::from_millis(100)) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
            let progress = (st.registered, st.finished_count, st.trace.len());
            if progress != last_progress {
                last_progress = progress;
                stalled_for = Duration::ZERO;
            } else {
                stalled_for += before.elapsed();
                if stalled_for >= STALL {
                    if st.violation.is_none() {
                        st.violation = Some(format!(
                            "schedule stalled: no progress for {STALL:?} \
                             (deadlock, or a virtual thread blocked on a real lock)"
                        ));
                    }
                    st.aborted = true;
                    self.cv.notify_all();
                    return false;
                }
            }
        }
    }
}

/// The default extension policy and the DFS alternative order share
/// this: the previously running thread first (run to completion —
/// zero preemptions), then the rest by ascending id.
fn alt_order(prev: Option<usize>, enabled: &[usize]) -> Vec<usize> {
    let default = match prev {
        Some(p) if enabled.contains(&p) => p,
        _ => enabled[0], // bounds: choose() never runs with an empty enabled set
    };
    let mut order = vec![default];
    order.extend(enabled.iter().copied().filter(|&e| e != default));
    order
}

fn choose(st: &mut State, prev: Option<usize>, label: &'static str) {
    let enabled: Vec<usize> = (0..st.n).filter(|&t| !st.finished[t]).collect();
    if enabled.is_empty() {
        st.current = None;
        return;
    }
    if st.trace.len() >= MAX_TRACE {
        if st.violation.is_none() {
            st.violation = Some(format!("livelock: more than {MAX_TRACE} scheduling points"));
        }
        st.aborted = true;
        return;
    }
    let order = alt_order(prev, &enabled);
    let chosen = if st.trace.len() < st.prefix.len() {
        let want = st.prefix[st.trace.len()];
        if enabled.contains(&want) {
            want
        } else {
            // Replay divergence would mean the scenario is
            // nondeterministic; surface it loudly instead of exploring
            // garbage.
            if st.violation.is_none() {
                st.violation = Some(format!(
                    "replay divergence: schedule wants t{want} at step {} \
                     but enabled set is {enabled:?}",
                    st.trace.len()
                ));
            }
            st.aborted = true;
            return;
        }
    } else {
        order[0] // bounds: alt_order returns at least the default
    };
    let preemption = matches!(prev, Some(p) if !st.finished[p] && chosen != p);
    st.trace.push(Choice {
        chosen,
        enabled,
        prev,
        preemption,
        label,
    });
    st.current = Some(chosen);
}

/// The deepest-first next prefix to explore, or `None` when the
/// bounded space is exhausted.
fn next_prefix(trace: &[Choice], bound: usize) -> Option<Vec<usize>> {
    // preemptions_before[i] = preemptions among choices 0..i
    let mut pre = Vec::with_capacity(trace.len() + 1);
    pre.push(0usize);
    for c in trace {
        // bounds: pushed one entry per iteration, last() always present
        let last = *pre.last().unwrap_or(&0);
        pre.push(last + usize::from(c.preemption));
    }
    for i in (0..trace.len()).rev() {
        let c = &trace[i]; // bounds: i < trace.len() by the loop range
        let order = alt_order(c.prev, &c.enabled);
        let Some(cur) = order.iter().position(|&x| x == c.chosen) else {
            continue;
        };
        for &alt in &order[cur + 1..] {
            // bounds: cur < order.len() from position()
            let is_pre = matches!(c.prev, Some(p) if p != alt && c.enabled.contains(&p));
            if pre[i] + usize::from(is_pre) <= bound {
                // bounds: pre has trace.len()+1 entries, i < trace.len()
                let mut p: Vec<usize> = trace[..i].iter().map(|c| c.chosen).collect();
                p.push(alt);
                return Some(p);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Hook plumbing: route `utcq_core::hooks::point` calls made on
// registered virtual threads into the scheduler; every other thread
// (the driver, `par_run` workers, ordinary tests) no-ops.

thread_local! {
    static VT: std::cell::RefCell<Option<(Arc<Shared>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn dispatch(label: &'static str) {
    // Crash injection first: a thread running under `crash::crash_at`
    // dies here when the label matches (no-op for every other thread).
    crate::crash::hit(label);
    // Clone out of the TLS slot before parking: yield_point blocks for
    // arbitrarily long and must not hold the RefCell borrow.
    let ctx = VT.with(|v| v.borrow().clone());
    if let Some((sh, t)) = ctx {
        sh.yield_point(t, label);
    }
}

pub(crate) fn ensure_hooks_installed() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| utcq_core::hooks::install(dispatch));
}

/// An explicit yield point for modelled (non-core) code — mock
/// protocol models call this directly. No-op outside a virtual
/// thread, exactly like the core's instrumented points.
pub fn point(label: &'static str) {
    dispatch(label);
}

fn run_once(prefix: &[usize], factory: &dyn Fn() -> Scenario) -> (Vec<Choice>, Option<String>) {
    let scenario = factory();
    let n = scenario.threads.len();
    let shared = Arc::new(Shared::new(n, prefix.to_vec()));
    let mut handles = Vec::with_capacity(n);
    for (t, f) in scenario.threads.into_iter().enumerate() {
        let sh = Arc::clone(&shared);
        let h = std::thread::Builder::new()
            .name(format!("vthread-{t}"))
            .spawn(move || {
                VT.with(|v| *v.borrow_mut() = Some((Arc::clone(&sh), t)));
                let r = catch_unwind(AssertUnwindSafe(|| {
                    sh.enter(t);
                    f();
                }));
                VT.with(|v| *v.borrow_mut() = None);
                sh.finish(t, r.err().map(crate::quiet::payload_msg));
            })
            .expect("spawn virtual thread");
        handles.push(h);
    }
    let clean = shared.wait_done();
    if clean {
        for h in handles {
            let _ = h.join();
        }
    }
    // On a stall the stuck threads are intentionally leaked (joining
    // would hang); exploration stops at the violation either way.
    let mut st = shared.lock();
    let violation = st.violation.take();
    let trace = std::mem::take(&mut st.trace);
    drop(st);
    if violation.is_none() {
        if let Some(finale) = scenario.finale {
            if let Err(p) = catch_unwind(AssertUnwindSafe(finale)) {
                return (
                    trace,
                    Some(format!("finale: {}", crate::quiet::payload_msg(p))),
                );
            }
        }
        return (trace, None);
    }
    (trace, violation)
}

/// Explores `factory`'s scenario under `opts`, depth-first over the
/// preemption-bounded schedule space. Deterministic: same scenario,
/// same options → same schedules in the same order.
pub fn explore(name: &str, opts: SchedOpts, factory: &dyn Fn() -> Scenario) -> Outcome {
    ensure_hooks_installed();
    crate::quiet::with_quiet_panics(|| {
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        loop {
            let (trace, violation) = run_once(&prefix, factory);
            schedules += 1;
            if let Some(message) = violation {
                let schedule = trace.iter().map(|c| c.chosen).collect();
                let trace = trace
                    .iter()
                    .map(|c| {
                        format!(
                            "t{} @ {}{}",
                            c.chosen,
                            c.label,
                            if c.preemption { "  [preempt]" } else { "" }
                        )
                    })
                    .collect();
                return Outcome {
                    name: name.to_string(),
                    schedules,
                    exhausted: false,
                    violation: Some(Violation {
                        message,
                        schedule,
                        trace,
                    }),
                };
            }
            if schedules >= opts.max_schedules {
                return Outcome {
                    name: name.to_string(),
                    schedules,
                    exhausted: false,
                    violation: None,
                };
            }
            match next_prefix(&trace, opts.preemption_bound) {
                Some(p) => prefix = p,
                None => {
                    return Outcome {
                        name: name.to_string(),
                        schedules,
                        exhausted: true,
                        violation: None,
                    }
                }
            }
        }
    })
}

// ---------------------------------------------------------------------
// Scenarios.

use std::sync::OnceLock;
use utcq_core::snapshot::Swap;
use utcq_core::store::StoreBuilder;
use utcq_core::{CompressParams, ShardedStore, Store, WalConfig};
use utcq_traj::Dataset;

/// The shared tiny dataset: generated once, split into an initial
/// cohort and an ingest batch with disjoint trajectory ids.
fn tiny_batches() -> &'static (Arc<utcq_network::RoadNetwork>, Dataset, Dataset) {
    static DATA: OnceLock<(Arc<utcq_network::RoadNetwork>, Dataset, Dataset)> = OnceLock::new();
    DATA.get_or_init(|| {
        let (net, mut a) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 4, 11);
        let mut b = a.clone();
        b.trajectories = a.trajectories.split_off(2);
        (Arc::new(net), a, b)
    })
}

fn build_store() -> Arc<Store> {
    let (net, a, _) = tiny_batches();
    let store = StoreBuilder::new(
        Arc::clone(net),
        CompressParams::with_interval(a.default_interval),
    )
    .ingest(a)
    .and_then(|b| b.finish())
    .expect("build tiny store");
    Arc::new(store)
}

fn build_sharded() -> Arc<ShardedStore> {
    let (net, a, _) = tiny_batches();
    let store = StoreBuilder::new(
        Arc::clone(net),
        CompressParams::with_interval(a.default_interval),
    )
    .shard_by(Arc::new(utcq_core::ByTime::default()), 2)
    .and_then(|b| b.ingest(a))
    .and_then(|b| b.finish())
    .expect("build tiny sharded store");
    Arc::new(store)
}

/// Pinned snapshots are immutable and epochs only move forward, even
/// with an ingest racing the reader.
pub fn store_pin_vs_ingest() -> Scenario {
    let store = build_store();
    let (_, _, b) = tiny_batches();
    let new_ids: Vec<u64> = b.trajectories.iter().map(|t| t.id).collect();
    let writer = {
        let store = Arc::clone(&store);
        let b = b.clone();
        Box::new(move || {
            store.ingest(&b).expect("ingest batch");
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = Box::new(move || {
        let pinned = store.snapshot();
        let e1 = pinned.epoch();
        let len1 = pinned.len();
        // Which of the batch's ids the pin already sees (it may see all
        // of them — the pin can land after the writer published).
        let had: Vec<bool> = new_ids
            .iter()
            .map(|&id| pinned.traj_index(id).is_some())
            .collect();
        // Interleaves with the writer's prepare/publish...
        let s2 = store.snapshot();
        assert!(
            s2.epoch() >= e1,
            "epoch went backwards: {} then {}",
            e1,
            s2.epoch()
        );
        assert!(s2.len() >= len1, "published snapshot lost trajectories");
        // ...but the pinned snapshot must be exactly what it was.
        assert_eq!(pinned.epoch(), e1, "pinned snapshot epoch mutated");
        assert_eq!(pinned.len(), len1, "pinned snapshot len mutated");
        for (&id, &seen_at_pin) in new_ids.iter().zip(&had) {
            assert_eq!(
                pinned.traj_index(id).is_some(),
                seen_at_pin,
                "pinned snapshot's membership of trajectory {id} changed \
                 after publish"
            );
        }
    }) as Box<dyn FnOnce() + Send>;
    Scenario {
        threads: vec![writer, reader],
        finale: None,
    }
}

/// The facade must never get ahead of the shards: whenever the facade
/// routes an id to a shard, that shard's snapshot already has the id
/// (shards publish first; `sharded.shards_published` marks the
/// window). Facade epochs are monotonic.
pub fn sharded_ingest_vs_query() -> Scenario {
    let store = build_sharded();
    let (_, _, b) = tiny_batches();
    let new_ids: Vec<u64> = b.trajectories.iter().map(|t| t.id).collect();
    let writer = {
        let store = Arc::clone(&store);
        let b = b.clone();
        Box::new(move || {
            store.ingest(&b).expect("sharded ingest");
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = Box::new(move || {
        let e1 = store.facade_epoch();
        for &id in &new_ids {
            if let Some(s) = store.traj_shard(id) {
                let snap = store.shards()[s as usize].snapshot(); // bounds: facade only routes to real shards
                assert!(
                    snap.traj_index(id).is_some(),
                    "half-published state: facade routes {id} to shard {s}, \
                     which does not have it"
                );
            }
        }
        let e2 = store.facade_epoch();
        assert!(e2 >= e1, "facade epoch went backwards: {e1} then {e2}");
    }) as Box<dyn FnOnce() + Send>;
    Scenario {
        threads: vec![writer, reader],
        finale: None,
    }
}

/// `Swap` publication is atomic and ordered: a reader sees values in
/// publication order, never a torn or stale-after-fresh value.
pub fn swap_publish_order() -> Scenario {
    let sw = Arc::new(Swap::new(Arc::new(0u64)));
    let writer = {
        let sw = Arc::clone(&sw);
        Box::new(move || {
            sw.store(Arc::new(1));
            sw.store(Arc::new(2));
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = Box::new(move || {
        let a = *sw.load();
        let b = *sw.load();
        assert!(b >= a, "swap went backwards: read {a} then {b}");
        assert!(a <= 2 && b <= 2, "swap produced a value never stored");
    }) as Box<dyn FnOnce() + Send>;
    Scenario {
        threads: vec![writer, reader],
        finale: None,
    }
}

// -- Serve shutdown model ---------------------------------------------

/// `serve.rs`'s shutdown handshake, modelled 1:1 so the checker can
/// enumerate its interleavings without real sockets:
///
/// * `trigger` = flag, then sweep: half-close the **read** side of
///   every registered connection (write sides stay open — in-flight
///   responses always complete).
/// * `register` = insert into the registry, then re-check the flag
///   (the real code's comment: either the sweep saw our entry or we
///   see the flag).
///
/// The registry/half-close/re-check protocol is unchanged by the epoll
/// event loop — only who *performs* the read moved (the loop, instead
/// of a per-connection worker); a "worker parked in a blocking read"
/// below corresponds to the loop waiting on `EPOLLIN` for that
/// connection, which the sweep's half-close likewise converts to EOF.
///
/// `model_register_recheck(false)` deletes the re-check — the seeded
/// bug the self-test proves the checker catches.
struct MockConn {
    read_open: AtomicBool,
    responses: Mutex<Vec<String>>,
    /// Worker is parked in a blocking read (still registered, as in
    /// the real code — only an EOF from the shutdown sweep frees it).
    blocked_in_read: AtomicBool,
    /// Worker saw an open read side and accepted the request.
    accepted: AtomicBool,
}

struct MockState {
    shutting_down: AtomicBool,
    conns: Mutex<HashMap<u64, Arc<MockConn>>>,
    next_token: AtomicU64,
    recheck: bool,
}

impl MockState {
    fn trigger(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        point("mock.trigger.flagged");
        let conns = match self.conns.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        for c in conns.values() {
            c.read_open.store(false, Ordering::SeqCst);
        }
        drop(conns);
        point("mock.trigger.swept");
    }

    fn register(&self, conn: &Arc<MockConn>) -> u64 {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        match self.conns.lock() {
            Ok(mut g) => {
                g.insert(token, Arc::clone(conn));
            }
            Err(p) => {
                p.into_inner().insert(token, Arc::clone(conn));
            }
        }
        point("mock.registered");
        if self.recheck && self.shutting_down.load(Ordering::SeqCst) {
            conn.read_open.store(false, Ordering::SeqCst);
        }
        token
    }

    fn deregister(&self, token: u64) {
        match self.conns.lock() {
            Ok(mut g) => {
                g.remove(&token);
            }
            Err(p) => {
                p.into_inner().remove(&token);
            }
        }
    }
}

fn serve_shutdown_scenario(recheck: bool) -> Scenario {
    let state = Arc::new(MockState {
        shutting_down: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        next_token: AtomicU64::new(0),
        recheck,
    });
    let conns: Vec<Arc<MockConn>> = (0..2)
        .map(|_| {
            Arc::new(MockConn {
                read_open: AtomicBool::new(true),
                responses: Mutex::new(Vec::new()),
                blocked_in_read: AtomicBool::new(false),
                accepted: AtomicBool::new(false),
            })
        })
        .collect();

    let shutdown = {
        let state = Arc::clone(&state);
        Box::new(move || state.trigger()) as Box<dyn FnOnce() + Send>
    };
    let mut threads = vec![shutdown];
    // Conn 0 is an idle client (no request pending: the worker parks
    // in a blocking read immediately); conn 1 has one request on the
    // wire. Both mirror serve_connection: a worker never deregisters
    // while parked in a read — only the sweep's EOF frees it.
    for (i, conn) in conns.iter().enumerate() {
        let has_request = i == 1;
        let state = Arc::clone(&state);
        let conn = Arc::clone(conn);
        threads.push(Box::new(move || {
            let token = state.register(&conn);
            point("mock.read");
            if !has_request {
                // Nothing on the wire: park in the blocking read,
                // keeping the registry entry (as the real worker does).
                conn.blocked_in_read.store(true, Ordering::SeqCst);
                return;
            }
            if !conn.read_open.load(Ordering::SeqCst) {
                // Read side already half-closed: EOF, clean refusal.
                state.deregister(token);
                return;
            }
            conn.accepted.store(true, Ordering::SeqCst);
            point("mock.handled");
            // The write side is never closed by shutdown, so an
            // accepted request always produces one complete line.
            match conn.responses.lock() {
                Ok(mut g) => g.push("response".to_string()),
                Err(p) => p.into_inner().push("response".to_string()),
            }
            // serve_connection checks the flag after each response.
            if state.shutting_down.load(Ordering::SeqCst) {
                state.deregister(token);
                return;
            }
            point("mock.read2");
            // Back into the blocking read for the next request.
            conn.blocked_in_read.store(true, Ordering::SeqCst);
        }) as Box<dyn FnOnce() + Send>);
    }

    let finale = {
        let state = Arc::clone(&state);
        Box::new(move || {
            // Quiescence: shutdown has completed and every handler has
            // either exited or parked in a blocking read. A parked
            // worker whose read side is still open never sees EOF —
            // that wedges shutdown (the race the register re-check
            // closes). A worker that finished before shutdown may
            // legitimately keep its read side open.
            assert!(state.shutting_down.load(Ordering::SeqCst));
            for (i, conn) in conns.iter().enumerate() {
                if conn.blocked_in_read.load(Ordering::SeqCst) {
                    assert!(
                        !conn.read_open.load(Ordering::SeqCst),
                        "conn {i}: worker parked in a blocking read with its \
                         read side still open — no EOF coming, shutdown wedges"
                    );
                }
                let responses = match conn.responses.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                if conn.accepted.load(Ordering::SeqCst) {
                    assert_eq!(
                        responses.len(),
                        1,
                        "conn {i}: accepted request must produce exactly one \
                         complete response: {responses:?}"
                    );
                } else {
                    assert!(
                        responses.is_empty(),
                        "conn {i}: refused connection wrote a response: \
                         {responses:?}"
                    );
                }
            }
        }) as Box<dyn FnOnce() + Send>
    };

    Scenario {
        threads,
        finale: Some(finale),
    }
}

// -- WAL append vs publish ordering -----------------------------------

/// The durability ordering invariant on the live ingest path: by the
/// time a reader can observe a new epoch, the batch's record is
/// already in the write-ahead log file. The container is seeded at
/// epoch 0, so the log's stored (base-relative) record epochs are
/// absolute here and "published epoch ≤ complete records on disk" is
/// exactly the append-before-publish window the hooks bracket.
pub fn wal_append_vs_publish() -> Scenario {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "utcq-sched-wal-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).expect("mk sched wal dir");
    let (_, _, b) = tiny_batches();
    let container = dir.join("c.utcq");
    build_store().save(&container).expect("seed container");
    let wal_path = dir.join("log.wal");
    let store =
        Arc::new(Store::open_durable(&container, WalConfig::new(&wal_path)).expect("open durable"));

    let writer = {
        let store = Arc::clone(&store);
        let b = b.clone();
        Box::new(move || {
            store.ingest(&b).expect("durable ingest");
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = {
        let store = Arc::clone(&store);
        Box::new(move || {
            // Order matters: observe the published epoch FIRST, then
            // read the file. The log only grows, so any record count
            // read afterwards is an upper bound on what existed when
            // the epoch became visible.
            let e = store.snapshot().epoch();
            point("wal.reader.scan");
            let logged = std::fs::read(&wal_path)
                .ok()
                .and_then(|bytes| utcq_core::wal::scan(&bytes).ok())
                .map_or(0, |s| s.records.len() as u64);
            assert!(
                e <= logged,
                "epoch {e} published before its record hit the log \
                 ({logged} complete records on disk)"
            );
        }) as Box<dyn FnOnce() + Send>
    };
    Scenario {
        threads: vec![writer, reader],
        finale: Some(Box::new(move || {
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
        })),
    }
}

/// A 1:1 mock of the same append→publish window, parameterized on the
/// ordering: `append_first` is the real protocol (record into the log,
/// then publish the epoch); flipping it is the seeded bug the
/// self-test proves the checker catches.
fn wal_publish_order_scenario(append_first: bool) -> Scenario {
    let log = Arc::new(AtomicU64::new(0)); // complete records in the "file"
    let epoch = Arc::new(AtomicU64::new(0)); // published epoch
    let writer = {
        let log = Arc::clone(&log);
        let epoch = Arc::clone(&epoch);
        Box::new(move || {
            if append_first {
                log.fetch_add(1, Ordering::SeqCst);
                point("mock.wal.appended");
                epoch.store(1, Ordering::SeqCst);
            } else {
                epoch.store(1, Ordering::SeqCst);
                point("mock.wal.appended");
                log.fetch_add(1, Ordering::SeqCst);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = Box::new(move || {
        let e = epoch.load(Ordering::SeqCst);
        point("mock.wal.scan");
        let logged = log.load(Ordering::SeqCst);
        assert!(
            e <= logged,
            "mock epoch {e} published before its record was appended \
             ({logged} records)"
        );
    }) as Box<dyn FnOnce() + Send>;
    Scenario {
        threads: vec![writer, reader],
        finale: None,
    }
}

/// The faithful mock of the append-then-publish ordering.
pub fn wal_publish_order() -> Scenario {
    wal_publish_order_scenario(true)
}

/// The broken publish-before-append variant; used by self-tests to
/// prove the checker finds the durability race it exists to close.
pub fn wal_publish_order_broken() -> Scenario {
    wal_publish_order_scenario(false)
}

// -- Chunk-directory publication order --------------------------------

/// A 1:1 mock of the chunked snapshot publish path
/// (`utcq_core::chunk::ChunkedVec` behind the epoch `Swap`): the writer
/// fills the tail chunk's storage and THEN publishes a directory that
/// claims the new length (`fill_first = true`, the real ordering — the
/// next epoch's directory only becomes reachable via `Swap::store`
/// after its chunks are complete). A reader pinned across the
/// directory swap must never observe a *half-published* directory: every
/// element the pinned length claims must already be backed by filled
/// chunk storage, and the published length is monotonic.
///
/// Flipping the order (publish the longer directory, then fill the
/// tail) is the seeded bug the self-test proves the checker catches.
fn chunk_publish_order_scenario(fill_first: bool) -> Scenario {
    let dir_len = Arc::new(AtomicU64::new(0)); // published directory length
    let chunk = Arc::new(Mutex::new(Vec::<u64>::new())); // tail-chunk storage
    fn lock(m: &Mutex<Vec<u64>>) -> std::sync::MutexGuard<'_, Vec<u64>> {
        match m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
    let writer = {
        let dir_len = Arc::clone(&dir_len);
        let chunk = Arc::clone(&chunk);
        Box::new(move || {
            // Two publish rounds so a reader can pin across a swap.
            for round in 1..=2u64 {
                if fill_first {
                    lock(&chunk).push(round);
                    point("mock.chunk.filled");
                    dir_len.store(round, Ordering::SeqCst);
                } else {
                    dir_len.store(round, Ordering::SeqCst);
                    point("mock.chunk.filled");
                    lock(&chunk).push(round);
                }
                point("mock.chunk.published");
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = Box::new(move || {
        let pinned = dir_len.load(Ordering::SeqCst) as usize;
        point("mock.chunk.pin");
        {
            let c = lock(&chunk);
            assert!(
                pinned <= c.len(),
                "half-published directory: claims {pinned} elements, \
                 chunk holds {}",
                c.len()
            );
            for (i, &v) in c.iter().take(pinned).enumerate() {
                assert_eq!(
                    v,
                    i as u64 + 1,
                    "published element {i} not yet backed by its data"
                );
            }
        }
        let later = dir_len.load(Ordering::SeqCst) as usize;
        assert!(
            later >= pinned,
            "directory length went backwards: {pinned} then {later}"
        );
    }) as Box<dyn FnOnce() + Send>;
    Scenario {
        threads: vec![writer, reader],
        finale: None,
    }
}

// -- Range-result cache vs epoch publication --------------------------

/// A 1:1 mock of the epoch-keyed range-result cache
/// (`utcq_core::cache::Kind::RangeResult` behind the snapshot's pinned
/// `epoch`): an ingest publishes a new epoch and a store-side query
/// then inserts that epoch's complete range answer into the shared
/// cache. A reader *pinned* to the older epoch keeps looking results
/// up under its own epoch (`epoch_keyed = true`, the real keying —
/// `Snapshot::range_query` passes `self.epoch` to both
/// `range_result` and `note_range_result`), so it can only ever be
/// served an answer computed at its pinned epoch.
///
/// Dropping the epoch from the key (`epoch_keyed = false`) is the
/// seeded bug: the pinned reader's lookup then returns whatever epoch
/// inserted last, and the self-test proves the checker catches the
/// stale-read the keying exists to rule out.
fn range_cache_epoch_scenario(epoch_keyed: bool) -> Scenario {
    // published epoch (Swap)
    let epoch = Arc::new(AtomicU64::new(0));
    // Shared cache: (key, answered-at-epoch) pairs for one query shape.
    let cache = Arc::new(Mutex::new(Vec::<(u64, u64)>::new()));
    fn lock(m: &Mutex<Vec<(u64, u64)>>) -> std::sync::MutexGuard<'_, Vec<(u64, u64)>> {
        match m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
    let writer = {
        let epoch = Arc::clone(&epoch);
        let cache = Arc::clone(&cache);
        Box::new(move || {
            // Two ingest rounds so a reader can pin across a publish.
            for round in 1..=2u64 {
                epoch.store(round, Ordering::SeqCst);
                point("mock.range_cache.publish");
                // The post-ingest query caches the new epoch's answer.
                let key = if epoch_keyed { round } else { 0 };
                lock(&cache).push((key, round));
                point("mock.range_cache.insert");
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = {
        let epoch = Arc::clone(&epoch);
        let cache = Arc::clone(&cache);
        Box::new(move || {
            let pinned = epoch.load(Ordering::SeqCst);
            point("mock.range_cache.pin");
            let hit = {
                let c = lock(&cache);
                if epoch_keyed {
                    c.iter().rev().find(|&&(k, _)| k == pinned).map(|&(_, v)| v)
                } else {
                    c.last().map(|&(_, v)| v)
                }
            };
            if let Some(answered_at) = hit {
                assert_eq!(
                    answered_at, pinned,
                    "pinned reader (epoch {pinned}) was served a range \
                     result computed at epoch {answered_at}"
                );
            }
        }) as Box<dyn FnOnce() + Send>
    };
    Scenario {
        threads: vec![writer, reader],
        finale: None,
    }
}

/// The faithful epoch-keyed range-result cache model.
pub fn range_cache_epoch() -> Scenario {
    range_cache_epoch_scenario(true)
}

/// The broken epoch-less-key variant; used by self-tests to prove the
/// checker finds the cross-epoch stale read the keying rules out.
pub fn range_cache_epoch_broken() -> Scenario {
    range_cache_epoch_scenario(false)
}

/// The faithful fill-then-publish chunk-directory model.
pub fn chunk_publish_order() -> Scenario {
    chunk_publish_order_scenario(true)
}

/// The broken publish-before-fill variant; used by self-tests to prove
/// the checker finds the torn-directory race it exists to rule out.
pub fn chunk_publish_order_broken() -> Scenario {
    chunk_publish_order_scenario(false)
}

/// The faithful serve shutdown model (with the register re-check).
pub fn serve_shutdown() -> Scenario {
    serve_shutdown_scenario(true)
}

/// The broken variant without the re-check; used by self-tests to
/// prove the checker finds the race it exists to close.
pub fn serve_shutdown_without_recheck() -> Scenario {
    serve_shutdown_scenario(false)
}

// -- Serve event-loop wake ordering -----------------------------------

/// The shutdown-flag/eventfd-wake handshake between
/// `ServerState::trigger` and the epoll event loop, mocked 1:1:
///
/// * `trigger` sets the shutdown flag **before** writing the eventfd
///   (`flag_first = true`, the real ordering);
/// * the loop, when woken, drains the eventfd and *then* checks the
///   flag; with nothing pending and no flag it goes back to a blocking
///   `epoll_wait` — modelled here as parking.
///
/// Flipping the order (wake before flag) lets the loop consume the
/// wake, observe a clear flag, and block again with no further wake
/// coming — shutdown wedges. The quiescence invariant: the loop must
/// never be parked while the flag is set with no wake pending.
fn serve_wake_order_scenario(flag_first: bool) -> Scenario {
    let flag = Arc::new(AtomicBool::new(false));
    let wake_pending = Arc::new(AtomicBool::new(false));
    let parked = Arc::new(AtomicBool::new(false));

    let trigger = {
        let flag = Arc::clone(&flag);
        let wake_pending = Arc::clone(&wake_pending);
        Box::new(move || {
            if flag_first {
                flag.store(true, Ordering::SeqCst);
                point("mock.wake.flagged");
                wake_pending.store(true, Ordering::SeqCst);
            } else {
                wake_pending.store(true, Ordering::SeqCst);
                point("mock.wake.woken");
                flag.store(true, Ordering::SeqCst);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let event_loop = {
        let flag = Arc::clone(&flag);
        let wake_pending = Arc::clone(&wake_pending);
        let parked = Arc::clone(&parked);
        Box::new(move || {
            // Terminates: the trigger arms the wake at most once, so at
            // most two iterations run before a park or a flag sighting.
            loop {
                let woke = wake_pending.swap(false, Ordering::SeqCst);
                point("mock.loop.drained");
                if flag.load(Ordering::SeqCst) {
                    return; // observed shutdown; sweep follows
                }
                if !woke {
                    // Nothing pending: the real loop re-enters a
                    // blocking epoll_wait here.
                    parked.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let finale = Box::new(move || {
        // A parked loop is fine while a wake is pending (epoll_wait
        // returns immediately) — but parked with the flag set and the
        // eventfd drained means no one will ever deliver the shutdown.
        assert!(
            !(parked.load(Ordering::SeqCst)
                && flag.load(Ordering::SeqCst)
                && !wake_pending.load(Ordering::SeqCst)),
            "event loop parked in epoll_wait with the shutdown flag set \
             and the wake already consumed — shutdown wedges"
        );
    }) as Box<dyn FnOnce() + Send>;
    Scenario {
        threads: vec![trigger, event_loop],
        finale: Some(finale),
    }
}

/// The faithful flag-then-wake ordering of `ServerState::trigger`.
pub fn serve_wake_order() -> Scenario {
    serve_wake_order_scenario(true)
}

/// The broken wake-then-flag variant; used by self-tests to prove the
/// checker finds the lost-wakeup race it exists to close.
pub fn serve_wake_order_broken() -> Scenario {
    serve_wake_order_scenario(false)
}

// -- Serve pipelined response ordering --------------------------------

/// The pipelining contract (`PROTOCOL.md`): responses leave in request
/// order. The event loop guarantees this structurally — all frames
/// parsed from one readable connection form a *burst* executed
/// start-to-finish by a single worker, with at most one burst in
/// flight per connection; cross-connection interleaving stays free.
///
/// `burst_sequential = false` models the tempting "faster" design —
/// fanning one connection's requests out to the pool individually —
/// and the self-test proves the checker catches the reordering it
/// allows.
fn serve_pipeline_order_scenario(burst_sequential: bool) -> Scenario {
    fn push(out: &Arc<Mutex<Vec<u64>>>, v: u64) {
        match out.lock() {
            Ok(mut g) => g.push(v),
            Err(p) => p.into_inner().push(v),
        }
    }
    let conn_a: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let conn_b: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let threads: Vec<Box<dyn FnOnce() + Send>> = if burst_sequential {
        // One worker owns each burst: connection A's three pipelined
        // requests on one thread, connection B's two on another.
        let a = Arc::clone(&conn_a);
        let b = Arc::clone(&conn_b);
        vec![
            Box::new(move || {
                for i in 1..=3 {
                    point("mock.pipe.exec");
                    push(&a, i);
                }
            }),
            Box::new(move || {
                for i in 1..=2 {
                    point("mock.pipe.exec");
                    push(&b, i);
                }
            }),
        ]
    } else {
        // Connection A's burst split across two pool workers.
        let a1 = Arc::clone(&conn_a);
        let a2 = Arc::clone(&conn_a);
        vec![
            Box::new(move || {
                point("mock.pipe.exec");
                push(&a1, 1);
                point("mock.pipe.exec");
                push(&a1, 3);
            }),
            Box::new(move || {
                point("mock.pipe.exec");
                push(&a2, 2);
            }),
        ]
    };
    let finale = Box::new(move || {
        let a = match conn_a.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        };
        assert_eq!(
            a,
            vec![1, 2, 3],
            "connection A's responses left out of request order"
        );
        let b = match conn_b.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        };
        if !b.is_empty() {
            assert_eq!(
                b,
                vec![1, 2],
                "connection B's responses left out of request order"
            );
        }
    }) as Box<dyn FnOnce() + Send>;
    Scenario {
        threads,
        finale: Some(finale),
    }
}

/// The faithful burst-per-worker dispatch model.
pub fn serve_pipeline_order() -> Scenario {
    serve_pipeline_order_scenario(true)
}

/// The broken per-request-fan-out variant; used by self-tests to prove
/// the checker finds the reordering it exists to rule out.
pub fn serve_pipeline_order_broken() -> Scenario {
    serve_pipeline_order_scenario(false)
}

/// A registered scenario: name, schedule budget, factory.
pub type NamedScenario = (&'static str, usize, fn() -> Scenario);

/// Every scenario `utcq audit sched` runs, with per-scenario schedule
/// budgets tuned so the default run comfortably exceeds 1,000
/// schedules total while staying fast.
pub fn all_scenarios() -> Vec<NamedScenario> {
    vec![
        (
            "swap_publish_order",
            400,
            swap_publish_order as fn() -> Scenario,
        ),
        ("serve_shutdown", 800, serve_shutdown),
        ("serve_wake_order", 400, serve_wake_order),
        ("serve_pipeline_order", 400, serve_pipeline_order),
        ("store_pin_vs_ingest", 400, store_pin_vs_ingest),
        ("sharded_ingest_vs_query", 400, sharded_ingest_vs_query),
        ("wal_publish_order", 400, wal_publish_order),
        ("wal_append_vs_publish", 400, wal_append_vs_publish),
        ("chunk_publish_order", 400, chunk_publish_order),
        ("range_cache_epoch", 400, range_cache_epoch),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Two increments without mutual exclusion: the checker must find
    /// the lost-update interleaving.
    fn racy_counter() -> Scenario {
        let v = Arc::new(AtomicUsize::new(0));
        let check = Arc::clone(&v);
        let mk = |v: Arc<AtomicUsize>| {
            Box::new(move || {
                let read = v.load(Ordering::SeqCst);
                point("after-read");
                v.store(read + 1, Ordering::SeqCst);
            }) as Box<dyn FnOnce() + Send>
        };
        Scenario {
            threads: vec![mk(Arc::clone(&v)), mk(v)],
            finale: Some(Box::new(move || {
                assert_eq!(check.load(Ordering::SeqCst), 2, "lost update");
            })),
        }
    }

    #[test]
    fn finds_lost_update() {
        let out = explore(
            "racy_counter",
            SchedOpts {
                preemption_bound: 2,
                max_schedules: 200,
            },
            &racy_counter,
        );
        let v = out.violation.expect("checker must find the lost update");
        assert!(v.message.contains("lost update"), "{}", v.message);
        assert!(!v.schedule.is_empty());
    }

    #[test]
    fn replaying_the_reported_schedule_reproduces() {
        let opts = SchedOpts {
            preemption_bound: 2,
            max_schedules: 200,
        };
        let first = explore("racy_counter", opts, &racy_counter)
            .violation
            .expect("violation");
        let second = explore("racy_counter", opts, &racy_counter)
            .violation
            .expect("violation");
        assert_eq!(
            first.schedule, second.schedule,
            "exploration must be deterministic"
        );
        assert_eq!(first.message, second.message);
    }

    #[test]
    fn zero_preemptions_misses_the_race_bounded_search_is_real() {
        let out = explore(
            "racy_counter",
            SchedOpts {
                preemption_bound: 0,
                max_schedules: 200,
            },
            &racy_counter,
        );
        // With no preemptions each thread runs to completion; the lost
        // update needs a switch between read and write.
        assert!(out.violation.is_none());
        assert!(out.exhausted);
    }

    #[test]
    fn serve_model_without_recheck_has_the_race() {
        let out = explore(
            "serve_shutdown_without_recheck",
            SchedOpts {
                preemption_bound: 4,
                max_schedules: 2_000,
            },
            &serve_shutdown_without_recheck,
        );
        let v = out
            .violation
            .expect("the register/trigger race must be found");
        assert!(
            v.message.contains("read side still open"),
            "unexpected violation: {}",
            v.message
        );
    }

    #[test]
    fn serve_model_with_recheck_is_clean() {
        let out = explore(
            "serve_shutdown",
            SchedOpts {
                preemption_bound: 4,
                max_schedules: 2_000,
            },
            &serve_shutdown,
        );
        assert!(
            out.violation.is_none(),
            "faithful model violated: {:?}",
            out.violation
        );
        assert!(out.schedules > 50, "expected a real schedule space");
    }

    #[test]
    fn wake_model_wake_before_flag_has_the_race() {
        let out = explore(
            "serve_wake_order_broken",
            SchedOpts {
                preemption_bound: 4,
                max_schedules: 500,
            },
            &serve_wake_order_broken,
        );
        let v = out.violation.expect("the lost-wakeup race must be found");
        assert!(
            v.message.contains("shutdown wedges"),
            "unexpected violation: {}",
            v.message
        );
    }

    #[test]
    fn wake_model_flag_first_is_clean() {
        let out = explore(
            "serve_wake_order",
            SchedOpts {
                preemption_bound: 4,
                max_schedules: 500,
            },
            &serve_wake_order,
        );
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.exhausted, "wake model space should be enumerable");
    }

    #[test]
    fn pipeline_model_per_request_fanout_has_the_race() {
        let out = explore(
            "serve_pipeline_order_broken",
            SchedOpts {
                preemption_bound: 4,
                max_schedules: 500,
            },
            &serve_pipeline_order_broken,
        );
        let v = out.violation.expect("the reordering must be found");
        assert!(
            v.message.contains("out of request order"),
            "unexpected violation: {}",
            v.message
        );
    }

    #[test]
    fn pipeline_model_burst_dispatch_is_clean() {
        let out = explore(
            "serve_pipeline_order",
            SchedOpts {
                preemption_bound: 4,
                max_schedules: 500,
            },
            &serve_pipeline_order,
        );
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.schedules > 10, "bursts never interleaved");
    }

    #[test]
    fn wal_mock_publish_before_append_has_the_race() {
        let out = explore(
            "wal_publish_order_broken",
            SchedOpts {
                preemption_bound: 2,
                max_schedules: 200,
            },
            &wal_publish_order_broken,
        );
        let v = out.violation.expect("publish-before-append must be caught");
        assert!(
            v.message.contains("published before its record"),
            "unexpected violation: {}",
            v.message
        );
    }

    #[test]
    fn wal_mock_append_first_is_clean() {
        let out = explore(
            "wal_publish_order",
            SchedOpts {
                preemption_bound: 2,
                max_schedules: 200,
            },
            &wal_publish_order,
        );
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.exhausted);
    }

    #[test]
    fn wal_append_vs_publish_explores_cleanly() {
        let out = explore(
            "wal_append_vs_publish",
            SchedOpts {
                preemption_bound: 2,
                max_schedules: 60,
            },
            &wal_append_vs_publish,
        );
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(
            out.schedules > 5,
            "wal hooks produced too few yield points ({} schedules)",
            out.schedules
        );
    }

    #[test]
    fn chunk_mock_publish_before_fill_has_the_race() {
        let out = explore(
            "chunk_publish_order_broken",
            SchedOpts {
                preemption_bound: 4,
                max_schedules: 500,
            },
            &chunk_publish_order_broken,
        );
        let v = out
            .violation
            .expect("the publish-before-fill race must be found");
        assert!(
            v.message.contains("half-published") || v.message.contains("not yet backed"),
            "unexpected violation: {}",
            v.message
        );
        assert!(!v.schedule.is_empty());
    }

    #[test]
    fn chunk_mock_fill_first_is_clean() {
        let out = explore(
            "chunk_publish_order",
            SchedOpts {
                preemption_bound: 4,
                max_schedules: 500,
            },
            &chunk_publish_order,
        );
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.exhausted);
    }

    #[test]
    fn range_cache_mock_epoch_keyed_is_clean() {
        let out = explore(
            "range_cache_epoch",
            SchedOpts {
                preemption_bound: 4,
                max_schedules: 500,
            },
            &range_cache_epoch,
        );
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.exhausted);
    }

    #[test]
    fn range_cache_mock_without_epoch_key_has_the_race() {
        let out = explore(
            "range_cache_epoch_broken",
            SchedOpts {
                preemption_bound: 4,
                max_schedules: 500,
            },
            &range_cache_epoch_broken,
        );
        let v = out
            .violation
            .expect("the epoch-less cache key race must be found");
        assert!(
            v.message.contains("served a range"),
            "unexpected violation: {}",
            v.message
        );
        assert!(!v.schedule.is_empty());
    }

    #[test]
    fn swap_scenario_explores_cleanly() {
        let out = explore(
            "swap_publish_order",
            SchedOpts {
                preemption_bound: 4,
                max_schedules: 500,
            },
            &swap_publish_order,
        );
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(
            out.schedules > 10,
            "hooks produced too few yield points ({} schedules)",
            out.schedules
        );
    }

    #[test]
    fn store_pin_scenario_explores_cleanly() {
        let out = explore(
            "store_pin_vs_ingest",
            SchedOpts {
                preemption_bound: 2,
                max_schedules: 100,
            },
            &store_pin_vs_ingest,
        );
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.schedules > 1, "writer/reader never interleaved");
    }

    #[test]
    fn sharded_scenario_explores_cleanly() {
        let out = explore(
            "sharded_ingest_vs_query",
            SchedOpts {
                preemption_bound: 2,
                max_schedules: 100,
            },
            &sharded_ingest_vs_query,
        );
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.schedules > 1, "writer/reader never interleaved");
    }
}
