//! A custom hot-path lint for `crates/core/src`.
//!
//! Cargo's clippy wall is generic; these rules are ours. The lint is a
//! token-level scanner (no `syn`, the workspace builds offline) that
//! walks the non-test portion of each core source file with comments
//! and string literals stripped — line structure preserved so every
//! diagnostic lands on a real `file:line`.
//!
//! Rules:
//!
//! * **forbidden-panic** — in hot-path modules ([`HOT_FILES`]), no
//!   `.unwrap()`, `.expect(`, `panic!(`, `unreachable!(`, `todo!(` or
//!   `unimplemented!(`. The parser and query/serve paths face
//!   adversarial bytes; every failure must flow through `Error`.
//! * **unjustified-index** — in hot-path modules, `x[...]` indexing is
//!   only allowed when a `bounds:` comment on the same line or one of
//!   the three preceding lines states why the index is in range.
//! * **lock-across-cache-insert** — outside `cache.rs`, no live lock
//!   guard may be in scope at a call into the decode-cache memoizers
//!   (`*_or_decode`, `when_miss_hit`, `note_when_miss`). The cache
//!   takes its own shard locks; holding a store lock across that is a
//!   lock-order hazard.
//! * **cache-key-epoch** — every `Key { .. }` literal in `cache.rs`
//!   must carry an `epoch` field, so no cache entry can ever outlive
//!   the snapshot generation that minted it.
//!
//! Findings can be waived through a checked-in allowlist file (one
//! justified entry per line — see [`Allowlist`]); entries that no
//! longer match anything are themselves errors, so the list can only
//! shrink honestly.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Files whose non-test code faces adversarial input or sits on the
/// query hot path; `forbidden-panic` and `unjustified-index` apply.
pub const HOT_FILES: &[&str] = &[
    "storage.rs",
    "wire.rs",
    "query.rs",
    "serve.rs",
    "poll.rs",
    "conn.rs",
    "snapshot.rs",
    "shard.rs",
    "store.rs",
    "wal.rs",
    "chunk.rs",
    "bitmap.rs",
];

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const CACHE_CALLS: &[&str] = &[
    ".ref_or_decode(",
    ".instance_or_decode(",
    ".window_or_decode(",
    ".times_or_decode(",
    ".when_miss_hit(",
    ".note_when_miss(",
    ".range_result(",
    ".note_range_result(",
];

/// One lint finding, pointing at a real source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// File name relative to the scanned directory (e.g. `wire.rs`).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule name (used by allowlist entries).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed allowlist: one entry per non-comment line, formatted as
///
/// ```text
/// rule-name  file.rs  code-substring  -- justification
/// ```
///
/// A diagnostic is waived when its rule and file match and the
/// diagnosed line of code contains the substring. Every entry must
/// both match at least one diagnostic and carry a justification.
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

struct AllowEntry {
    rule: String,
    file: String,
    needle: String,
    line_no: usize,
    used: std::cell::Cell<bool>,
}

impl Allowlist {
    /// Parses the allowlist file; a missing file is an empty list.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        Self::parse(&text)
    }

    /// Parses allowlist text (see type-level docs for the format).
    pub fn parse(text: &str) -> io::Result<Self> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (spec, _justification) = match line.split_once("--") {
                Some((s, j)) if !j.trim().is_empty() => (s, j),
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("allowlist line {}: missing `-- justification`", i + 1),
                    ))
                }
            };
            let mut parts = spec.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(file), Some(first)) => {
                    // The needle may contain spaces; rejoin the tail.
                    let mut needle = first.to_string();
                    for p in parts {
                        needle.push(' ');
                        needle.push_str(p);
                    }
                    entries.push(AllowEntry {
                        rule: rule.to_string(),
                        file: file.to_string(),
                        needle,
                        line_no: i + 1,
                        used: std::cell::Cell::new(false),
                    });
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "allowlist line {}: expected `rule file substring -- why`",
                            i + 1
                        ),
                    ))
                }
            }
        }
        Ok(Self { entries })
    }

    fn waives(&self, d: &Diag, code_line: &str) -> bool {
        for e in &self.entries {
            if e.rule == d.rule && e.file == d.file && code_line.contains(&e.needle) {
                e.used.set(true);
                return true;
            }
        }
        false
    }

    fn unused(&self) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| !e.used.get()).collect()
    }
}

/// One source line split into the code part and the comment part,
/// with string/char literal contents blanked out of the code part.
struct ScrubbedLine {
    code: String,
    comment: String,
}

/// Strips comments and string literals while preserving line
/// structure. Stops at the first `#[cfg(test)]` — everything after it
/// is test scaffolding where panics are the assertion mechanism.
fn scrub(source: &str) -> Vec<ScrubbedLine> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(usize), // nesting depth of /* */
        Str,
        RawStr(usize), // number of # in the delimiter
        Char,
    }
    let mut st = St::Code;
    let mut out = Vec::new();
    for raw in source.lines() {
        if st == St::Code && raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let b = raw.as_bytes();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            match st {
                St::Code => {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'/') {
                        comment.push_str(&raw[i..]);
                        break;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        st = St::Block(1);
                        i += 2;
                    } else if b[i] == b'"' {
                        st = St::Str;
                        code.push('"');
                        i += 1;
                    } else if b[i] == b'r'
                        && matches!(b.get(i + 1), Some(b'"' | b'#'))
                        && !matches!(i.checked_sub(1).map(|p| b[p]), Some(c) if c.is_ascii_alphanumeric() || c == b'_')
                    {
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while b.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&b'"') {
                            st = St::RawStr(hashes);
                            code.push('"');
                            i = j + 1;
                        } else {
                            code.push(b[i] as char);
                            i += 1;
                        }
                    } else if b[i] == b'\''
                        && !matches!(i.checked_sub(1).map(|p| b[p]), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'>')
                    {
                        // A quote not preceded by an identifier/`>` opens a
                        // char literal *unless* it is a lifetime (`'a`,
                        // `'static`): lifetimes are letters followed by a
                        // non-quote.
                        let is_lifetime = matches!(b.get(i + 1), Some(c) if c.is_ascii_alphabetic() || *c == b'_')
                            && b.get(i + 2) != Some(&b'\'');
                        if is_lifetime {
                            code.push('\'');
                            i += 1;
                        } else {
                            st = St::Char;
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(b[i] as char);
                        i += 1;
                    }
                }
                St::Block(depth) => {
                    if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        st = St::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(b[i] as char);
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        st = St::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if b[i] == b'"'
                        && b[i + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes
                    {
                        st = St::Code;
                        code.push('"');
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
                St::Char => {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'\'' {
                        st = St::Code;
                        code.push('\'');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out.push(ScrubbedLine { code, comment });
    }
    out
}

/// Is `code[at]` an indexing bracket? True when the previous
/// non-space character can end an indexable expression.
fn is_index_bracket(code: &str, at: usize) -> bool {
    let prev = code[..at].bytes().next_back();
    matches!(prev, Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b')' || c == b']')
}

fn lint_file(name: &str, source: &str, diags: &mut Vec<Diag>, lines_out: &mut Vec<String>) {
    let scrubbed = scrub(source);
    let hot = HOT_FILES.contains(&name);
    let is_cache = name == "cache.rs";

    // Live lock guards for the lock-across-cache-insert rule:
    // (identifier, brace depth at binding).
    let mut depth: i32 = 0;
    let mut guards: Vec<(String, i32)> = Vec::new();

    for (idx, line) in scrubbed.iter().enumerate() {
        let lno = idx + 1;
        let code = &line.code;
        lines_out.push(code.clone());

        if hot {
            for tok in PANIC_TOKENS {
                if code.contains(tok) {
                    diags.push(Diag {
                        file: name.to_string(),
                        line: lno,
                        rule: "forbidden-panic",
                        message: format!("`{tok}` in a hot-path module; return an `Error` instead"),
                    });
                }
            }
            let justified =
                (idx.saturating_sub(3)..=idx).any(|k| scrubbed[k].comment.contains("bounds:"));
            for (at, _) in code.match_indices('[') {
                if is_index_bracket(code, at) && !justified {
                    diags.push(Diag {
                        file: name.to_string(),
                        line: lno,
                        rule: "unjustified-index",
                        message: "indexing without a `bounds:` comment; \
                                  use `.get()` or justify the bound"
                            .to_string(),
                    });
                    break; // one diagnostic per line is enough
                }
            }
        }

        // Lock-guard tracking (all files except cache.rs, which owns
        // its own sharded locks by design).
        if !is_cache {
            if let Some(g) = guard_binding(code) {
                guards.push((g, depth));
            }
            for (at, _) in code.match_indices("drop(") {
                let inner = &code[at + 5..];
                if let Some(end) = inner.find(')') {
                    let name_dropped = inner[..end].trim();
                    guards.retain(|(g, _)| g != name_dropped);
                }
            }
            for call in CACHE_CALLS {
                if code.contains(call) {
                    if let Some((g, _)) = guards.first() {
                        diags.push(Diag {
                            file: name.to_string(),
                            line: lno,
                            rule: "lock-across-cache-insert",
                            message: format!(
                                "decode-cache call while lock guard `{g}` is live; \
                                 drop the guard first"
                            ),
                        });
                    }
                }
            }
        }

        // cache-key-epoch: every `Key {` literal must mention `epoch`
        // before its closing brace. Key literals in this codebase are
        // short; scan forward a bounded window.
        if is_cache {
            for (at, _) in code.match_indices("Key {") {
                let mut found = false;
                let mut budget = 12; // lines
                let mut text = code[at..].to_string();
                let mut k = idx;
                loop {
                    if text.contains("epoch") {
                        found = true;
                        break;
                    }
                    if text.contains('}') || budget == 0 {
                        break;
                    }
                    k += 1;
                    budget -= 1;
                    match scrubbed.get(k) {
                        Some(l) => text = l.code.clone(),
                        None => break,
                    }
                }
                if !found {
                    diags.push(Diag {
                        file: name.to_string(),
                        line: lno,
                        rule: "cache-key-epoch",
                        message: "`Key { .. }` without an `epoch` field: cache entries \
                                  must be keyed to a snapshot generation"
                            .to_string(),
                    });
                }
            }
        }

        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|&(_, d)| d <= depth);
                }
                _ => {}
            }
        }
    }
}

/// Recognizes `let [mut] name = ....lock()/read()/write()` bindings.
/// Temporaries (`x.lock().y` without a binding) die within their own
/// statement and are not tracked.
fn guard_binding(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let (name, tail) = rest.split_once('=')?;
    let name = name.trim();
    if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') || name.is_empty() {
        return None;
    }
    let locks = [".lock()", ".read()", ".write()", ".lock();", "_lock()"];
    if locks.iter().any(|l| tail.contains(l)) {
        Some(name.to_string())
    } else {
        None
    }
}

/// Report of one lint run.
pub struct LintReport {
    /// Diagnostics that survived the allowlist.
    pub diags: Vec<Diag>,
    /// Allowlist entries that waived nothing (themselves errors).
    pub unused_allows: Vec<String>,
    /// Files scanned.
    pub files: Vec<String>,
}

impl LintReport {
    /// True when the codebase is clean under the given allowlist.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty() && self.unused_allows.is_empty()
    }
}

/// Runs every rule over `src_dir` (normally `crates/core/src`),
/// waiving findings through the allowlist at `allow_path`.
pub fn run(src_dir: &Path, allow_path: &Path) -> io::Result<LintReport> {
    let allow = Allowlist::load(allow_path)?;
    let mut names: Vec<PathBuf> = fs::read_dir(src_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no .rs files under {}", src_dir.display()),
        ));
    }

    let mut diags = Vec::new();
    let mut files = Vec::new();
    let mut kept = Vec::new();
    for path in &names {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let source = fs::read_to_string(path)?;
        let mut file_diags = Vec::new();
        let mut code_lines = Vec::new();
        lint_file(&name, &source, &mut file_diags, &mut code_lines);
        for d in file_diags {
            let line_code = code_lines.get(d.line - 1).map(String::as_str).unwrap_or("");
            if !allow.waives(&d, line_code) {
                kept.push(d);
            }
        }
        files.push(name);
    }
    diags.append(&mut kept);

    let unused_allows = allow
        .unused()
        .iter()
        .map(|e| {
            format!(
                "allowlist line {}: `{} {} {}` waives nothing — remove it",
                e.line_no, e.rule, e.file, e.needle
            )
        })
        .collect();

    Ok(LintReport {
        diags,
        unused_allows,
        files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags_for(name: &str, src: &str) -> Vec<Diag> {
        let mut d = Vec::new();
        let mut lines = Vec::new();
        lint_file(name, src, &mut d, &mut lines);
        d
    }

    #[test]
    fn flags_unwrap_in_hot_file() {
        let d = diags_for("wire.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "forbidden-panic");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn ignores_unwrap_or_variants_and_cold_files() {
        assert!(diags_for("wire.rs", "let v = x.unwrap_or(0);\n").is_empty());
        assert!(diags_for("pivot.rs", "x.unwrap();\n").is_empty());
    }

    #[test]
    fn ignores_tokens_in_strings_comments_and_tests() {
        let src = "// x.unwrap()\nlet s = \".unwrap()\";\n#[cfg(test)]\nfn t() { x.unwrap(); }\n";
        assert!(diags_for("wire.rs", src).is_empty());
    }

    #[test]
    fn index_requires_bounds_comment() {
        assert_eq!(diags_for("query.rs", "let v = xs[i];\n").len(), 1);
        assert!(diags_for("query.rs", "let v = xs[i]; // bounds: i < n\n").is_empty());
        assert!(diags_for(
            "query.rs",
            "// bounds: i < n by loop guard\nlet v = xs[i];\n"
        )
        .is_empty());
        // Attributes and slice types are not indexing.
        assert!(diags_for("query.rs", "#[derive(Debug)]\nfn f(x: &[u8]) {}\n").is_empty());
    }

    #[test]
    fn lock_across_cache_insert() {
        let src = "fn f() {\n    let g = self.writer.lock();\n    cache.ref_or_decode(k);\n}\n";
        let d = diags_for("store.rs", src);
        assert!(
            d.iter().any(|d| d.rule == "lock-across-cache-insert"),
            "{d:?}"
        );
        // Dropping the guard first is fine.
        let src = "fn f() {\n    let g = self.writer.lock();\n    drop(g);\n    cache.ref_or_decode(k);\n}\n";
        assert!(diags_for("store.rs", src)
            .iter()
            .all(|d| d.rule != "lock-across-cache-insert"));
        // Guard scope ends at the closing brace.
        let src = "fn f() {\n    {\n        let g = self.writer.lock();\n    }\n    cache.ref_or_decode(k);\n}\n";
        assert!(diags_for("store.rs", src)
            .iter()
            .all(|d| d.rule != "lock-across-cache-insert"));
    }

    #[test]
    fn cache_key_literals_need_epoch() {
        let bad = "fn f() { let k = Key { kind: Kind::Ref(j) }; }\n";
        assert!(diags_for("cache.rs", bad)
            .iter()
            .any(|d| d.rule == "cache-key-epoch"));
        let good = "fn f() { let k = Key { epoch, kind: Kind::Ref(j) }; }\n";
        assert!(diags_for("cache.rs", good).is_empty());
        let multiline = "let k = Key {\n    epoch: e,\n    kind: Kind::Ref(j),\n};\n";
        assert!(diags_for("cache.rs", multiline).is_empty());
    }

    #[test]
    fn allowlist_waives_and_reports_unused() {
        let allow =
            Allowlist::parse("forbidden-panic wire.rs x.unwrap() -- invariant: x is checked\n")
                .unwrap();
        let d = Diag {
            file: "wire.rs".into(),
            line: 1,
            rule: "forbidden-panic",
            message: String::new(),
        };
        assert!(allow.waives(&d, "fn f() { x.unwrap(); }"));
        assert!(allow.unused().is_empty());

        let stale = Allowlist::parse("forbidden-panic wire.rs y.unwrap() -- gone\n").unwrap();
        assert!(!stale.waives(&d, "fn f() { x.unwrap(); }"));
        assert_eq!(stale.unused().len(), 1);
    }

    #[test]
    fn allowlist_rejects_missing_justification() {
        assert!(Allowlist::parse("forbidden-panic wire.rs x.unwrap()\n").is_err());
    }

    #[test]
    fn real_core_sources_are_clean() {
        let src = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../core/src");
        let allow = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("lint.allow");
        let report = run(&src, &allow).unwrap();
        for d in &report.diags {
            eprintln!("{d}");
        }
        for u in &report.unused_allows {
            eprintln!("{u}");
        }
        assert!(report.is_clean());
        assert!(report.files.iter().any(|f| f == "wire.rs"));
    }
}
