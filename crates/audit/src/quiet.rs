//! Process-global panic-hook management shared by the checker and the
//! fuzzer: both provoke panics on purpose (caught with
//! `catch_unwind`), and the default hook would spray backtraces over
//! the report. One lock serializes hook swaps so concurrent test
//! threads cannot clobber each other's hooks.

use std::panic;
use std::sync::Mutex;

static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with panics silenced (hook replaced by a no-op), restoring
/// the previous hook afterwards.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let _g = match HOOK_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let old = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let r = f();
    panic::set_hook(old);
    r
}

/// Extracts the human-readable message from a caught panic payload.
pub fn payload_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}
