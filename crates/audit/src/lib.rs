//! Offline correctness tooling for the UTCQ workspace — three engines
//! behind one `utcq audit` CLI subcommand, all built on `std` plus the
//! workspace shims (nothing to download, nothing nondeterministic):
//!
//! * [`sched`] — a miniature loom/CHESS-style **model checker**:
//!   virtual threads yield at the `utcq_core::hooks` instrumentation
//!   points, and a DFS explorer enumerates every interleaving up to a
//!   preemption bound, checking the store's epoch-swap and serve
//!   shutdown protocols.
//! * [`fuzz`] — a **structure-aware fuzzer** over the checked-in
//!   container and wire-protocol fixtures: seeded byte- and
//!   grammar-level mutations, with the contract that parsers return
//!   errors and never panic; failures are minimized into
//!   `tests/fuzz_regressions/`.
//! * [`lint`] — a **custom token-level lint** for the core's hot-path
//!   modules: no panic paths, no unjustified indexing, no lock held
//!   across a decode-cache call, every cache key carries an epoch.
//! * [`crash`] — **crash-point fault injection** over the same hook
//!   points the scheduler uses: kill an ingest or checkpoint at a
//!   chosen durability instant and assert the write-ahead log replays
//!   byte-identically on reopen.
//!
//! `docs/CORRECTNESS.md` at the repository root explains how the three
//! fit together and how CI runs them.

pub mod crash;
pub mod fuzz;
pub mod lint;
pub mod quiet;
pub mod sched;
