//! Binary serialization of [`RoadNetwork`] — the piece that makes the
//! self-contained container format possible: a persisted store can embed
//! its network instead of relying on a side-channel asset.
//!
//! Layout (all little-endian):
//!
//! ```text
//! u32 vertex_count (V)   u32 edge_count (E)
//! V × (f64 x, f64 y)     vertex coordinates
//! (V+1) × u32            CSR out-edge offsets (offsets[0] = 0, offsets[V] = E)
//! E × u32                edge target vertices
//! E × f64                edge lengths in meters
//! ```
//!
//! Edge sources and the maximum out-degree are derived from the offsets
//! on read, so they are not stored. Structural violations (non-monotonic
//! offsets, out-of-range targets, non-finite coordinates) surface as
//! [`std::io::ErrorKind::InvalidData`] — never a panic.

use std::io::{self, Read, Write};

use crate::geom::Point;
use crate::graph::{RoadNetwork, VertexId};

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("road network: {what}"))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

impl RoadNetwork {
    /// Serializes the network into a writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&(self.coords.len() as u32).to_le_bytes())?;
        w.write_all(&(self.targets.len() as u32).to_le_bytes())?;
        for p in &self.coords {
            w.write_all(&p.x.to_le_bytes())?;
            w.write_all(&p.y.to_le_bytes())?;
        }
        for &o in &self.out_offsets {
            w.write_all(&o.to_le_bytes())?;
        }
        for t in &self.targets {
            w.write_all(&t.0.to_le_bytes())?;
        }
        for &l in &self.lengths {
            w.write_all(&l.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserializes a network from a reader, validating CSR structure.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let v = read_u32(r)? as usize;
        let e = read_u32(r)? as usize;
        if v > (1 << 28) || e > (1 << 29) {
            return Err(bad("implausible vertex/edge count"));
        }
        let mut coords = Vec::with_capacity(v);
        for _ in 0..v {
            let x = read_f64(r)?;
            let y = read_f64(r)?;
            if !x.is_finite() || !y.is_finite() {
                return Err(bad("non-finite coordinate"));
            }
            coords.push(Point { x, y });
        }
        let mut out_offsets = Vec::with_capacity(v + 1);
        for _ in 0..=v {
            out_offsets.push(read_u32(r)?);
        }
        if out_offsets.first() != Some(&0) || out_offsets.last() != Some(&(e as u32)) {
            return Err(bad("offset bounds"));
        }
        if out_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(bad("offsets not monotonic"));
        }
        let mut targets = Vec::with_capacity(e);
        for _ in 0..e {
            let t = read_u32(r)?;
            if t as usize >= v {
                return Err(bad("edge target out of range"));
            }
            targets.push(VertexId(t));
        }
        let mut lengths = Vec::with_capacity(e);
        for _ in 0..e {
            let l = read_f64(r)?;
            if !l.is_finite() || l < 0.0 {
                return Err(bad("invalid edge length"));
            }
            lengths.push(l);
        }
        // Derive sources and the max out-degree from the CSR offsets.
        let mut sources = Vec::with_capacity(e);
        let mut max_out_degree = 0u32;
        for vi in 0..v {
            let deg = out_offsets[vi + 1] - out_offsets[vi];
            max_out_degree = max_out_degree.max(deg);
            for _ in 0..deg {
                sources.push(VertexId(vi as u32));
            }
        }
        Ok(RoadNetwork {
            coords,
            out_offsets,
            targets,
            sources,
            lengths,
            max_out_degree,
            bounds: std::sync::OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    fn sample() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(100.0, 80.0);
        b.add_edge(v0, v1);
        b.add_edge(v1, v2);
        b.add_edge(v2, v0);
        b.add_edge(v0, v2);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let net = sample();
        let mut bytes = Vec::new();
        net.write_to(&mut bytes).unwrap();
        let back = RoadNetwork::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.vertex_count(), net.vertex_count());
        assert_eq!(back.edge_count(), net.edge_count());
        assert_eq!(back.max_out_degree(), net.max_out_degree());
        for v in net.vertices() {
            assert_eq!(back.coord(v), net.coord(v));
            assert_eq!(back.out_degree(v), net.out_degree(v));
        }
        for e in net.edges() {
            assert_eq!(back.edge_from(e), net.edge_from(e));
            assert_eq!(back.edge_to(e), net.edge_to(e));
            assert_eq!(back.edge_length(e), net.edge_length(e));
            assert_eq!(back.edge_number(e), net.edge_number(e));
        }
    }

    #[test]
    fn truncation_is_an_error() {
        let net = sample();
        let mut bytes = Vec::new();
        net.write_to(&mut bytes).unwrap();
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(RoadNetwork::read_from(&mut bytes[..cut].as_ref()).is_err());
        }
    }

    #[test]
    fn corrupt_targets_rejected() {
        let net = sample();
        let mut bytes = Vec::new();
        net.write_to(&mut bytes).unwrap();
        // Overwrite the first target with an out-of-range vertex.
        let target_pos = 8 + net.vertex_count() * 16 + (net.vertex_count() + 1) * 4;
        bytes[target_pos..target_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(RoadNetwork::read_from(&mut bytes.as_slice()).is_err());
    }
}
