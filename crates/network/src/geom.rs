//! Planar geometry primitives.
//!
//! All coordinates live in a local planar frame with metric units (think
//! "meters east / meters north of a dataset origin"). The paper's raw GPS
//! longitude/latitude pairs are assumed to have been projected; for the
//! synthetic datasets the frame is native.

/// A point in the local planar frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

/// An axis-aligned rectangle (closed on all sides).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum corner x.
    pub min_x: f64,
    /// Minimum corner y.
    pub min_y: f64,
    /// Maximum corner x.
    pub max_x: f64,
    /// Maximum corner y.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from two corners (normalizing order).
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Self {
            min_x: min_x.min(max_x),
            min_y: min_y.min(max_y),
            max_x: min_x.max(max_x),
            max_y: min_y.max(max_y),
        }
    }

    /// The degenerate rectangle covering a single point.
    pub fn point(p: Point) -> Self {
        Self::new(p.x, p.y, p.x, p.y)
    }

    /// The smallest rectangle covering both inputs.
    pub fn union(&self, other: Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Grows the rectangle by `margin` on all sides.
    pub fn expand(&self, margin: f64) -> Rect {
        Rect {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    /// True if the point lies inside (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// True if the rectangles share any point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// True if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min_x <= other.min_x
            && self.max_x >= other.max_x
            && self.min_y <= other.min_y
            && self.max_y >= other.max_y
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// True if the segment `a`–`b` intersects the rectangle.
    ///
    /// Uses the standard slab (Liang–Barsky) clipping test.
    pub fn intersects_segment(&self, a: Point, b: Point) -> bool {
        let (mut t0, mut t1) = (0.0f64, 1.0f64);
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        let clips = [
            (-dx, a.x - self.min_x),
            (dx, self.max_x - a.x),
            (-dy, a.y - self.min_y),
            (dy, self.max_y - a.y),
        ];
        for (p, q) in clips {
            if p == 0.0 {
                if q < 0.0 {
                    return false;
                }
            } else {
                let r = q / p;
                if p < 0.0 {
                    if r > t1 {
                        return false;
                    }
                    t0 = t0.max(r);
                } else {
                    if r < t0 {
                        return false;
                    }
                    t1 = t1.min(r);
                }
            }
        }
        t0 <= t1
    }
}

/// Squared distance from point `p` to segment `a`–`b`, plus the parameter
/// `t ∈ [0, 1]` of the closest point along the segment.
pub fn project_to_segment(p: Point, a: Point, b: Point) -> (f64, f64) {
    let vx = b.x - a.x;
    let vy = b.y - a.y;
    let len2 = vx * vx + vy * vy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((p.x - a.x) * vx + (p.y - a.y) * vy) / len2).clamp(0.0, 1.0)
    };
    let cx = a.x + t * vx;
    let cy = a.y + t * vy;
    let d2 = (p.x - cx).powi(2) + (p.y - cy).powi(2);
    (d2, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_lerp_endpoints() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(5.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(3.0, 0.0));
    }

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(5.0, 6.0, 1.0, 2.0);
        assert_eq!(r.min_x, 1.0);
        assert_eq!(r.max_y, 6.0);
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(!r.contains(Point::new(10.0001, 5.0)));
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 15.0, 15.0);
        let c = Rect::new(11.0, 0.0, 12.0, 1.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching edges count as intersecting.
        let d = Rect::new(10.0, 0.0, 20.0, 10.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn rect_contains_rect() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::new(2.0, 2.0, 8.0, 8.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
    }

    #[test]
    fn segment_intersection_cases() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        // Fully inside.
        assert!(r.intersects_segment(Point::new(1.0, 1.0), Point::new(2.0, 2.0)));
        // Crossing through.
        assert!(r.intersects_segment(Point::new(-5.0, 5.0), Point::new(15.0, 5.0)));
        // Fully outside, not crossing.
        assert!(!r.intersects_segment(Point::new(-5.0, -5.0), Point::new(-1.0, 20.0)));
        // Touching a corner.
        assert!(r.intersects_segment(Point::new(-1.0, -1.0), Point::new(0.0, 0.0)));
        // Diagonal miss.
        assert!(!r.intersects_segment(Point::new(11.0, 0.0), Point::new(20.0, 5.0)));
    }

    #[test]
    fn projection_clamps_to_segment() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let (d2, t) = project_to_segment(Point::new(5.0, 3.0), a, b);
        assert!((d2 - 9.0).abs() < 1e-12);
        assert!((t - 0.5).abs() < 1e-12);
        let (d2, t) = project_to_segment(Point::new(-4.0, 3.0), a, b);
        assert!((d2 - 25.0).abs() < 1e-12);
        assert_eq!(t, 0.0);
        let (_, t) = project_to_segment(Point::new(99.0, 0.0), a, b);
        assert_eq!(t, 1.0);
    }

    #[test]
    fn projection_degenerate_segment() {
        let a = Point::new(2.0, 2.0);
        let (d2, t) = project_to_segment(Point::new(5.0, 6.0), a, a);
        assert!((d2 - 25.0).abs() < 1e-12);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn rect_union_expand() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(5.0, -2.0, 6.0, 3.0);
        let u = a.union(b);
        assert_eq!(u, Rect::new(0.0, -2.0, 6.0, 3.0));
        let e = a.expand(1.0);
        assert_eq!(e, Rect::new(-1.0, -1.0, 2.0, 2.0));
    }
}
