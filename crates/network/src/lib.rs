//! Road-network substrate for the UTCQ reproduction.
//!
//! The paper models a road network as a directed graph `G = (V, E)`
//! (Definition 1) whose vertices carry 2-D locations and whose edges carry
//! lengths and *outgoing-edge numbers* (Definition 6): edge `(vs → ve)` is
//! the `no`-th exit of `vs`, and the TED/UTCQ edge sequences are lists of
//! those numbers. This crate provides:
//!
//! * [`RoadNetwork`] — an immutable CSR-packed directed graph with O(1)
//!   `(vertex, number) → edge` resolution, built via [`NetworkBuilder`].
//! * [`geom`] — points and rectangles in a local planar (metric) frame.
//! * [`grid::Grid`] — the uniform spatial partitioning used both by the
//!   StIU spatial index (regions `re_i`) and by range-query regions `RE`.
//! * [`path`] — Dijkstra shortest paths with early termination, needed by
//!   the probabilistic map-matcher's transition model.
//! * [`spatial::EdgeIndex`] — a grid-bucketed edge index for radius
//!   candidate search (map matching) and region↔edge overlap tests.
//! * [`serialize`] — binary (de)serialization of [`RoadNetwork`], used by
//!   the self-contained container format to embed the network.
//! * [`gen`] — synthetic network generators calibrated to the paper's
//!   Table 6 statistics (average out-degree 2.4–2.8).
//! * [`paper_example`] — the running example of the paper's Figure 2
//!   (vertices `v1..v10`), reused by tests across the whole workspace.

pub mod builder;
pub mod gen;
pub mod geom;
pub mod graph;
pub mod grid;
pub mod paper_example;
pub mod path;
pub mod serialize;
pub mod spatial;

pub use builder::NetworkBuilder;
pub use geom::{Point, Rect};
pub use graph::{EdgeId, EdgeRef, RoadNetwork, VertexId};
pub use grid::{CellId, Grid};
