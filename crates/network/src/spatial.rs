//! Grid-bucketed spatial index over edges.
//!
//! Used by the map-matcher to find candidate edges near a raw GPS point,
//! and by the query processor to enumerate the edges that overlap a region.

use crate::geom::{project_to_segment, Point, Rect};
use crate::graph::{EdgeId, RoadNetwork};
use crate::grid::Grid;

/// An edge bucketed by the grid cells its segment passes through.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    grid: Grid,
    buckets: Vec<Vec<EdgeId>>,
}

/// A candidate projection of a point onto an edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeCandidate {
    /// The edge.
    pub edge: EdgeId,
    /// Euclidean distance from the query point to the projection.
    pub dist: f64,
    /// Network distance from the edge source to the projection.
    pub ndist: f64,
}

impl EdgeIndex {
    /// Builds an index with roughly `target_cell_size` meters per cell.
    pub fn build(net: &RoadNetwork, target_cell_size: f64) -> Self {
        let bounds = net.bounding_rect();
        let nx = ((bounds.width() / target_cell_size).ceil() as u32).clamp(1, 4096);
        let ny = ((bounds.height() / target_cell_size).ceil() as u32).clamp(1, 4096);
        Self::build_with_grid(net, Grid::new(bounds, nx, ny))
    }

    /// Builds an index over an explicit grid.
    pub fn build_with_grid(net: &RoadNetwork, grid: Grid) -> Self {
        let mut buckets = vec![Vec::new(); grid.cell_count()];
        for e in net.edges() {
            let a = net.coord(net.edge_from(e));
            let b = net.coord(net.edge_to(e));
            let bbox = Rect::point(a).union(Rect::point(b));
            for cell in grid.cells_overlapping(&bbox) {
                if grid.cell_rect(cell).intersects_segment(a, b) {
                    buckets[cell.idx()].push(e);
                }
            }
        }
        Self { grid, buckets }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// All edges whose segment may lie within `radius` of `p`, with their
    /// exact projection distances, sorted nearest-first.
    pub fn candidates_within(
        &self,
        net: &RoadNetwork,
        p: Point,
        radius: f64,
    ) -> Vec<EdgeCandidate> {
        let query = Rect::point(p).expand(radius);
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for cell in self.grid.cells_overlapping(&query) {
            for &e in &self.buckets[cell.idx()] {
                if !seen.insert(e) {
                    continue;
                }
                let a = net.coord(net.edge_from(e));
                let b = net.coord(net.edge_to(e));
                let (d2, t) = project_to_segment(p, a, b);
                let dist = d2.sqrt();
                if dist <= radius {
                    out.push(EdgeCandidate {
                        edge: e,
                        dist,
                        ndist: t * net.edge_length(e),
                    });
                }
            }
        }
        out.sort_by(|x, y| x.dist.total_cmp(&y.dist).then(x.edge.cmp(&y.edge)));
        out
    }

    /// Nearest edge to `p` within `radius`, if any.
    pub fn nearest(&self, net: &RoadNetwork, p: Point, radius: f64) -> Option<EdgeCandidate> {
        self.candidates_within(net, p, radius).into_iter().next()
    }

    /// Edges whose segment intersects a rectangle.
    pub fn edges_in_rect(&self, net: &RoadNetwork, rect: &Rect) -> Vec<EdgeId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for cell in self.grid.cells_overlapping(rect) {
            for &e in &self.buckets[cell.idx()] {
                if seen.insert(e) {
                    let a = net.coord(net.edge_from(e));
                    let b = net.coord(net.edge_to(e));
                    if rect.intersects_segment(a, b) {
                        out.push(e);
                    }
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    fn cross() -> RoadNetwork {
        // A plus-shaped network centered at (50, 50).
        let mut b = NetworkBuilder::new();
        let c = b.add_vertex(50.0, 50.0);
        let n = b.add_vertex(50.0, 100.0);
        let s = b.add_vertex(50.0, 0.0);
        let e = b.add_vertex(100.0, 50.0);
        let w = b.add_vertex(0.0, 50.0);
        for v in [n, s, e, w] {
            b.add_bidirectional(c, v);
        }
        b.build()
    }

    #[test]
    fn candidates_sorted_by_distance() {
        let net = cross();
        let idx = EdgeIndex::build(&net, 20.0);
        let cands = idx.candidates_within(&net, Point::new(52.0, 70.0), 10.0);
        assert!(!cands.is_empty());
        // The vertical edges should be nearest (distance 2).
        assert!((cands[0].dist - 2.0).abs() < 1e-9);
        for pair in cands.windows(2) {
            assert!(pair[0].dist <= pair[1].dist);
        }
    }

    #[test]
    fn radius_filters() {
        let net = cross();
        let idx = EdgeIndex::build(&net, 20.0);
        let far = idx.candidates_within(&net, Point::new(52.0, 70.0), 1.0);
        assert!(far.is_empty());
        assert!(idx.nearest(&net, Point::new(52.0, 70.0), 5.0).is_some());
    }

    #[test]
    fn ndist_matches_projection() {
        let net = cross();
        let idx = EdgeIndex::build(&net, 20.0);
        let c = idx
            .nearest(&net, Point::new(49.0, 80.0), 5.0)
            .expect("vertical edge nearby");
        // Projection is 30 meters up from the center along a 50m edge (or
        // 20m down from the north end, depending on direction).
        let len = net.edge_length(c.edge);
        assert!((len - 50.0).abs() < 1e-9);
        assert!((c.ndist - 30.0).abs() < 1e-9 || (c.ndist - 20.0).abs() < 1e-9);
    }

    #[test]
    fn edges_in_rect_finds_crossings() {
        let net = cross();
        let idx = EdgeIndex::build(&net, 20.0);
        // A box straddling the north arm only.
        let hits = idx.edges_in_rect(&net, &Rect::new(45.0, 80.0, 55.0, 90.0));
        assert_eq!(hits.len(), 2); // both directions of the north arm
        let all = idx.edges_in_rect(&net, &Rect::new(-10.0, -10.0, 110.0, 110.0));
        assert_eq!(all.len(), net.edge_count());
    }

    #[test]
    fn empty_region() {
        let net = cross();
        let idx = EdgeIndex::build(&net, 20.0);
        let hits = idx.edges_in_rect(&net, &Rect::new(80.0, 80.0, 90.0, 90.0));
        assert!(hits.is_empty());
    }
}
