//! Synthetic road-network generators.
//!
//! The paper evaluates on the Denmark, Chengdu, and Hangzhou road networks
//! (Table 6: 62 k–668 k vertices, average out-degree 2.449–2.834). Those
//! datasets are proprietary, so the experiment harness generates *grid
//! cities*: jittered lattices with randomly removed streets and occasional
//! diagonal shortcuts. The removal probability tunes the average out-degree
//! into the paper's range, which is the only network statistic the
//! compression pipeline is sensitive to (it sizes the outgoing-edge-number
//! code via the max out-degree and shapes path diversity).

use rand::Rng;

use crate::builder::NetworkBuilder;
use crate::graph::RoadNetwork;

/// Configuration for [`grid_city`].
#[derive(Debug, Clone, Copy)]
pub struct GridCityConfig {
    /// Number of intersection columns.
    pub nx: u32,
    /// Number of intersection rows.
    pub ny: u32,
    /// Distance between neighboring intersections in meters.
    pub spacing: f64,
    /// Positional jitter as a fraction of `spacing` (0 = perfect lattice).
    pub jitter: f64,
    /// Probability that a lattice street (both directions) is removed.
    pub p_remove: f64,
    /// Probability that a diagonal shortcut (both directions) is added in a
    /// lattice cell.
    pub p_diagonal: f64,
}

impl Default for GridCityConfig {
    fn default() -> Self {
        Self {
            nx: 32,
            ny: 32,
            spacing: 200.0,
            jitter: 0.15,
            p_remove: 0.25,
            p_diagonal: 0.05,
        }
    }
}

impl GridCityConfig {
    /// A small network for unit tests.
    pub fn tiny() -> Self {
        Self {
            nx: 8,
            ny: 8,
            ..Self::default()
        }
    }
}

/// Generates a jittered grid city.
///
/// The lattice keeps a spanning "arterial" skeleton (the first row and the
/// first column are never removed) so the network stays largely connected
/// and random walks do not strand immediately.
pub fn grid_city<R: Rng + ?Sized>(cfg: &GridCityConfig, rng: &mut R) -> RoadNetwork {
    assert!(cfg.nx >= 2 && cfg.ny >= 2, "grid must be at least 2×2");
    let mut b = NetworkBuilder::new();
    let mut vs = Vec::with_capacity((cfg.nx * cfg.ny) as usize);
    for row in 0..cfg.ny {
        for col in 0..cfg.nx {
            let jx = if cfg.jitter > 0.0 {
                rng.gen_range(-cfg.jitter..cfg.jitter) * cfg.spacing
            } else {
                0.0
            };
            let jy = if cfg.jitter > 0.0 {
                rng.gen_range(-cfg.jitter..cfg.jitter) * cfg.spacing
            } else {
                0.0
            };
            vs.push(b.add_vertex(
                f64::from(col) * cfg.spacing + jx,
                f64::from(row) * cfg.spacing + jy,
            ));
        }
    }
    let at = |row: u32, col: u32| vs[(row * cfg.nx + col) as usize];
    for row in 0..cfg.ny {
        for col in 0..cfg.nx {
            // Horizontal street to the east.
            if col + 1 < cfg.nx {
                let arterial = row == 0;
                if arterial || rng.gen::<f64>() >= cfg.p_remove {
                    b.add_bidirectional(at(row, col), at(row, col + 1));
                }
            }
            // Vertical street to the north.
            if row + 1 < cfg.ny {
                let arterial = col == 0;
                if arterial || rng.gen::<f64>() >= cfg.p_remove {
                    b.add_bidirectional(at(row, col), at(row + 1, col));
                }
            }
            // Diagonal shortcut across the cell.
            if col + 1 < cfg.nx && row + 1 < cfg.ny && rng.gen::<f64>() < cfg.p_diagonal {
                if rng.gen::<bool>() {
                    b.add_bidirectional(at(row, col), at(row + 1, col + 1));
                } else {
                    b.add_bidirectional(at(row, col + 1), at(row + 1, col));
                }
            }
        }
    }
    b.build()
}

/// A straight bidirectional chain of `n` vertices `spacing` apart —
/// convenient for focused tests.
pub fn line(n: u32, spacing: f64) -> RoadNetwork {
    assert!(n >= 2);
    let mut b = NetworkBuilder::new();
    let vs: Vec<_> = (0..n)
        .map(|i| b.add_vertex(f64::from(i) * spacing, 0.0))
        .collect();
    for w in vs.windows(2) {
        b.add_bidirectional(w[0], w[1]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_city_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = GridCityConfig::default();
        let net = grid_city(&cfg, &mut rng);
        assert_eq!(net.vertex_count(), 32 * 32);
        assert!(net.edge_count() > 0);
        // Average out-degree in the paper's ballpark (Table 6: 2.4–2.8).
        let avg = net.avg_out_degree();
        assert!((2.0..4.0).contains(&avg), "avg out-degree {avg}");
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = GridCityConfig::tiny();
        let a = grid_city(&cfg, &mut StdRng::seed_from_u64(42));
        let b = grid_city(&cfg, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for (ea, eb) in a.edges().zip(b.edges()) {
            assert_eq!(a.edge_to(ea), b.edge_to(eb));
        }
    }

    #[test]
    fn removal_reduces_degree() {
        let mut cfg = GridCityConfig::tiny();
        cfg.p_diagonal = 0.0;
        cfg.p_remove = 0.0;
        let dense = grid_city(&cfg, &mut StdRng::seed_from_u64(1));
        cfg.p_remove = 0.6;
        let sparse = grid_city(&cfg, &mut StdRng::seed_from_u64(1));
        assert!(sparse.edge_count() < dense.edge_count());
    }

    #[test]
    fn arterials_survive_removal() {
        let mut cfg = GridCityConfig::tiny();
        cfg.p_remove = 1.0;
        cfg.p_diagonal = 0.0;
        let net = grid_city(&cfg, &mut StdRng::seed_from_u64(3));
        // First row and first column streets remain: (nx−1) + (ny−1)
        // bidirectional streets.
        assert_eq!(net.edge_count(), 2 * ((8 - 1) + (8 - 1)));
    }

    #[test]
    fn line_network() {
        let net = line(5, 10.0);
        assert_eq!(net.vertex_count(), 5);
        assert_eq!(net.edge_count(), 8);
        assert_eq!(net.max_out_degree(), 2);
    }
}
