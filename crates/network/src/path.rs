//! Shortest paths over the road network.
//!
//! The probabilistic map-matcher scores transitions by the ratio of
//! great-circle to network distance, which requires many point-to-point
//! shortest-path queries with a known small radius; Dijkstra with early
//! termination and a distance cap is the right tool at our scales.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{EdgeId, RoadNetwork, VertexId};

/// A min-heap entry.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: VertexId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are finite by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a shortest-path query.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPath {
    /// Total network distance in meters.
    pub dist: f64,
    /// The edges traversed, in order (empty when `from == to`).
    pub edges: Vec<EdgeId>,
}

/// Dijkstra from `from` to `to`, giving up once the tentative distance
/// exceeds `max_dist`.
///
/// Returns `None` if `to` is unreachable within the cap.
pub fn shortest_path(
    net: &RoadNetwork,
    from: VertexId,
    to: VertexId,
    max_dist: f64,
) -> Option<ShortestPath> {
    let preds = dijkstra(net, from, Some(to), max_dist)?;
    let mut edges = Vec::new();
    let mut cur = to;
    while cur != from {
        let (e, prev) = preds.pred[cur.idx()]?;
        edges.push(e);
        cur = prev;
    }
    edges.reverse();
    Some(ShortestPath {
        dist: preds.dist[to.idx()],
        edges,
    })
}

/// Like [`shortest_path`], but never traverses edges in `banned`.
///
/// Used by the synthetic-data generator to find *detours*: alternate routes
/// between two path vertices that avoid the original edges, mimicking the
/// alternative paths probabilistic map-matching produces.
pub fn shortest_path_avoiding(
    net: &RoadNetwork,
    from: VertexId,
    to: VertexId,
    max_dist: f64,
    banned: &std::collections::HashSet<EdgeId>,
) -> Option<ShortestPath> {
    let n = net.vertex_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<(EdgeId, VertexId)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[from.idx()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: from,
    });
    while let Some(HeapEntry { dist: d, vertex }) = heap.pop() {
        if settled[vertex.idx()] {
            continue;
        }
        settled[vertex.idx()] = true;
        if vertex == to {
            break;
        }
        if d > max_dist {
            break;
        }
        for e in net.out_edges(vertex) {
            if banned.contains(&e) {
                continue;
            }
            let nb = net.edge_to(e);
            let nd = d + net.edge_length(e);
            if nd < dist[nb.idx()] && nd <= max_dist {
                dist[nb.idx()] = nd;
                pred[nb.idx()] = Some((e, vertex));
                heap.push(HeapEntry {
                    dist: nd,
                    vertex: nb,
                });
            }
        }
    }
    if !dist[to.idx()].is_finite() {
        return None;
    }
    let mut edges = Vec::new();
    let mut cur = to;
    while cur != from {
        let (e, prev) = pred[cur.idx()]?;
        edges.push(e);
        cur = prev;
    }
    edges.reverse();
    Some(ShortestPath {
        dist: dist[to.idx()],
        edges,
    })
}

/// Network distance only (no path reconstruction).
pub fn shortest_dist(
    net: &RoadNetwork,
    from: VertexId,
    to: VertexId,
    max_dist: f64,
) -> Option<f64> {
    dijkstra(net, from, Some(to), max_dist).map(|s| s.dist[to.idx()])
}

/// Single-source distances to every vertex within `max_dist`.
///
/// Returns `(vertex, distance)` pairs for all settled vertices.
pub fn reachable_within(net: &RoadNetwork, from: VertexId, max_dist: f64) -> Vec<(VertexId, f64)> {
    let state = dijkstra_state(net, from, None, max_dist);
    state
        .dist
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_finite())
        .map(|(i, &d)| (VertexId(i as u32), d))
        .collect()
}

struct DijkstraState {
    dist: Vec<f64>,
    pred: Vec<Option<(EdgeId, VertexId)>>,
}

fn dijkstra(
    net: &RoadNetwork,
    from: VertexId,
    to: Option<VertexId>,
    max_dist: f64,
) -> Option<DijkstraState> {
    let state = dijkstra_state(net, from, to, max_dist);
    match to {
        Some(t) if !state.dist[t.idx()].is_finite() => None,
        _ => Some(state),
    }
}

fn dijkstra_state(
    net: &RoadNetwork,
    from: VertexId,
    to: Option<VertexId>,
    max_dist: f64,
) -> DijkstraState {
    let n = net.vertex_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<(EdgeId, VertexId)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[from.idx()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: from,
    });
    while let Some(HeapEntry { dist: d, vertex }) = heap.pop() {
        if settled[vertex.idx()] {
            continue;
        }
        settled[vertex.idx()] = true;
        if Some(vertex) == to {
            break;
        }
        if d > max_dist {
            break;
        }
        for e in net.out_edges(vertex) {
            let nb = net.edge_to(e);
            let nd = d + net.edge_length(e);
            if nd < dist[nb.idx()] && nd <= max_dist {
                dist[nb.idx()] = nd;
                pred[nb.idx()] = Some((e, vertex));
                heap.push(HeapEntry {
                    dist: nd,
                    vertex: nb,
                });
            }
        }
    }
    DijkstraState { dist, pred }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    /// A 3×3 grid with unit spacing 10 and bidirectional edges.
    fn grid3() -> (RoadNetwork, Vec<VertexId>) {
        let mut b = NetworkBuilder::new();
        let mut vs = Vec::new();
        for row in 0..3 {
            for col in 0..3 {
                vs.push(b.add_vertex(col as f64 * 10.0, row as f64 * 10.0));
            }
        }
        for row in 0..3 {
            for col in 0..3 {
                let i = row * 3 + col;
                if col + 1 < 3 {
                    b.add_bidirectional(vs[i], vs[i + 1]);
                }
                if row + 1 < 3 {
                    b.add_bidirectional(vs[i], vs[i + 3]);
                }
            }
        }
        (b.build(), vs)
    }

    #[test]
    fn trivial_path() {
        let (n, vs) = grid3();
        let p = shortest_path(&n, vs[0], vs[0], 1e9).unwrap();
        assert_eq!(p.dist, 0.0);
        assert!(p.edges.is_empty());
    }

    #[test]
    fn manhattan_distance_on_grid() {
        let (n, vs) = grid3();
        let p = shortest_path(&n, vs[0], vs[8], 1e9).unwrap();
        assert!((p.dist - 40.0).abs() < 1e-9);
        assert_eq!(p.edges.len(), 4);
        assert!(n.is_path(&p.edges));
        assert_eq!(n.edge_from(p.edges[0]), vs[0]);
        assert_eq!(n.edge_to(*p.edges.last().unwrap()), vs[8]);
    }

    #[test]
    fn cap_prevents_long_paths() {
        let (n, vs) = grid3();
        assert!(shortest_path(&n, vs[0], vs[8], 39.0).is_none());
        assert!(shortest_path(&n, vs[0], vs[8], 40.0).is_some());
        assert_eq!(shortest_dist(&n, vs[0], vs[8], 40.0), Some(40.0));
    }

    #[test]
    fn unreachable_vertex() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(10.0, 0.0);
        let v2 = b.add_vertex(20.0, 0.0);
        b.add_edge(v0, v1); // one-way, nothing reaches v2
        let n = b.build();
        assert!(shortest_path(&n, v0, v2, 1e9).is_none());
        assert!(shortest_path(&n, v1, v0, 1e9).is_none());
    }

    #[test]
    fn respects_edge_direction() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(10.0, 0.0);
        let v2 = b.add_vertex(20.0, 0.0);
        b.add_edge(v0, v1);
        b.add_edge(v1, v2);
        b.add_edge(v2, v0); // ring
        let n = b.build();
        // Going "backwards" must loop around the ring.
        let p = shortest_path(&n, v1, v0, 1e9).unwrap();
        assert_eq!(p.edges.len(), 2);
        assert!((p.dist - 30.0).abs() < 1e-9);
    }

    #[test]
    fn reachable_within_radius() {
        let (n, vs) = grid3();
        let reach = reachable_within(&n, vs[0], 10.0);
        // Origin plus its two direct neighbors.
        assert_eq!(reach.len(), 3);
        let reach = reachable_within(&n, vs[0], 20.0);
        assert_eq!(reach.len(), 6);
    }

    #[test]
    fn avoiding_banned_edges_takes_detour() {
        let (n, vs) = grid3();
        let direct = shortest_path(&n, vs[0], vs[1], 1e9).unwrap();
        assert_eq!(direct.edges.len(), 1);
        let banned: std::collections::HashSet<_> = direct.edges.iter().copied().collect();
        let detour = shortest_path_avoiding(&n, vs[0], vs[1], 1e9, &banned).unwrap();
        assert!(detour.edges.len() >= 3);
        assert!(detour.dist > direct.dist);
        assert!(detour.edges.iter().all(|e| !banned.contains(e)));
        assert!(n.is_path(&detour.edges));
    }

    #[test]
    fn avoiding_all_edges_fails() {
        let (n, vs) = grid3();
        let banned: std::collections::HashSet<_> = n.edges().collect();
        assert!(shortest_path_avoiding(&n, vs[0], vs[1], 1e9, &banned).is_none());
    }

    #[test]
    fn shortest_path_prefers_shorter_geometry() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(10.0, 0.0);
        let vm = b.add_vertex(5.0, 20.0); // detour vertex
        b.add_edge(v0, vm);
        b.add_edge(vm, v1);
        b.add_edge_with_length(v0, v1, 12.0);
        let n = b.build();
        let p = shortest_path(&n, v0, v1, 1e9).unwrap();
        assert_eq!(p.edges.len(), 1);
        assert!((p.dist - 12.0).abs() < 1e-9);
    }
}
