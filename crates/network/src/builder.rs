//! Mutable construction of [`RoadNetwork`]s.

use crate::geom::Point;
use crate::graph::{EdgeId, RoadNetwork, VertexId};

/// Builder for [`RoadNetwork`].
///
/// Outgoing-edge numbers (Definition 6) are assigned by *insertion order*:
/// the first edge added for a vertex becomes exit 1, the second exit 2, and
/// so on. This keeps the numbering deterministic and lets the paper-example
/// fixture reproduce the exact edge sequences of the paper's Table 3.
#[derive(Debug, Default, Clone)]
pub struct NetworkBuilder {
    coords: Vec<Point>,
    /// Adjacency in insertion order: per vertex, `(target, length)`.
    adj: Vec<Vec<(VertexId, f64)>>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.coords.len()
    }

    /// Adds a vertex at `(x, y)` and returns its id.
    pub fn add_vertex(&mut self, x: f64, y: f64) -> VertexId {
        let id = VertexId(self.coords.len() as u32);
        self.coords.push(Point::new(x, y));
        self.adj.push(Vec::new());
        id
    }

    /// Adds a directed edge with length equal to the Euclidean distance
    /// between its endpoints.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) -> u32 {
        let len = self.coords[from.idx()].dist(self.coords[to.idx()]);
        self.add_edge_with_length(from, to, len)
    }

    /// Adds a directed edge with an explicit length, returning its 1-based
    /// outgoing-edge number w.r.t. `from`.
    pub fn add_edge_with_length(&mut self, from: VertexId, to: VertexId, length: f64) -> u32 {
        assert!(from.idx() < self.coords.len(), "unknown source vertex");
        assert!(to.idx() < self.coords.len(), "unknown target vertex");
        assert!(length >= 0.0, "edge length must be non-negative");
        self.adj[from.idx()].push((to, length));
        self.adj[from.idx()].len() as u32
    }

    /// Adds edges in both directions (the common case for road segments)
    /// with Euclidean lengths.
    pub fn add_bidirectional(&mut self, a: VertexId, b: VertexId) {
        self.add_edge(a, b);
        self.add_edge(b, a);
    }

    /// Finalizes the CSR network.
    pub fn build(self) -> RoadNetwork {
        let v = self.coords.len();
        let mut out_offsets = Vec::with_capacity(v + 1);
        let mut targets = Vec::new();
        let mut sources = Vec::new();
        let mut lengths = Vec::new();
        let mut max_out_degree = 0u32;
        out_offsets.push(0u32);
        for (i, edges) in self.adj.iter().enumerate() {
            max_out_degree = max_out_degree.max(edges.len() as u32);
            for &(to, len) in edges {
                targets.push(to);
                sources.push(VertexId(i as u32));
                lengths.push(len);
            }
            out_offsets.push(targets.len() as u32);
        }
        RoadNetwork {
            coords: self.coords,
            out_offsets,
            targets,
            sources,
            lengths,
            max_out_degree,
            bounds: std::sync::OnceLock::new(),
        }
    }
}

/// Convenience: looks up an edge id in a freshly built network by endpoint
/// pair, panicking if absent. Test-oriented helper.
pub fn edge(net: &RoadNetwork, from: VertexId, to: VertexId) -> EdgeId {
    net.find_edge(from, to)
        .unwrap_or_else(|| panic!("no edge {from:?} → {to:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_network() {
        let n = NetworkBuilder::new().build();
        assert_eq!(n.vertex_count(), 0);
        assert_eq!(n.edge_count(), 0);
        assert_eq!(n.max_out_degree(), 0);
    }

    #[test]
    fn explicit_lengths_preserved() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(1.0, 0.0);
        b.add_edge_with_length(v0, v1, 42.0);
        let n = b.build();
        let e = n.find_edge(v0, v1).unwrap();
        assert_eq!(n.edge_length(e), 42.0);
    }

    #[test]
    fn euclidean_lengths() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(3.0, 4.0);
        b.add_bidirectional(v0, v1);
        let n = b.build();
        for e in n.edges() {
            assert!((n.edge_length(e) - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn add_edge_returns_number() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(1.0, 0.0);
        let v2 = b.add_vertex(0.0, 1.0);
        assert_eq!(b.add_edge(v0, v1), 1);
        assert_eq!(b.add_edge(v0, v2), 2);
        assert_eq!(b.add_edge(v1, v2), 1);
    }

    #[test]
    fn csr_layout_is_contiguous() {
        let mut b = NetworkBuilder::new();
        let vs: Vec<_> = (0..5).map(|i| b.add_vertex(i as f64, 0.0)).collect();
        for w in vs.windows(2) {
            b.add_bidirectional(w[0], w[1]);
        }
        let n = b.build();
        for v in n.vertices() {
            let ids: Vec<_> = n.out_edges(v).collect();
            for (k, &e) in ids.iter().enumerate() {
                assert_eq!(n.edge_from(e), v);
                assert_eq!(n.edge_number(e), k as u32 + 1);
            }
        }
    }
}
