//! Uniform grid partitioning of the road-network plane.
//!
//! The StIU spatial index "partition\[s\] the road network G using grid
//! cells, each of which represents a region `re_i`" (§5.2); the paper's
//! Fig. 9 sweeps the number of cells from 8×8 to 128×128. Range queries
//! also use grid-aligned regions.

use crate::geom::{Point, Rect};
use crate::graph::RoadNetwork;

/// Identifier of a grid cell (row-major: `cell = row * nx + col`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The cell index as a `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A uniform `nx × ny` grid over a bounding rectangle.
#[derive(Debug, Clone)]
pub struct Grid {
    bounds: Rect,
    nx: u32,
    ny: u32,
    cell_w: f64,
    cell_h: f64,
}

impl Grid {
    /// Builds a grid over an explicit bounding rectangle.
    ///
    /// The rectangle is expanded by a tiny epsilon so points exactly on the
    /// max boundary land in the last cell.
    pub fn new(bounds: Rect, nx: u32, ny: u32) -> Self {
        assert!(nx > 0 && ny > 0, "grid must have at least one cell");
        let eps_x = (bounds.width().max(1.0)) * 1e-9;
        let eps_y = (bounds.height().max(1.0)) * 1e-9;
        let bounds = Rect::new(
            bounds.min_x,
            bounds.min_y,
            bounds.max_x + eps_x,
            bounds.max_y + eps_y,
        );
        Self {
            bounds,
            nx,
            ny,
            cell_w: bounds.width() / f64::from(nx),
            cell_h: bounds.height() / f64::from(ny),
        }
    }

    /// Builds an `n × n` grid over a network's bounding rectangle (the
    /// paper's "number of grid cells = n²" parameter).
    pub fn over_network(net: &RoadNetwork, n: u32) -> Self {
        Self::new(net.bounding_rect(), n, n)
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.nx, self.ny)
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// The cell containing a point (points outside the bounds clamp to the
    /// border cells).
    pub fn cell_of(&self, p: Point) -> CellId {
        let col = (((p.x - self.bounds.min_x) / self.cell_w).floor() as i64)
            .clamp(0, i64::from(self.nx) - 1) as u32;
        let row = (((p.y - self.bounds.min_y) / self.cell_h).floor() as i64)
            .clamp(0, i64::from(self.ny) - 1) as u32;
        CellId(row * self.nx + col)
    }

    /// The rectangle covered by a cell.
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        let row = cell.0 / self.nx;
        let col = cell.0 % self.nx;
        let min_x = self.bounds.min_x + f64::from(col) * self.cell_w;
        let min_y = self.bounds.min_y + f64::from(row) * self.cell_h;
        Rect::new(min_x, min_y, min_x + self.cell_w, min_y + self.cell_h)
    }

    /// All cells whose rectangle intersects `rect`.
    pub fn cells_overlapping(&self, rect: &Rect) -> Vec<CellId> {
        let lo = self.cell_of(Point::new(rect.min_x, rect.min_y));
        let hi = self.cell_of(Point::new(rect.max_x, rect.max_y));
        let (lo_row, lo_col) = (lo.0 / self.nx, lo.0 % self.nx);
        let (hi_row, hi_col) = (hi.0 / self.nx, hi.0 % self.nx);
        let mut cells =
            Vec::with_capacity(((hi_row - lo_row + 1) * (hi_col - lo_col + 1)) as usize);
        for row in lo_row..=hi_row {
            for col in lo_col..=hi_col {
                cells.push(CellId(row * self.nx + col));
            }
        }
        cells
    }

    /// The union rectangle of a set of cells — the `re_total` of Lemma 4.
    pub fn union_rect(&self, cells: &[CellId]) -> Option<Rect> {
        let mut it = cells.iter();
        let first = self.cell_rect(*it.next()?);
        Some(it.fold(first, |acc, &c| acc.union(self.cell_rect(c))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> Grid {
        Grid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 4, 4)
    }

    #[test]
    fn cell_of_corners() {
        let g = grid4();
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), CellId(0));
        assert_eq!(g.cell_of(Point::new(39.9, 0.0)), CellId(3));
        assert_eq!(g.cell_of(Point::new(0.0, 39.9)), CellId(12));
        // Max boundary lands in the last cell rather than overflowing.
        assert_eq!(g.cell_of(Point::new(40.0, 40.0)), CellId(15));
    }

    #[test]
    fn out_of_bounds_clamps() {
        let g = grid4();
        assert_eq!(g.cell_of(Point::new(-5.0, -5.0)), CellId(0));
        assert_eq!(g.cell_of(Point::new(99.0, 99.0)), CellId(15));
    }

    #[test]
    fn cell_rect_roundtrip() {
        let g = grid4();
        for i in 0..16 {
            let r = g.cell_rect(CellId(i));
            assert_eq!(g.cell_of(r.center()), CellId(i));
        }
    }

    #[test]
    fn overlap_enumeration() {
        let g = grid4();
        let cells = g.cells_overlapping(&Rect::new(5.0, 5.0, 15.0, 25.0));
        assert_eq!(
            cells,
            vec![
                CellId(0),
                CellId(1),
                CellId(4),
                CellId(5),
                CellId(8),
                CellId(9)
            ]
        );
        let one = g.cells_overlapping(&Rect::new(11.0, 11.0, 12.0, 12.0));
        assert_eq!(one, vec![CellId(5)]);
    }

    #[test]
    fn union_rect_covers_cells() {
        let g = grid4();
        let r = g.union_rect(&[CellId(0), CellId(5)]).unwrap();
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(r.contains(Point::new(19.0, 19.0)));
        assert!(g.union_rect(&[]).is_none());
    }

    #[test]
    fn degenerate_bounds_still_work() {
        // A single-vertex network has a zero-area bounding rect.
        let g = Grid::new(Rect::new(3.0, 3.0, 3.0, 3.0), 8, 8);
        assert_eq!(g.cell_of(Point::new(3.0, 3.0)), CellId(0));
    }
}
