//! The running example of the paper (Figure 2).
//!
//! Ten vertices `v1..v10` plus a few stub vertices whose only purpose is to
//! pad out-degrees so the outgoing-edge numbers match the paper exactly:
//!
//! * `(v1→v2)` is exit **1** of `v1`,
//! * `(v2→v10)` is exit **1** and `(v2→v3)` exit **2** of `v2`,
//! * `(v3→v4)` is exit **1** of `v3`,
//! * `(v4→v5)` is exit **2** of `v4`,
//! * `(v5→v6)` is exit **2** of `v5`,
//! * `(v6→v7)` is exit **4** of `v6`,
//! * `(v7→v8)` is exit **1** of `v7`,
//! * `(v8→v9)` is exit **2** of `v8`,
//! * `(v10→v4)` is exit **1** of `v10`,
//!
//! which makes the three instances of `Tu¹` produce exactly the edge
//! sequences of Table 3:
//! `E(Tu¹₁) = ⟨1,2,1,2,2,0,4,1,0⟩`, `E(Tu¹₂) = ⟨1,1,1,2,2,0,4,1,0⟩`,
//! `E(Tu¹₃) = ⟨1,2,1,2,2,0,4,1,2⟩`.
//!
//! Edge `(v6→v7)` has length 200 as assumed by Example 3, so the
//! probabilistic *where* query at 5:21:25 answers `⟨v6→v7, 150⟩`.

use crate::builder::NetworkBuilder;
use crate::graph::{EdgeId, RoadNetwork, VertexId};

/// The paper's Figure 2 network plus handles to its named vertices.
#[derive(Debug, Clone)]
pub struct PaperExample {
    /// The network.
    pub net: RoadNetwork,
    /// `v[i]` is the paper's `v(i+1)`, e.g. `v[0]` = `v1`, `v[9]` = `v10`.
    pub v: [VertexId; 10],
}

/// The paper's external IDs for `v1..v8` in the order of Figure 5
/// (`v1 = 185190`, …). Only used in documentation and display, since the
/// internal model keys vertices by dense index.
pub const PAPER_IDS: [u64; 8] = [
    185190, 185191, 185192, 185194, 228476, 228477, 228478, 228479,
];

impl PaperExample {
    /// The paper's vertex, 1-based to match the text (`vertex(1)` = `v1`).
    pub fn vertex(&self, i: usize) -> VertexId {
        self.v[i - 1]
    }

    /// The edge `v(i) → v(j)`, 1-based, panicking if absent.
    pub fn edge(&self, i: usize, j: usize) -> EdgeId {
        self.net
            .find_edge(self.vertex(i), self.vertex(j))
            .unwrap_or_else(|| panic!("no edge v{i} → v{j}"))
    }
}

/// Builds the Figure 2 fixture.
pub fn build() -> PaperExample {
    let mut b = NetworkBuilder::new();
    // Main vertices roughly along the west-east corridor of Fig. 2;
    // v10 sits on the northern detour, v9 dangles south-east of v8.
    let v1 = b.add_vertex(0.0, 0.0);
    let v2 = b.add_vertex(8.0, 0.0);
    let v3 = b.add_vertex(16.0, 0.0);
    let v4 = b.add_vertex(24.0, 0.0);
    let v5 = b.add_vertex(32.0, 0.0);
    let v6 = b.add_vertex(40.0, 0.0);
    let v7 = b.add_vertex(48.0, 0.0);
    let v8 = b.add_vertex(56.0, 0.0);
    let v9 = b.add_vertex(62.0, -6.0);
    let v10 = b.add_vertex(16.0, 8.0);
    // Stub vertices pad the out-degrees.
    let s1 = b.add_vertex(24.0, -8.0);
    let s2 = b.add_vertex(40.0, 8.0);
    let s3 = b.add_vertex(40.0, -8.0);

    // v1: exit 1 = (v1→v2).
    b.add_edge_with_length(v1, v2, 8.0);
    // v2: exit 1 = (v2→v10), exit 2 = (v2→v3).
    b.add_edge_with_length(v2, v10, 8.0);
    b.add_edge_with_length(v2, v3, 8.0);
    // v3: exit 1 = (v3→v4).
    b.add_edge_with_length(v3, v4, 8.0);
    // v4: exit 1 = stub, exit 2 = (v4→v5).
    b.add_edge_with_length(v4, s1, 8.0);
    b.add_edge_with_length(v4, v5, 8.0);
    // v5: exit 1 = stub, exit 2 = (v5→v6).
    b.add_edge_with_length(v5, s3, 8.0);
    b.add_edge_with_length(v5, v6, 8.0);
    // v6: exits 1–3 = stubs, exit 4 = (v6→v7). Example 3 assumes
    // |(v6→v7)| = 200.
    b.add_edge_with_length(v6, s2, 8.0);
    b.add_edge_with_length(v6, s3, 8.0);
    b.add_edge_with_length(v6, v5, 8.0);
    b.add_edge_with_length(v6, v7, 200.0);
    // v7: exit 1 = (v7→v8).
    b.add_edge_with_length(v7, v8, 8.0);
    // v8: exit 1 = stub (back to v7), exit 2 = (v8→v9).
    b.add_edge_with_length(v8, v7, 8.0);
    b.add_edge_with_length(v8, v9, 8.0);
    // v10: exit 1 = (v10→v4).
    b.add_edge_with_length(v10, v4, 16.0);

    let net = b.build();
    PaperExample {
        net,
        v: [v1, v2, v3, v4, v5, v6, v7, v8, v9, v10],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_edge_numbers_match_table_3() {
        let ex = build();
        let n = &ex.net;
        assert_eq!(n.edge_number(ex.edge(1, 2)), 1);
        assert_eq!(n.edge_number(ex.edge(2, 10)), 1);
        assert_eq!(n.edge_number(ex.edge(2, 3)), 2);
        assert_eq!(n.edge_number(ex.edge(3, 4)), 1);
        assert_eq!(n.edge_number(ex.edge(4, 5)), 2);
        assert_eq!(n.edge_number(ex.edge(5, 6)), 2);
        assert_eq!(n.edge_number(ex.edge(6, 7)), 4);
        assert_eq!(n.edge_number(ex.edge(7, 8)), 1);
        assert_eq!(n.edge_number(ex.edge(8, 9)), 2);
        assert_eq!(n.edge_number(ex.edge(10, 4)), 1);
    }

    #[test]
    fn max_out_degree_is_v6() {
        let ex = build();
        assert_eq!(ex.net.max_out_degree(), 4);
        assert_eq!(ex.net.out_degree(ex.vertex(6)), 4);
    }

    #[test]
    fn paths_of_all_three_instances_exist() {
        let ex = build();
        let n = &ex.net;
        // Tu¹₁ / Tu¹₃ spine.
        let spine = [
            ex.edge(1, 2),
            ex.edge(2, 3),
            ex.edge(3, 4),
            ex.edge(4, 5),
            ex.edge(5, 6),
            ex.edge(6, 7),
            ex.edge(7, 8),
        ];
        assert!(n.is_path(&spine));
        // Tu¹₂ detour via v10.
        let detour = [
            ex.edge(1, 2),
            ex.edge(2, 10),
            ex.edge(10, 4),
            ex.edge(4, 5),
            ex.edge(5, 6),
            ex.edge(6, 7),
            ex.edge(7, 8),
        ];
        assert!(n.is_path(&detour));
        // Tu¹₃ tail.
        assert!(n.is_path(&[ex.edge(7, 8), ex.edge(8, 9)]));
    }

    #[test]
    fn example3_edge_length() {
        let ex = build();
        assert_eq!(ex.net.edge_length(ex.edge(6, 7)), 200.0);
    }
}
