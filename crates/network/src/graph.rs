//! The immutable CSR road-network graph.

use crate::geom::{Point, Rect};

/// Identifier of a vertex (road intersection or end point, Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex index as a `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a directed edge. Edge ids are CSR positions: the edges of
/// vertex `v` occupy the contiguous range `out_offsets[v]..out_offsets[v+1]`
/// in ascending outgoing-edge-number order, so
/// `EdgeId = out_offsets[v] + (no − 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge index as a `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A resolved view of one directed edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// The edge id.
    pub id: EdgeId,
    /// Source vertex `vs`.
    pub from: VertexId,
    /// Target vertex `ve`.
    pub to: VertexId,
    /// Length of the edge in meters.
    pub length: f64,
    /// 1-based outgoing-edge number of this edge w.r.t. `from`
    /// (Definition 6).
    pub number: u32,
}

/// An immutable directed road network in CSR form.
///
/// Construct via [`crate::NetworkBuilder`].
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    pub(crate) coords: Vec<Point>,
    /// CSR offsets, length `V + 1`.
    pub(crate) out_offsets: Vec<u32>,
    /// Edge targets, length `E`.
    pub(crate) targets: Vec<VertexId>,
    /// Edge sources, length `E` (kept for O(1) reverse lookup).
    pub(crate) sources: Vec<VertexId>,
    /// Edge lengths in meters, length `E`.
    pub(crate) lengths: Vec<f64>,
    pub(crate) max_out_degree: u32,
    /// Lazily computed bounding rectangle — callers like grid
    /// construction and shard routing ask for it per operation, and the
    /// O(V) scan must not be repaid every time.
    pub(crate) bounds: std::sync::OnceLock<Rect>,
}

/// Structural equality over the graph itself; the lazily cached bounding
/// rectangle is derived state and takes no part.
impl PartialEq for RoadNetwork {
    fn eq(&self, other: &Self) -> bool {
        self.coords == other.coords
            && self.out_offsets == other.out_offsets
            && self.targets == other.targets
            && self.sources == other.sources
            && self.lengths == other.lengths
            && self.max_out_degree == other.max_out_degree
    }
}

impl RoadNetwork {
    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.coords.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Maximum out-degree `o` over all vertices — the quantity that sizes
    /// the fixed-width encoding of outgoing-edge numbers.
    #[inline]
    pub fn max_out_degree(&self) -> u32 {
        self.max_out_degree
    }

    /// Average out-degree (Table 6 reports 2.449 / 2.834 / 2.791).
    pub fn avg_out_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            return 0.0;
        }
        self.edge_count() as f64 / self.vertex_count() as f64
    }

    /// All vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.coords.len() as u32).map(VertexId)
    }

    /// All edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.targets.len() as u32).map(EdgeId)
    }

    /// Location of a vertex.
    #[inline]
    pub fn coord(&self, v: VertexId) -> Point {
        self.coords[v.idx()]
    }

    /// Out-degree of a vertex.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.out_offsets[v.idx() + 1] - self.out_offsets[v.idx()]
    }

    /// The out-edges of `v` in outgoing-edge-number order.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        (self.out_offsets[v.idx()]..self.out_offsets[v.idx() + 1]).map(EdgeId)
    }

    /// Resolves `(v, no)` per Definition 6. `no` is 1-based; returns `None`
    /// if `v` has fewer than `no` out-edges.
    #[inline]
    pub fn edge_by_number(&self, v: VertexId, no: u32) -> Option<EdgeId> {
        if no == 0 || no > self.out_degree(v) {
            return None;
        }
        Some(EdgeId(self.out_offsets[v.idx()] + no - 1))
    }

    /// The 1-based outgoing-edge number of `e` w.r.t. its source.
    #[inline]
    pub fn edge_number(&self, e: EdgeId) -> u32 {
        e.0 - self.out_offsets[self.sources[e.idx()].idx()] + 1
    }

    /// Source vertex of an edge.
    #[inline]
    pub fn edge_from(&self, e: EdgeId) -> VertexId {
        self.sources[e.idx()]
    }

    /// Target vertex of an edge.
    #[inline]
    pub fn edge_to(&self, e: EdgeId) -> VertexId {
        self.targets[e.idx()]
    }

    /// Length of an edge in meters.
    #[inline]
    pub fn edge_length(&self, e: EdgeId) -> f64 {
        self.lengths[e.idx()]
    }

    /// Full resolved view of an edge.
    pub fn edge(&self, e: EdgeId) -> EdgeRef {
        EdgeRef {
            id: e,
            from: self.edge_from(e),
            to: self.edge_to(e),
            length: self.edge_length(e),
            number: self.edge_number(e),
        }
    }

    /// Looks up the directed edge `from → to`, if present.
    pub fn find_edge(&self, from: VertexId, to: VertexId) -> Option<EdgeId> {
        self.out_edges(from).find(|&e| self.edge_to(e) == to)
    }

    /// The planar point at network distance `ndist` from the source along
    /// edge `e` (straight-line edge geometry).
    pub fn point_on_edge(&self, e: EdgeId, ndist: f64) -> Point {
        let a = self.coord(self.edge_from(e));
        let b = self.coord(self.edge_to(e));
        let len = self.edge_length(e);
        let t = if len <= 0.0 {
            0.0
        } else {
            (ndist / len).clamp(0.0, 1.0)
        };
        a.lerp(b, t)
    }

    /// The bounding rectangle of all vertices (computed once, cached).
    pub fn bounding_rect(&self) -> Rect {
        *self.bounds.get_or_init(|| {
            let mut rect = self
                .coords
                .first()
                .map(|&p| Rect::point(p))
                .unwrap_or(Rect::new(0.0, 0.0, 0.0, 0.0));
            for &p in &self.coords[1..] {
                rect = rect.union(Rect::point(p));
            }
            rect
        })
    }

    /// Checks that a sequence of edges is a connected path (Definition 4).
    pub fn is_path(&self, edges: &[EdgeId]) -> bool {
        edges
            .windows(2)
            .all(|w| self.edge_to(w[0]) == self.edge_from(w[1]))
    }

    /// Total length of a path in meters (assumes [`Self::is_path`]).
    pub fn path_length(&self, edges: &[EdgeId]) -> f64 {
        edges.iter().map(|&e| self.edge_length(e)).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::NetworkBuilder;

    use super::*;

    fn triangle() -> RoadNetwork {
        // 0 → 1 → 2 → 0 plus 0 → 2.
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(10.0, 0.0);
        let v2 = b.add_vertex(10.0, 10.0);
        b.add_edge(v0, v1);
        b.add_edge(v1, v2);
        b.add_edge(v2, v0);
        b.add_edge(v0, v2);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let n = triangle();
        assert_eq!(n.vertex_count(), 3);
        assert_eq!(n.edge_count(), 4);
        assert_eq!(n.out_degree(VertexId(0)), 2);
        assert_eq!(n.out_degree(VertexId(1)), 1);
        assert_eq!(n.max_out_degree(), 2);
        assert!((n.avg_out_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn edge_numbers_follow_insertion_order() {
        let n = triangle();
        let e01 = n.find_edge(VertexId(0), VertexId(1)).unwrap();
        let e02 = n.find_edge(VertexId(0), VertexId(2)).unwrap();
        assert_eq!(n.edge_number(e01), 1);
        assert_eq!(n.edge_number(e02), 2);
        assert_eq!(n.edge_by_number(VertexId(0), 1), Some(e01));
        assert_eq!(n.edge_by_number(VertexId(0), 2), Some(e02));
        assert_eq!(n.edge_by_number(VertexId(0), 3), None);
        assert_eq!(n.edge_by_number(VertexId(0), 0), None);
    }

    #[test]
    fn edge_geometry() {
        let n = triangle();
        let e01 = n.find_edge(VertexId(0), VertexId(1)).unwrap();
        assert!((n.edge_length(e01) - 10.0).abs() < 1e-12);
        let mid = n.point_on_edge(e01, 5.0);
        assert!((mid.x - 5.0).abs() < 1e-12);
        assert!((mid.y - 0.0).abs() < 1e-12);
        // Clamps beyond the edge.
        let end = n.point_on_edge(e01, 25.0);
        assert!((end.x - 10.0).abs() < 1e-12);
    }

    #[test]
    fn path_checks() {
        let n = triangle();
        let e01 = n.find_edge(VertexId(0), VertexId(1)).unwrap();
        let e12 = n.find_edge(VertexId(1), VertexId(2)).unwrap();
        let e20 = n.find_edge(VertexId(2), VertexId(0)).unwrap();
        assert!(n.is_path(&[e01, e12, e20]));
        assert!(!n.is_path(&[e01, e20]));
        let diag = 200f64.sqrt();
        assert!((n.path_length(&[e01, e12, e20]) - (20.0 + diag)).abs() < 1e-9);
    }

    #[test]
    fn bounding_rect_covers_vertices() {
        let n = triangle();
        let r = n.bounding_rect();
        assert_eq!(r, Rect::new(0.0, 0.0, 10.0, 10.0));
    }

    #[test]
    fn edge_ref_is_consistent() {
        let n = triangle();
        for e in n.edges() {
            let r = n.edge(e);
            assert_eq!(r.id, e);
            assert_eq!(n.edge_by_number(r.from, r.number), Some(e));
        }
    }
}
