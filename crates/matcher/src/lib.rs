//! Probabilistic map-matching: raw GPS trajectories → network-constrained
//! *uncertain* trajectories.
//!
//! The paper relies on probabilistic map-matching ([2, 15] — closed
//! implementations) to turn each raw trajectory into a set of candidate
//! paths with likelihoods (Fig. 1). This crate provides the standard open
//! equivalent: an HMM in the style of Newson–Krumm with
//!
//! * radius-bounded candidate projections per GPS point (emission:
//!   Gaussian in the projection distance),
//! * route-vs-great-circle transition scores (exponential in the detour
//!   excess),
//! * a **k-best Viterbi** pass that extracts the top-K joint candidate
//!   sequences, which become the instances `Tuʲw` with probabilities from
//!   the normalized path likelihoods.

pub mod hmm;
pub mod kbest;

pub use hmm::{Matcher, MatcherConfig};
