//! Generic k-best Viterbi over a candidate lattice.
//!
//! States are `(step, candidate)` pairs; the caller supplies emission
//! scores per candidate and transition scores per candidate pair. The
//! decoder keeps the top `k` scoring partial paths per state and returns
//! the top `k` complete candidate sequences.

/// One ranked partial path ending at a state.
#[derive(Debug, Clone, Copy)]
struct Entry {
    score: f64,
    /// Previous candidate index, and which of its ranked entries.
    back: Option<(usize, usize)>,
}

/// A decoded sequence: one candidate index per step, plus its joint
/// log-score.
#[derive(Debug, Clone, PartialEq)]
pub struct KBestPath {
    /// Candidate index chosen at each step.
    pub choices: Vec<usize>,
    /// Joint log-score.
    pub score: f64,
}

/// Runs k-best Viterbi.
///
/// * `emissions[i][c]` — log-score of candidate `c` at step `i`;
/// * `transition(i, a, b)` — log-score of moving from candidate `a` at
///   step `i` to candidate `b` at step `i+1` (`f64::NEG_INFINITY` to
///   forbid);
/// * `k` — number of ranked paths to keep per state and to return.
pub fn k_best_viterbi(
    emissions: &[Vec<f64>],
    mut transition: impl FnMut(usize, usize, usize) -> f64,
    k: usize,
) -> Vec<KBestPath> {
    let n = emissions.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    // lattice[i][c] = up to k ranked entries.
    let mut lattice: Vec<Vec<Vec<Entry>>> = Vec::with_capacity(n);
    lattice.push(
        emissions[0]
            .iter()
            .map(|&e| {
                vec![Entry {
                    score: e,
                    back: None,
                }]
            })
            .collect(),
    );
    for i in 1..n {
        let prev = &lattice[i - 1];
        let mut level: Vec<Vec<Entry>> = Vec::with_capacity(emissions[i].len());
        for (b, &emit) in emissions[i].iter().enumerate() {
            let mut entries: Vec<Entry> = Vec::new();
            for (a, ranked) in prev.iter().enumerate() {
                let trans = transition(i - 1, a, b);
                if trans == f64::NEG_INFINITY {
                    continue;
                }
                for (r, ent) in ranked.iter().enumerate() {
                    let score = ent.score + trans + emit;
                    if score == f64::NEG_INFINITY {
                        continue;
                    }
                    entries.push(Entry {
                        score,
                        back: Some((a, r)),
                    });
                }
            }
            entries.sort_by(|x, y| y.score.total_cmp(&x.score));
            entries.truncate(k);
            level.push(entries);
        }
        lattice.push(level);
    }
    // Collect the best k terminal entries.
    let mut terminals: Vec<(f64, usize, usize)> = Vec::new();
    for (c, ranked) in lattice[n - 1].iter().enumerate() {
        for (r, ent) in ranked.iter().enumerate() {
            terminals.push((ent.score, c, r));
        }
    }
    terminals.sort_by(|x, y| y.0.total_cmp(&x.0));
    terminals.truncate(k);
    // Backtrack each.
    terminals
        .into_iter()
        .map(|(score, mut c, mut r)| {
            let mut choices = vec![0usize; n];
            for i in (0..n).rev() {
                choices[i] = c;
                if let Some((pc, pr)) = lattice[i][c][r].back {
                    c = pc;
                    r = pr;
                }
            }
            KBestPath { choices, score }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step() {
        let paths = k_best_viterbi(&[vec![0.0, -1.0, -2.0]], |_, _, _| 0.0, 2);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].choices, vec![0]);
        assert_eq!(paths[1].choices, vec![1]);
    }

    #[test]
    fn best_path_dominates() {
        // Two steps, transitions prefer staying on the same index.
        let emissions = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let paths = k_best_viterbi(&emissions, |_, a, b| if a == b { 0.0 } else { -10.0 }, 4);
        assert_eq!(paths.len(), 4);
        // The two stay-paths outrank the two switch-paths.
        assert!(paths[0].choices[0] == paths[0].choices[1]);
        assert!(paths[1].choices[0] == paths[1].choices[1]);
        assert!((paths[0].score - 0.0).abs() < 1e-12);
        assert!((paths[2].score - -10.0).abs() < 1e-12);
    }

    #[test]
    fn forbidden_transitions_prune() {
        let emissions = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        // Only 0→1 allowed.
        let paths = k_best_viterbi(
            &emissions,
            |_, a, b| {
                if a == 0 && b == 1 {
                    -1.0
                } else {
                    f64::NEG_INFINITY
                }
            },
            4,
        );
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].choices, vec![0, 1]);
    }

    #[test]
    fn k_distinct_sequences() {
        // Three steps, two candidates, all transitions equal: 8 possible
        // sequences; ask for 5.
        let emissions = vec![vec![0.0, -0.1]; 3];
        let paths = k_best_viterbi(&emissions, |_, _, _| 0.0, 5);
        assert_eq!(paths.len(), 5);
        // All returned sequences distinct, sorted by score.
        for w in paths.windows(2) {
            assert!(w[0].score >= w[1].score);
            assert_ne!(w[0].choices, w[1].choices);
        }
        assert_eq!(paths[0].choices, vec![0, 0, 0]);
    }

    #[test]
    fn empty_inputs() {
        assert!(k_best_viterbi(&[], |_, _, _| 0.0, 3).is_empty());
        let e = vec![vec![0.0]];
        assert!(k_best_viterbi(&e, |_, _, _| 0.0, 0).is_empty());
    }

    #[test]
    fn dead_end_yields_nothing() {
        // No candidate at step 1 reachable.
        let emissions = vec![vec![0.0], vec![0.0]];
        let paths = k_best_viterbi(&emissions, |_, _, _| f64::NEG_INFINITY, 3);
        assert!(paths.is_empty());
    }
}
