//! The HMM map-matcher.

use utcq_network::path::{shortest_path, ShortestPath};
use utcq_network::spatial::{EdgeCandidate, EdgeIndex};
use utcq_network::{Point, RoadNetwork};
use utcq_traj::{Instance, PathPosition, RawTrajectory, UncertainTrajectory};

/// Matcher tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MatcherConfig {
    /// Candidate search radius in meters.
    pub radius: f64,
    /// Maximum candidates kept per GPS point.
    pub max_candidates: usize,
    /// GPS noise standard deviation (emission model), meters.
    pub sigma: f64,
    /// Transition scale β: score = −|route − great-circle| / β.
    pub beta: f64,
    /// Number of candidate paths (instances) to extract.
    pub k_paths: usize,
    /// Route distance cap as a multiple of the great-circle distance
    /// (plus a slack) — transitions beyond it are forbidden.
    pub max_route_factor: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self {
            radius: 40.0,
            max_candidates: 4,
            sigma: 8.0,
            beta: 20.0,
            k_paths: 8,
            max_route_factor: 3.0,
        }
    }
}

/// A memoized route lookup result: distance plus connector edges, or
/// `None` when unreachable within the cap.
type RouteResult = Option<(f64, Vec<utcq_network::EdgeId>)>;

/// A probabilistic map-matcher over one road network.
pub struct Matcher<'n> {
    net: &'n RoadNetwork,
    index: EdgeIndex,
}

impl<'n> Matcher<'n> {
    /// Builds the matcher (and its edge spatial index).
    pub fn new(net: &'n RoadNetwork, index_cell_size: f64) -> Self {
        Self {
            net,
            index: EdgeIndex::build(net, index_cell_size),
        }
    }

    /// Matches a raw trajectory into an uncertain trajectory with up to
    /// `cfg.k_paths` instances. Returns `None` when no consistent
    /// candidate sequence exists (e.g. all points off-network).
    pub fn match_trajectory(
        &self,
        raw: &RawTrajectory,
        cfg: &MatcherConfig,
    ) -> Option<UncertainTrajectory> {
        if raw.points.len() < 2 {
            return None;
        }
        // Candidate sets; points with no candidates are dropped (the
        // standard HMM-breaking heuristic).
        let mut kept_times = Vec::new();
        let mut candidates: Vec<Vec<EdgeCandidate>> = Vec::new();
        for p in &raw.points {
            let pt = Point::new(p.x, p.y);
            let mut cands = self.index.candidates_within(self.net, pt, cfg.radius);
            if cands.is_empty() {
                cands = self.index.candidates_within(self.net, pt, cfg.radius * 2.0);
            }
            if cands.is_empty() {
                continue;
            }
            cands.truncate(cfg.max_candidates);
            kept_times.push(p.t);
            candidates.push(cands);
        }
        if candidates.len() < 2 {
            return None;
        }
        let kept_points: Vec<Point> = raw
            .points
            .iter()
            .filter(|p| kept_times.contains(&p.t))
            .map(|p| Point::new(p.x, p.y))
            .collect();

        // Emissions: Gaussian in projection distance.
        let emissions: Vec<Vec<f64>> = candidates
            .iter()
            .map(|cs| {
                cs.iter()
                    .map(|c| -(c.dist * c.dist) / (2.0 * cfg.sigma * cfg.sigma))
                    .collect()
            })
            .collect();

        // Transition scoring with memoized routes.
        let mut route_cache: std::collections::HashMap<(usize, usize, usize), RouteResult> =
            std::collections::HashMap::new();
        let mut route = |i: usize, a: usize, b: usize| -> RouteResult {
            let key = (i, a, b);
            if let Some(r) = route_cache.get(&key) {
                return r.clone();
            }
            let ca = candidates[i][a];
            let cb = candidates[i + 1][b];
            let straight = kept_points[i].dist(kept_points[i + 1]);
            let cap = cfg.max_route_factor * straight + 4.0 * cfg.radius;
            let r = route_between(self.net, &ca, &cb, cap);
            route_cache.insert(key, r.clone());
            r
        };
        let trans = |i: usize,
                     a: usize,
                     b: usize,
                     route: &mut dyn FnMut(usize, usize, usize) -> RouteResult|
         -> f64 {
            match route(i, a, b) {
                Some((d, _)) => {
                    let straight = kept_points[i].dist(kept_points[i + 1]);
                    -((d - straight).abs()) / cfg.beta
                }
                None => f64::NEG_INFINITY,
            }
        };

        let paths = crate::kbest::k_best_viterbi(
            &emissions,
            |i, a, b| trans(i, a, b, &mut route),
            cfg.k_paths,
        );
        if paths.is_empty() {
            return None;
        }

        // Materialize instances.
        let mut instances: Vec<(Instance, f64)> = Vec::new();
        'path: for kp in &paths {
            let mut path: Vec<utcq_network::EdgeId> = Vec::new();
            let mut positions: Vec<PathPosition> = Vec::new();
            let first = candidates[0][kp.choices[0]];
            path.push(first.edge);
            positions.push(PathPosition {
                path_idx: 0,
                rd: rd_of(self.net, &first),
            });
            for i in 0..kp.choices.len() - 1 {
                let ca = candidates[i][kp.choices[i]];
                let cb = candidates[i + 1][kp.choices[i + 1]];
                let Some((_, edges)) = route(i, kp.choices[i], kp.choices[i + 1]) else {
                    continue 'path;
                };
                // `edges` is the connector between ca's edge and cb's edge
                // (empty when both lie on the same edge moving forward).
                path.extend(edges.iter().copied());
                if *path.last().unwrap() != cb.edge {
                    path.push(cb.edge);
                }
                positions.push(PathPosition {
                    path_idx: (path.len() - 1) as u32,
                    rd: rd_of(self.net, &cb),
                });
                let _ = ca;
            }
            let inst = Instance {
                path,
                positions,
                prob: 0.0,
            };
            if inst.validate(self.net, kept_times.len()).is_ok() {
                instances.push((inst, kp.score));
            }
        }
        if instances.is_empty() {
            return None;
        }
        // Dedup identical instances (different candidate sequences can
        // collapse to the same path), keeping the best score.
        instances.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut unique: Vec<(Instance, f64)> = Vec::new();
        for (inst, score) in instances {
            if !unique
                .iter()
                .any(|(u, _)| u.path == inst.path && u.positions == inst.positions)
            {
                unique.push((inst, score));
            }
        }
        // Softmax over log-scores.
        let max_score = unique[0].1;
        let weights: Vec<f64> = unique.iter().map(|(_, s)| (s - max_score).exp()).collect();
        let total: f64 = weights.iter().sum();
        let mut out = Vec::with_capacity(unique.len());
        for ((mut inst, _), w) in unique.into_iter().zip(weights) {
            inst.prob = w / total;
            out.push(inst);
        }
        Some(UncertainTrajectory {
            id: 0,
            times: kept_times,
            instances: out,
        })
    }
}

/// Relative distance of a candidate on its edge, clamped off the exact
/// end point.
fn rd_of(net: &RoadNetwork, c: &EdgeCandidate) -> f64 {
    let len = net.edge_length(c.edge);
    if len <= 0.0 {
        0.0
    } else {
        (c.ndist / len).clamp(0.0, 1.0)
    }
}

/// Network route between two on-edge positions: distance plus the
/// connector edges strictly between the two candidate edges.
///
/// Returns `None` when no route exists within `cap` meters, or when the
/// movement would go backwards along a shared edge.
fn route_between(
    net: &RoadNetwork,
    a: &EdgeCandidate,
    b: &EdgeCandidate,
    cap: f64,
) -> Option<(f64, Vec<utcq_network::EdgeId>)> {
    if a.edge == b.edge && b.ndist >= a.ndist {
        return Some((b.ndist - a.ndist, Vec::new()));
    }
    let from = net.edge_to(a.edge);
    let to = net.edge_from(b.edge);
    let tail = net.edge_length(a.edge) - a.ndist;
    if from == to {
        let d = tail + b.ndist;
        return (d <= cap).then_some((d, Vec::new()));
    }
    let sp: ShortestPath = shortest_path(net, from, to, cap)?;
    let d = tail + sp.dist + b.ndist;
    (d <= cap).then_some((d, sp.edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use utcq_datagen::instances::base_positions;
    use utcq_datagen::raw::observe;
    use utcq_datagen::route::random_route;
    use utcq_network::gen::{grid_city, GridCityConfig};

    fn ground_truth(
        net: &RoadNetwork,
        rng: &mut StdRng,
        n_edges: usize,
        interval: i64,
    ) -> (Instance, Vec<i64>) {
        let route = random_route(net, rng, n_edges, 30).unwrap();
        let length = net.path_length(&route);
        let n = ((length / (12.0 * interval as f64)).round() as usize).clamp(3, 40);
        let times: Vec<i64> = (0..n as i64).map(|i| 1000 + i * interval).collect();
        let positions = base_positions(net, rng, &route, &times);
        (
            Instance {
                path: route,
                positions,
                prob: 1.0,
            },
            times,
        )
    }

    #[test]
    fn clean_observations_recover_the_route() {
        let mut rng = StdRng::seed_from_u64(41);
        let net = grid_city(&GridCityConfig::tiny(), &mut rng);
        let matcher = Matcher::new(&net, 100.0);
        let mut recovered = 0;
        let total = 10;
        for _ in 0..total {
            let (truth, times) = ground_truth(&net, &mut rng, 8, 10);
            let raw = observe(&net, &truth, &times, 1.0, &mut rng);
            let Some(tu) = matcher.match_trajectory(&raw, &MatcherConfig::default()) else {
                continue;
            };
            assert_eq!(tu.validate(&net), Ok(()));
            let top = tu.top_instance();
            // Count edge overlap with the truth.
            let overlap = top.path.iter().filter(|e| truth.path.contains(e)).count();
            if overlap * 10 >= truth.path.len() * 7 {
                recovered += 1;
            }
        }
        assert!(recovered >= 7, "only {recovered}/{total} recovered");
    }

    #[test]
    fn noisy_observations_yield_multiple_instances() {
        let mut rng = StdRng::seed_from_u64(43);
        let net = grid_city(&GridCityConfig::tiny(), &mut rng);
        let matcher = Matcher::new(&net, 100.0);
        let mut multi = 0;
        let mut matched = 0;
        for _ in 0..12 {
            let (truth, times) = ground_truth(&net, &mut rng, 10, 30);
            let raw = observe(&net, &truth, &times, 15.0, &mut rng);
            if let Some(tu) = matcher.match_trajectory(&raw, &MatcherConfig::default()) {
                matched += 1;
                assert_eq!(tu.validate(&net), Ok(()));
                if tu.instance_count() > 1 {
                    multi += 1;
                }
                let sum: f64 = tu.instances.iter().map(|i| i.prob).sum();
                assert!((sum - 1.0).abs() < 1e-9);
            }
        }
        assert!(matched >= 8, "matched {matched}/12");
        assert!(multi >= 4, "only {multi} ambiguous matches");
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(44);
        let net = grid_city(&GridCityConfig::tiny(), &mut rng);
        let matcher = Matcher::new(&net, 100.0);
        // Too short.
        let raw = RawTrajectory {
            points: vec![utcq_traj::RawPoint {
                x: 0.0,
                y: 0.0,
                t: 0,
            }],
        };
        assert!(matcher
            .match_trajectory(&raw, &MatcherConfig::default())
            .is_none());
        // All points far off the network.
        let raw = RawTrajectory {
            points: (0..5)
                .map(|i| utcq_traj::RawPoint {
                    x: 1e7,
                    y: 1e7,
                    t: i * 10,
                })
                .collect(),
        };
        assert!(matcher
            .match_trajectory(&raw, &MatcherConfig::default())
            .is_none());
    }

    #[test]
    fn matched_output_compresses() {
        // End-to-end: matcher output feeds the UTCQ compressor's input
        // contract (validated uncertain trajectories).
        let mut rng = StdRng::seed_from_u64(45);
        let net = grid_city(&GridCityConfig::tiny(), &mut rng);
        let matcher = Matcher::new(&net, 100.0);
        let (truth, times) = ground_truth(&net, &mut rng, 9, 20);
        let raw = observe(&net, &truth, &times, 10.0, &mut rng);
        let tu = matcher
            .match_trajectory(&raw, &MatcherConfig::default())
            .expect("match");
        assert_eq!(tu.validate(&net), Ok(()));
        assert!(tu.times.len() >= 3);
    }
}
