//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this path crate. It provides [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`] over half-open and inclusive
//! integer/float ranges, plus [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`]. The generator is xoshiro256++ with a
//! SplitMix64 seeder — deterministic per seed, which is all the synthetic
//! data generators and tests rely on (they never assume the exact stream
//! of the upstream crate).

use std::ops::{Range, RangeInclusive};

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform value in `[start, end)` or `[start, end]` per `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

/// A range argument to [`Rng::gen_range`]. Blanket impls over
/// [`SampleUniform`] keep type inference identical to upstream `rand`
/// (one impl per range shape, so the element type unifies freely).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range(rng, start, end, true)
    }
}

macro_rules! int_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    assert!(start <= end, "empty range in gen_range");
                    (end as i128 - start as i128) as u128 + 1
                } else {
                    assert!(start < end, "empty range in gen_range");
                    (end as i128 - start as i128) as u128
                };
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(start <= end, "empty range in gen_range");
                } else {
                    assert!(start < end, "empty range in gen_range");
                }
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_uniform_impl!(f32, f64);

/// Uniform value in `0..span` (span > 0) with rejection sampling to avoid
/// modulo bias.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // One u64 suffices for every range this workspace uses; fall back to
    // two words only for spans beyond 2^64.
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    }
    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    v % span
}

/// The raw generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` stand-in.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn small_int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn generic_fn_over_unsized_rng() {
        fn roll<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(1u32..=6)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = roll(&mut rng);
        assert!((1..=6).contains(&v));
    }
}
