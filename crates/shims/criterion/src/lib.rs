//! Offline shim for the subset of the `criterion` 0.5 API this workspace
//! uses, so the benches under `crates/bench/benches/` build and run
//! without network access.
//!
//! The build environment cannot fetch crates.io, so the workspace
//! resolves `criterion` to this path crate. It provides [`Criterion`]
//! with [`bench_function`](Criterion::bench_function) and
//! [`benchmark_group`](Criterion::benchmark_group), [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timing is deliberately simple — warm up, then run batches
//! until a target measurement time elapses, report the mean — which is
//! plenty to track relative regressions in CI and to feed the
//! `BENCH_queries.json` perf trajectory.
//!
//! Environment knobs:
//!
//! * `UTCQ_BENCH_SMOKE=1` — one warmup + one measured iteration per
//!   bench: the CI smoke mode that only proves the harness still runs;
//! * `UTCQ_BENCH_MS=<millis>` — target measurement time per bench
//!   (default 200 ms);
//! * `UTCQ_BENCH_JSON=<path>` — append one JSON line per bench
//!   (`{"name": …, "ns_per_iter": …, "iters": …}`) for machine
//!   consumption.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// An opaque value barrier: prevents the optimizer from deleting a
/// benchmarked computation. Same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function` or plain function name).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Number of measured iterations.
    pub iters: u64,
}

/// Shim of `criterion::Criterion`: runs benchmarks immediately and
/// prints one line per result.
pub struct Criterion {
    results: Vec<Measurement>,
    smoke: bool,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::var("UTCQ_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
        let target_ms = std::env::var("UTCQ_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        Self {
            results: Vec::new(),
            smoke,
            target: Duration::from_millis(target_ms),
        }
    }
}

impl Criterion {
    /// Compatibility no-op (the real crate parses CLI filters here; the
    /// shim runs everything).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Measures one benchmark closure. Takes `&str` like the real
    /// criterion 0.5 `bench_function`, so bench sources stay drop-in
    /// compatible if the shim is ever swapped for the real crate.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.to_string();
        let mut b = Bencher {
            smoke: self.smoke,
            target: self.target,
            measured: None,
        };
        routine(&mut b);
        let (ns_per_iter, iters) = b.measured.unwrap_or((0.0, 0));
        println!("bench {name:<50} {ns_per_iter:>14.1} ns/iter  ({iters} iters)");
        self.results.push(Measurement {
            name,
            ns_per_iter,
            iters,
        });
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Writes results as JSON lines to `UTCQ_BENCH_JSON` when set.
    /// Called by [`criterion_main!`]; harmless to call twice.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("UTCQ_BENCH_JSON") else {
            return;
        };
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            eprintln!("criterion shim: cannot open {path}");
            return;
        };
        for m in &self.results {
            let _ = writeln!(
                f,
                "{{\"name\":\"{}\",\"ns_per_iter\":{:.1},\"iters\":{}}}",
                m.name.replace('"', "'"),
                m.ns_per_iter,
                m.iters
            );
        }
    }
}

/// Shim of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op (the shim sizes runs by wall-clock, not
    /// sample count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measures one parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        self.c.bench_function(&full, |b| routine(b, input));
        self
    }

    /// Closes the group (no-op; results were recorded eagerly).
    pub fn finish(self) {}
}

/// Shim of `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A two-part id rendered as `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

/// Shim of `criterion::Bencher`: measures the closure passed to
/// [`Bencher::iter`].
pub struct Bencher {
    smoke: bool,
    target: Duration,
    measured: Option<(f64, u64)>,
}

impl Bencher {
    /// Times `routine`, storing mean ns/iteration.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warmup: one call always (pays lazy-init costs), more only in
        // full mode.
        black_box(routine());
        if self.smoke {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.measured = Some((dt.as_nanos() as f64, 1));
            return;
        }
        // Calibrate: how many iterations fit in ~1/10 of the target?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = ((self.target.as_nanos() / 10 / once.as_nanos()).clamp(1, 1 << 20)) as u64;
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < self.target {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            spent += t.elapsed();
            iters += batch;
        }
        self.measured = Some((spent.as_nanos() as f64 / iters as f64, iters));
    }
}

/// Shim of `criterion::criterion_group!`: defines a function running the
/// listed benchmarks against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.finalize();
        }
    };
}

/// Shim of `criterion::criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_measurement() {
        std::env::set_var("UTCQ_BENCH_SMOKE", "1");
        let mut c = Criterion::default();
        c.bench_function("shim/self_test", |b| b.iter(|| black_box(2 + 2)));
        assert_eq!(c.results().len(), 1);
        let m = &c.results()[0];
        assert_eq!(m.name, "shim/self_test");
        assert!(m.iters >= 1);
    }

    #[test]
    fn groups_prefix_names() {
        std::env::set_var("UTCQ_BENCH_SMOKE", "1");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::new("f", "x"), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.results()[0].name, "grp/f/x");
    }
}
