//! Ground-truth route generation: biased random walks over the network.

use rand::Rng;
use utcq_network::{EdgeId, RoadNetwork, VertexId};

/// Generates a route of roughly `target_edges` edges.
///
/// The walk starts at a random vertex, avoids immediate U-turns and edge
/// revisits where possible, and retries from a fresh start when it strands
/// early. Returns `None` when the network cannot support a walk of at
/// least 2 edges after `max_tries` attempts.
pub fn random_route<R: Rng + ?Sized>(
    net: &RoadNetwork,
    rng: &mut R,
    target_edges: usize,
    max_tries: usize,
) -> Option<Vec<EdgeId>> {
    let target = target_edges.max(2);
    let mut best: Option<Vec<EdgeId>> = None;
    for _ in 0..max_tries {
        let route = walk(net, rng, target);
        if route.len() >= target {
            return Some(route);
        }
        if route.len() >= 2 && best.as_ref().is_none_or(|b| route.len() > b.len()) {
            best = Some(route);
        }
    }
    best
}

fn walk<R: Rng + ?Sized>(net: &RoadNetwork, rng: &mut R, target: usize) -> Vec<EdgeId> {
    let v_count = net.vertex_count();
    if v_count == 0 {
        return Vec::new();
    }
    let mut cur = VertexId(rng.gen_range(0..v_count as u32));
    // Find a start with outgoing edges.
    for _ in 0..16 {
        if net.out_degree(cur) > 0 {
            break;
        }
        cur = VertexId(rng.gen_range(0..v_count as u32));
    }
    let mut route = Vec::with_capacity(target);
    let mut visited = std::collections::HashSet::new();
    let mut prev_vertex: Option<VertexId> = None;
    while route.len() < target {
        let choices: Vec<EdgeId> = net.out_edges(cur).collect();
        if choices.is_empty() {
            break;
        }
        // Prefer fresh, non-reversing edges; fall back progressively.
        let fresh: Vec<EdgeId> = choices
            .iter()
            .copied()
            .filter(|e| Some(net.edge_to(*e)) != prev_vertex && !visited.contains(e))
            .collect();
        let pool = if !fresh.is_empty() {
            fresh
        } else {
            let non_rev: Vec<EdgeId> = choices
                .iter()
                .copied()
                .filter(|e| Some(net.edge_to(*e)) != prev_vertex)
                .collect();
            if non_rev.is_empty() {
                break; // only a U-turn remains: stop rather than oscillate
            }
            non_rev
        };
        let e = pool[rng.gen_range(0..pool.len())];
        visited.insert(e);
        prev_vertex = Some(cur);
        cur = net.edge_to(e);
        route.push(e);
    }
    route
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use utcq_network::gen::{grid_city, line, GridCityConfig};

    #[test]
    fn routes_are_connected_paths() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = grid_city(&GridCityConfig::tiny(), &mut rng);
        for _ in 0..50 {
            let r = random_route(&net, &mut rng, 12, 20).expect("route");
            assert!(r.len() >= 2);
            assert!(net.is_path(&r));
        }
    }

    #[test]
    fn routes_hit_target_on_rich_networks() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = GridCityConfig {
            p_remove: 0.0,
            ..GridCityConfig::tiny()
        };
        let net = grid_city(&cfg, &mut rng);
        let mut hits = 0;
        for _ in 0..20 {
            let r = random_route(&net, &mut rng, 10, 20).unwrap();
            if r.len() == 10 {
                hits += 1;
            }
        }
        assert!(hits >= 15, "only {hits}/20 walks reached the target length");
    }

    #[test]
    fn line_network_walks_do_not_uturn() {
        let net = line(20, 100.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let r = random_route(&net, &mut rng, 6, 30).expect("route");
            assert!(net.is_path(&r));
            // No immediate reversals: consecutive edges never swap
            // endpoints.
            for w in r.windows(2) {
                assert!(
                    !(net.edge_from(w[0]) == net.edge_to(w[1])
                        && net.edge_to(w[0]) == net.edge_from(w[1])),
                    "u-turn in route"
                );
            }
        }
    }

    #[test]
    fn empty_network_yields_none() {
        let net = utcq_network::NetworkBuilder::new().build();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_route(&net, &mut rng, 5, 5).is_none());
    }
}
