//! Dataset transforms used by the experiment sweeps.
//!
//! Figure 6 varies the *number of instances* (60–100 % of each
//! trajectory's instances, over trajectories with ≥ 20 instances);
//! Figure 7 varies the *trajectory length* (20–100 % of samples, over
//! trajectories with ≥ 20 edges); Figure 12 varies the *data size*
//! (20–100 % of the trajectories).

use utcq_traj::{Dataset, UncertainTrajectory};

/// Keeps only trajectories with at least `k` instances (Fig. 6 filter).
pub fn filter_min_instances(ds: &Dataset, k: usize) -> Dataset {
    Dataset {
        name: ds.name.clone(),
        default_interval: ds.default_interval,
        trajectories: ds
            .trajectories
            .iter()
            .filter(|t| t.instance_count() >= k)
            .cloned()
            .collect(),
    }
}

/// Keeps only trajectories whose most-probable instance has at least `k`
/// path edges (Fig. 7 filter).
pub fn filter_min_edges(ds: &Dataset, k: usize) -> Dataset {
    Dataset {
        name: ds.name.clone(),
        default_interval: ds.default_interval,
        trajectories: ds
            .trajectories
            .iter()
            .filter(|t| t.top_instance().path.len() >= k)
            .cloned()
            .collect(),
    }
}

/// Keeps the `frac` most-probable instances of each trajectory (at least
/// one), renormalizing probabilities.
pub fn keep_instance_fraction(ds: &Dataset, frac: f64) -> Dataset {
    let mut out = ds.clone();
    for tu in &mut out.trajectories {
        let keep =
            ((tu.instance_count() as f64 * frac).ceil() as usize).clamp(1, tu.instance_count());
        tu.instances.sort_by(|a, b| b.prob.total_cmp(&a.prob));
        tu.instances.truncate(keep);
        let total: f64 = tu.instances.iter().map(|i| i.prob).sum();
        for inst in &mut tu.instances {
            inst.prob /= total;
        }
    }
    out
}

/// Truncates each trajectory to its first `frac` samples (at least two),
/// cutting every instance's path at the edge of its last kept sample.
pub fn keep_length_fraction(ds: &Dataset, frac: f64) -> Dataset {
    let mut out = ds.clone();
    for tu in &mut out.trajectories {
        let keep = ((tu.times.len() as f64 * frac).round() as usize).clamp(2, tu.times.len());
        truncate_trajectory(tu, keep);
    }
    out
}

/// Truncates one trajectory to its first `keep` samples.
pub fn truncate_trajectory(tu: &mut UncertainTrajectory, keep: usize) {
    let keep = keep.clamp(2, tu.times.len());
    if keep == tu.times.len() {
        return;
    }
    tu.times.truncate(keep);
    for inst in &mut tu.instances {
        inst.positions.truncate(keep);
        let last_edge = inst.positions.last().expect("keep >= 2").path_idx as usize;
        inst.path.truncate(last_edge + 1);
    }
    // Truncation can make formerly distinct instances identical; keep the
    // first of each equivalence class and fold probabilities into it.
    let mut kept: Vec<usize> = Vec::new();
    let mut folded: Vec<f64> = Vec::new();
    for i in 0..tu.instances.len() {
        let mut dup_of = None;
        for (slot, &j) in kept.iter().enumerate() {
            if tu.instances[j].path == tu.instances[i].path
                && tu.instances[j].positions == tu.instances[i].positions
            {
                dup_of = Some(slot);
                break;
            }
        }
        match dup_of {
            Some(slot) => folded[slot] += tu.instances[i].prob,
            None => {
                kept.push(i);
                folded.push(tu.instances[i].prob);
            }
        }
    }
    let mut new_instances = Vec::with_capacity(kept.len());
    for (&i, &p) in kept.iter().zip(&folded) {
        let mut inst = tu.instances[i].clone();
        inst.prob = p;
        new_instances.push(inst);
    }
    let total: f64 = new_instances.iter().map(|i| i.prob).sum();
    for inst in &mut new_instances {
        inst.prob /= total;
    }
    tu.instances = new_instances;
}

/// Keeps the first `frac` of the trajectories (Fig. 12 data-size sweep).
pub fn subset_fraction(ds: &Dataset, frac: f64) -> Dataset {
    let keep =
        ((ds.trajectories.len() as f64 * frac).round() as usize).clamp(0, ds.trajectories.len());
    Dataset {
        name: ds.name.clone(),
        default_interval: ds.default_interval,
        trajectories: ds.trajectories[..keep].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::profile;

    fn tiny_ds() -> (utcq_network::RoadNetwork, Dataset) {
        generate(&profile::tiny(), 30, 5)
    }

    #[test]
    fn instance_fraction_keeps_validity() {
        let (net, ds) = tiny_ds();
        for frac in [0.2, 0.5, 0.8, 1.0] {
            let cut = keep_instance_fraction(&ds, frac);
            assert_eq!(cut.validate(&net), Ok(()), "frac={frac}");
            for (a, b) in cut.trajectories.iter().zip(&ds.trajectories) {
                assert!(a.instance_count() <= b.instance_count());
                assert!(a.instance_count() >= 1);
            }
        }
    }

    #[test]
    fn length_fraction_keeps_validity() {
        let (net, ds) = tiny_ds();
        for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let cut = keep_length_fraction(&ds, frac);
            assert_eq!(cut.validate(&net), Ok(()), "frac={frac}");
            for (a, b) in cut.trajectories.iter().zip(&ds.trajectories) {
                assert!(a.times.len() <= b.times.len());
                assert!(a.times.len() >= 2);
            }
        }
    }

    #[test]
    fn full_fraction_is_identity() {
        let (_, ds) = tiny_ds();
        let same = keep_length_fraction(&ds, 1.0);
        assert_eq!(same.trajectories, ds.trajectories);
        let same = keep_instance_fraction(&ds, 1.0);
        // keep_instance_fraction sorts by probability; counts must match.
        for (a, b) in same.trajectories.iter().zip(&ds.trajectories) {
            assert_eq!(a.instance_count(), b.instance_count());
        }
    }

    #[test]
    fn filters_apply_thresholds() {
        let (_, ds) = tiny_ds();
        let f = filter_min_instances(&ds, 4);
        assert!(f.trajectories.iter().all(|t| t.instance_count() >= 4));
        let f = filter_min_edges(&ds, 10);
        assert!(f
            .trajectories
            .iter()
            .all(|t| t.top_instance().path.len() >= 10));
    }

    #[test]
    fn subset_takes_prefix() {
        let (_, ds) = tiny_ds();
        let half = subset_fraction(&ds, 0.5);
        assert_eq!(half.trajectories.len(), 15);
        assert_eq!(half.trajectories[0], ds.trajectories[0]);
    }

    #[test]
    fn truncation_folds_duplicate_instances() {
        let (net, ds) = tiny_ds();
        let cut = keep_length_fraction(&ds, 0.2);
        for tu in &cut.trajectories {
            let sum: f64 = tu.instances.iter().map(|i| i.prob).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            for a in 0..tu.instances.len() {
                for b in a + 1..tu.instances.len() {
                    assert!(
                        tu.instances[a].path != tu.instances[b].path
                            || tu.instances[a].positions != tu.instances[b].positions,
                        "duplicate instances survived truncation"
                    );
                }
            }
        }
        assert_eq!(cut.validate(&net), Ok(()));
    }
}
