//! Synthetic NCUT dataset generation for the UTCQ reproduction.
//!
//! The paper's Denmark / Chengdu / Hangzhou taxi datasets are proprietary;
//! this crate generates statistically equivalent stand-ins. Each
//! [`profile::DatasetProfile`] pins the distributions the paper's
//! algorithms are sensitive to — default sample interval and its deviation
//! mix (Fig. 4a), instances per trajectory and edges per instance
//! (Table 5), and intra-trajectory path similarity (Fig. 4b) — and
//! [`generate::generate`] produces a road network plus a valid dataset
//! from them, deterministically per seed.
//!
//! [`transform`] hosts the sweeps the evaluation needs (instance-count,
//! length, and data-size fractions), and [`raw`] synthesizes noisy GPS
//! observations for the map-matching pipeline.

pub mod generate;
pub mod instances;
pub mod profile;
pub mod raw;
pub mod route;
pub mod times;
pub mod transform;

pub use generate::{generate, generate_network, generate_on_network, GenOptions};
pub use profile::DatasetProfile;
