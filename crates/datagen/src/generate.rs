//! End-to-end synthetic dataset generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use utcq_network::gen::grid_city;
use utcq_network::RoadNetwork;
use utcq_traj::Dataset;

use crate::instances::{build_uncertain, VariantConfig};
use crate::profile::DatasetProfile;
use crate::route::random_route;
use crate::times::time_sequence;

/// Options for [`generate_on_network`].
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Number of uncertain trajectories to generate.
    pub n_trajectories: usize,
    /// RNG seed (datasets are deterministic per seed).
    pub seed: u64,
    /// Lower clamp on the sampled instance count (the paper's Fig. 6
    /// filters trajectories with ≥ 20 instances; generating with
    /// `min_instances = 20` avoids discarding work).
    pub min_instances: usize,
    /// Upper clamp on samples per trajectory (the paper assumes at most
    /// 2¹² timestamps).
    pub max_samples: usize,
    /// Variant-mutation knobs.
    pub variants: VariantConfig,
}

impl Default for GenOptions {
    fn default() -> Self {
        Self {
            n_trajectories: 100,
            seed: 0xC0FFEE,
            min_instances: 1,
            max_samples: 512,
            variants: VariantConfig::default(),
        }
    }
}

/// Samples a count from a shifted-exponential with the given mean — a
/// heavy-tailed distribution matching the paper's wide instance/length
/// ranges (Table 5: e.g. 2–434 instances around a mean of 9).
fn sample_count<R: Rng + ?Sized>(rng: &mut R, mean: f64, min: usize, max: usize) -> usize {
    let min_f = min as f64;
    let excess = (mean - min_f).max(0.0);
    let u: f64 = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
    let sampled = min_f + (-(1.0 - u).ln()) * excess;
    (sampled.round() as usize).clamp(min, max)
}

/// Generates the road network for a profile.
pub fn generate_network(profile: &DatasetProfile, seed: u64) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x006E_6574_776F_726B); // "network"
    grid_city(&profile.network, &mut rng)
}

/// Generates a dataset on an existing network.
pub fn generate_on_network(
    net: &RoadNetwork,
    profile: &DatasetProfile,
    opts: &GenOptions,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut trajectories = Vec::with_capacity(opts.n_trajectories);
    let mut id = 0u64;
    let mut failures = 0usize;
    while trajectories.len() < opts.n_trajectories && failures < opts.n_trajectories * 4 + 64 {
        let target_edges = sample_count(&mut rng, profile.avg_edges, 2, profile.max_edges);
        let Some(route) = random_route(net, &mut rng, target_edges, 24) else {
            failures += 1;
            continue;
        };
        // Sample count from route length, nominal interval, and speed.
        let length = net.path_length(&route);
        let n = ((length / (profile.speed_mps * profile.default_interval as f64)).round() as usize)
            .clamp(2, opts.max_samples);
        // Start time keeps the whole trajectory within one day.
        let worst_span = (n as i64) * profile.default_interval * 3 + 400;
        let t0 = rng.gen_range(0..(86_400 - worst_span).max(1));
        let times = time_sequence(
            &mut rng,
            &profile.deviations,
            t0,
            n,
            profile.default_interval,
        );
        let k = sample_count(
            &mut rng,
            profile.avg_instances,
            opts.min_instances.max(1),
            profile.max_instances,
        );
        let tu = build_uncertain(net, &mut rng, id, route, times, k, &opts.variants);
        id += 1;
        trajectories.push(tu);
    }
    Dataset {
        name: profile.name.to_string(),
        default_interval: profile.default_interval,
        trajectories,
    }
}

/// One-call generation: network + dataset.
pub fn generate(
    profile: &DatasetProfile,
    n_trajectories: usize,
    seed: u64,
) -> (RoadNetwork, Dataset) {
    let net = generate_network(profile, seed);
    let ds = generate_on_network(
        &net,
        profile,
        &GenOptions {
            n_trajectories,
            seed,
            ..GenOptions::default()
        },
    );
    (net, ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile;

    #[test]
    fn generated_dataset_is_valid() {
        let (net, ds) = generate(&profile::tiny(), 40, 1);
        assert_eq!(ds.trajectories.len(), 40);
        assert_eq!(ds.validate(&net), Ok(()));
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = generate(&profile::tiny(), 10, 99);
        let (_, b) = generate(&profile::tiny(), 10, 99);
        assert_eq!(a.trajectories, b.trajectories);
    }

    #[test]
    fn different_seeds_differ() {
        let (_, a) = generate(&profile::tiny(), 10, 1);
        let (_, b) = generate(&profile::tiny(), 10, 2);
        assert_ne!(a.trajectories, b.trajectories);
    }

    #[test]
    fn sample_count_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let k = sample_count(&mut rng, 9.0, 2, 64);
            assert!((2..=64).contains(&k));
        }
        // Mean in the right ballpark.
        let mean: f64 = (0..4000)
            .map(|_| sample_count(&mut rng, 9.0, 1, 1000) as f64)
            .sum::<f64>()
            / 4000.0;
        assert!((mean - 9.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn min_instances_is_enforced_as_target() {
        let net = generate_network(&profile::tiny(), 3);
        let ds = generate_on_network(
            &net,
            &profile::tiny(),
            &GenOptions {
                n_trajectories: 12,
                seed: 3,
                min_instances: 6,
                ..GenOptions::default()
            },
        );
        // Mutation search may fall short of the target occasionally, but
        // most trajectories should reach ≥ 6 instances.
        let reached = ds
            .trajectories
            .iter()
            .filter(|t| t.instance_count() >= 6)
            .count();
        assert!(reached >= 8, "only {reached}/12 reached the target");
    }

    #[test]
    fn times_fit_within_a_day() {
        let (_, ds) = generate(&profile::tiny(), 30, 7);
        for tu in &ds.trajectories {
            assert!(*tu.times.first().unwrap() >= 0);
            assert!(*tu.times.last().unwrap() < 86_400);
        }
    }
}
