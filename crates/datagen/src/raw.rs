//! Raw GPS synthesis: noisy observations of a moving object.
//!
//! Feeds the probabilistic map-matcher (`utcq-matcher`): a ground-truth
//! instance is sampled into planar points with Gaussian position noise,
//! mimicking the off-road GPS fixes of the paper's Figure 1.

use rand::Rng;
use utcq_network::RoadNetwork;
use utcq_traj::{Instance, RawPoint, RawTrajectory};

/// A standard-normal sample via Box–Muller (keeps the dependency set to
/// plain `rand`).
pub fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Observes an instance as a raw trajectory with isotropic Gaussian noise
/// of standard deviation `sigma` meters.
pub fn observe(
    net: &RoadNetwork,
    inst: &Instance,
    times: &[i64],
    sigma: f64,
    rng: &mut (impl Rng + ?Sized),
) -> RawTrajectory {
    let points = times
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let loc = inst.location(net, i);
            let p = net.point_on_edge(loc.edge, loc.ndist);
            RawPoint {
                x: p.x + sigma * gauss(rng),
                y: p.y + sigma * gauss(rng),
                t,
            }
        })
        .collect();
    RawTrajectory { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::base_positions;
    use crate::route::random_route;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use utcq_network::gen::{grid_city, GridCityConfig};

    #[test]
    fn gauss_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn observation_stays_near_path() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = grid_city(&GridCityConfig::tiny(), &mut rng);
        let route = random_route(&net, &mut rng, 8, 20).unwrap();
        let times: Vec<i64> = (0..10).map(|i| i * 15).collect();
        let positions = base_positions(&net, &mut rng, &route, &times);
        let inst = Instance {
            path: route,
            positions,
            prob: 1.0,
        };
        let raw = observe(&net, &inst, &times, 5.0, &mut rng);
        assert_eq!(raw.points.len(), times.len());
        for (i, p) in raw.points.iter().enumerate() {
            let loc = inst.location(&net, i);
            let truth = net.point_on_edge(loc.edge, loc.ndist);
            let err = ((p.x - truth.x).powi(2) + (p.y - truth.y).powi(2)).sqrt();
            assert!(err < 40.0, "gps noise implausibly large: {err}");
            assert_eq!(p.t, times[i]);
        }
    }

    #[test]
    fn zero_sigma_is_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = grid_city(&GridCityConfig::tiny(), &mut rng);
        let route = random_route(&net, &mut rng, 6, 20).unwrap();
        let times: Vec<i64> = (0..6).map(|i| i * 15).collect();
        let positions = base_positions(&net, &mut rng, &route, &times);
        let inst = Instance {
            path: route,
            positions,
            prob: 1.0,
        };
        let raw = observe(&net, &inst, &times, 0.0, &mut rng);
        for (i, p) in raw.points.iter().enumerate() {
            let loc = inst.location(&net, i);
            let truth = net.point_on_edge(loc.edge, loc.ndist);
            assert!((p.x - truth.x).abs() < 1e-12);
            assert!((p.y - truth.y).abs() < 1e-12);
        }
    }
}
