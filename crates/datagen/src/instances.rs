//! Uncertain-instance synthesis by constrained path perturbation.
//!
//! Probabilistic map-matching turns one raw trajectory into several similar
//! network paths (Fig. 1 of the paper). For large-scale experiments we
//! synthesize that output directly: a ground-truth route plus variants that
//! differ by *local detours* (the low-sampling-rate ambiguity), *endpoint
//! extensions / start truncations* (boundary ambiguity, incl. the paper's
//! `Tu¹₃`-style tail change and start-vertex changes), and *relative
//! distance jitter* (position inaccuracy). The mutation rates are tuned so
//! intra-trajectory edit distances match Fig. 4b (mostly ≤ 5).

use rand::Rng;
use utcq_network::path::shortest_path_avoiding;
use utcq_network::{EdgeId, RoadNetwork};
use utcq_traj::interp::position_at_distance;
use utcq_traj::{Instance, PathPosition, UncertainTrajectory};

/// Mutation-rate knobs for variant generation.
#[derive(Debug, Clone, Copy)]
pub struct VariantConfig {
    /// Maximum number of consecutive edges replaced by one detour.
    pub detour_span_max: usize,
    /// Probability a variant receives a second mutation.
    pub p_second_mutation: f64,
    /// Relative odds of each mutation kind: detour.
    pub w_detour: f64,
    /// Relative odds: extend the route tail by one edge.
    pub w_extend: f64,
    /// Relative odds: truncate the first edge (changes the start vertex).
    pub w_start_shift: f64,
    /// Relative odds: jitter one sample's relative distance.
    pub w_rd_jitter: f64,
}

impl Default for VariantConfig {
    fn default() -> Self {
        // Position inaccuracy (rd jitter on an unchanged path) is the
        // most common map-matching ambiguity in the paper's data — it is
        // what makes most instances share `E`/`T'` with their reference
        // and most relative distances coincide (§4.2's D observation).
        // Path-level ambiguity (detours/extensions) is rarer.
        Self {
            detour_span_max: 3,
            p_second_mutation: 0.25,
            w_detour: 0.38,
            w_extend: 0.12,
            w_start_shift: 0.02,
            w_rd_jitter: 0.48,
        }
    }
}

/// Positions of `n` samples along `route`, moving at constant speed from a
/// random offset on the first edge to a random offset on the last edge.
pub fn base_positions<R: Rng + ?Sized>(
    net: &RoadNetwork,
    rng: &mut R,
    route: &[EdgeId],
    times: &[i64],
) -> Vec<PathPosition> {
    assert!(route.len() >= 2 && times.len() >= 2);
    let len0 = net.edge_length(route[0]);
    let last_len = net.edge_length(*route.last().unwrap());
    let total: f64 = net.path_length(route);
    let d0 = rng.gen::<f64>() * 0.9 * len0;
    let d_last = total - rng.gen::<f64>() * 0.9 * last_len;
    let t0 = times[0] as f64;
    let t_span = (*times.last().unwrap() - times[0]) as f64;
    times
        .iter()
        .map(|&t| {
            let f = (t as f64 - t0) / t_span;
            position_at_distance(net, route, d0 + f * (d_last - d0))
        })
        .collect()
}

/// One candidate variant: a mutated `(route, positions)` pair.
type Candidate = (Vec<EdgeId>, Vec<PathPosition>);

/// Replaces a random span of the route with a network detour and remaps
/// the affected sample positions fractionally onto it.
fn mutate_detour<R: Rng + ?Sized>(
    net: &RoadNetwork,
    rng: &mut R,
    route: &[EdgeId],
    positions: &[PathPosition],
    span_max: usize,
) -> Option<Candidate> {
    if route.len() < 3 {
        return None;
    }
    // Detours never touch the first edge: map-matched instances almost
    // always agree on the first mapped edge (the paper's referential
    // scheme requires non-references to share the start vertex), and the
    // running example's detour starts at the second edge.
    let s = rng.gen_range(1..route.len());
    let k = rng.gen_range(1..=span_max.min(route.len() - s));
    let u = net.edge_from(route[s]);
    let w = net.edge_to(route[s + k - 1]);
    if u == w {
        return None;
    }
    let banned: std::collections::HashSet<EdgeId> = route[s..s + k].iter().copied().collect();
    let span_dist: f64 = route[s..s + k].iter().map(|&e| net.edge_length(e)).sum();
    let alt = shortest_path_avoiding(net, u, w, span_dist * 5.0 + 500.0, &banned)?;
    if alt.edges.is_empty() || alt.edges == route[s..s + k] {
        return None;
    }
    let mut new_route = Vec::with_capacity(route.len() - k + alt.edges.len());
    new_route.extend_from_slice(&route[..s]);
    new_route.extend_from_slice(&alt.edges);
    new_route.extend_from_slice(&route[s + k..]);

    let shift = alt.edges.len() as i64 - k as i64;
    let mut new_positions = Vec::with_capacity(positions.len());
    for &p in positions {
        let idx = p.path_idx as usize;
        let np = if idx < s {
            p
        } else if idx >= s + k {
            PathPosition {
                path_idx: (idx as i64 + shift) as u32,
                rd: p.rd,
            }
        } else {
            // Fractional remap onto the detour.
            let before: f64 = route[s..idx].iter().map(|&e| net.edge_length(e)).sum();
            let offset = before + p.rd * net.edge_length(route[idx]);
            let f = if span_dist > 0.0 {
                offset / span_dist
            } else {
                0.0
            };
            let local = position_at_distance(net, &alt.edges, f * alt.dist);
            PathPosition {
                path_idx: s as u32 + local.path_idx,
                rd: local.rd,
            }
        };
        new_positions.push(np);
    }
    Some((new_route, new_positions))
}

/// Appends one edge to the route tail and moves the final sample onto it
/// (the paper's `Tu¹₃` pattern).
fn mutate_extend<R: Rng + ?Sized>(
    net: &RoadNetwork,
    rng: &mut R,
    route: &[EdgeId],
    positions: &[PathPosition],
) -> Option<Candidate> {
    let last = *route.last().unwrap();
    let v = net.edge_to(last);
    let choices: Vec<EdgeId> = net
        .out_edges(v)
        .filter(|&e| net.edge_to(e) != net.edge_from(last))
        .collect();
    if choices.is_empty() {
        return None;
    }
    let e = choices[rng.gen_range(0..choices.len())];
    let mut new_route = route.to_vec();
    new_route.push(e);
    let mut new_positions = positions.to_vec();
    let last_pos = new_positions.last_mut().unwrap();
    *last_pos = PathPosition {
        path_idx: (new_route.len() - 1) as u32,
        rd: rng.gen_range(0.1..0.9),
    };
    Some((new_route, new_positions))
}

/// Drops the first route edge, moving leading samples onto the new first
/// edge. Changes the start vertex `SV`.
fn mutate_start_shift<R: Rng + ?Sized>(
    net: &RoadNetwork,
    rng: &mut R,
    route: &[EdgeId],
    positions: &[PathPosition],
) -> Option<Candidate> {
    let _ = net;
    if route.len() < 3 {
        return None;
    }
    let new_route = route[1..].to_vec();
    // Samples from the dropped edge must land *before* any sample already
    // on the next edge, so squeeze them into the gap below its first rd.
    let bound = positions
        .iter()
        .find(|p| p.path_idx == 1)
        .map_or(1.0, |p| p.rd);
    let squeeze = rng.gen_range(0.05..0.95) * bound;
    let mut new_positions = Vec::with_capacity(positions.len());
    for &p in positions {
        if p.path_idx == 0 {
            new_positions.push(PathPosition {
                path_idx: 0,
                rd: p.rd * squeeze,
            });
        } else {
            new_positions.push(PathPosition {
                path_idx: p.path_idx - 1,
                rd: p.rd,
            });
        }
    }
    Some((new_route, new_positions))
}

/// Jitters one sample's relative distance within its edge, preserving
/// monotonicity.
fn mutate_rd_jitter<R: Rng + ?Sized>(
    net: &RoadNetwork,
    rng: &mut R,
    route: &[EdgeId],
    positions: &[PathPosition],
) -> Option<Candidate> {
    let _ = net;
    if positions.is_empty() {
        return None;
    }
    let i = rng.gen_range(0..positions.len());
    let mut new_positions = positions.to_vec();
    let p = new_positions[i];
    let lo = if i > 0 && new_positions[i - 1].path_idx == p.path_idx {
        new_positions[i - 1].rd
    } else {
        0.0
    };
    let hi = if i + 1 < new_positions.len() && new_positions[i + 1].path_idx == p.path_idx {
        new_positions[i + 1].rd
    } else {
        1.0
    };
    let jittered = (p.rd + rng.gen_range(-0.2..0.2)).clamp(lo, hi);
    new_positions[i].rd = jittered;
    Some((route.to_vec(), new_positions))
}

fn mutate_once<R: Rng + ?Sized>(
    net: &RoadNetwork,
    rng: &mut R,
    cand: &Candidate,
    cfg: &VariantConfig,
) -> Option<Candidate> {
    let total = cfg.w_detour + cfg.w_extend + cfg.w_start_shift + cfg.w_rd_jitter;
    let roll = rng.gen::<f64>() * total;
    if roll < cfg.w_detour {
        mutate_detour(net, rng, &cand.0, &cand.1, cfg.detour_span_max)
    } else if roll < cfg.w_detour + cfg.w_extend {
        mutate_extend(net, rng, &cand.0, &cand.1)
    } else if roll < cfg.w_detour + cfg.w_extend + cfg.w_start_shift {
        mutate_start_shift(net, rng, &cand.0, &cand.1)
    } else {
        mutate_rd_jitter(net, rng, &cand.0, &cand.1)
    }
}

/// Trims a candidate's path to the edges actually spanned by its samples
/// (the paper's model requires the first and last path edges to carry a
/// GPS point), shifting sample indices accordingly.
fn normalize(cand: &mut Candidate) {
    let first = cand.1.first().map_or(0, |p| p.path_idx) as usize;
    let last = cand.1.last().map_or(0, |p| p.path_idx) as usize;
    if last + 1 < cand.0.len() {
        cand.0.truncate(last + 1);
    }
    if first > 0 {
        cand.0.drain(..first);
        for p in &mut cand.1 {
            p.path_idx -= first as u32;
        }
    }
}

/// A dedup signature: the path plus micro-quantized distances.
fn signature(cand: &Candidate) -> (Vec<EdgeId>, Vec<(u32, u64)>) {
    (
        cand.0.clone(),
        cand.1
            .iter()
            .map(|p| (p.path_idx, (p.rd * 1e9) as u64))
            .collect(),
    )
}

/// Builds an uncertain trajectory with up to `k_target` instances from a
/// ground-truth route and shared time sequence.
pub fn build_uncertain<R: Rng + ?Sized>(
    net: &RoadNetwork,
    rng: &mut R,
    id: u64,
    route: Vec<EdgeId>,
    times: Vec<i64>,
    k_target: usize,
    cfg: &VariantConfig,
) -> UncertainTrajectory {
    let base_pos = base_positions(net, rng, &route, &times);
    let base: Candidate = (route, base_pos);
    let mut seen = std::collections::HashSet::new();
    seen.insert(signature(&base));
    let mut cands = vec![base];

    let mut attempts = 0usize;
    let max_attempts = k_target.saturating_mul(8).max(16);
    while cands.len() < k_target && attempts < max_attempts {
        attempts += 1;
        // Mutate a random existing candidate (usually the ground truth).
        let parent = if rng.gen::<f64>() < 0.7 {
            0
        } else {
            rng.gen_range(0..cands.len())
        };
        let parent = cands[parent].clone();
        let Some(mut cand) = mutate_once(net, rng, &parent, cfg) else {
            continue;
        };
        if rng.gen::<f64>() < cfg.p_second_mutation {
            if let Some(more) = mutate_once(net, rng, &cand, cfg) {
                cand = more;
            }
        }
        normalize(&mut cand);
        if seen.insert(signature(&cand)) {
            cands.push(cand);
        }
    }

    // Probabilities: the ground truth dominates, variants share the rest.
    let mut weights: Vec<f64> = Vec::with_capacity(cands.len());
    weights.push(rng.gen_range(2.0..5.0));
    for _ in 1..cands.len() {
        weights.push(rng.gen_range(0.2..1.5));
    }
    let sum: f64 = weights.iter().sum();

    let mut instances: Vec<Instance> = cands
        .into_iter()
        .zip(weights)
        .map(|((path, positions), w)| Instance {
            path,
            positions,
            prob: w / sum,
        })
        .collect();
    // Most-probable first, for deterministic downstream behaviour.
    instances.sort_by(|a, b| b.prob.total_cmp(&a.prob));
    // Renormalize away float dust so probabilities sum to exactly ~1.
    let total: f64 = instances.iter().map(|i| i.prob).sum();
    for inst in &mut instances {
        inst.prob /= total;
    }
    UncertainTrajectory {
        id,
        times,
        instances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{profile, route::random_route, times::time_sequence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use utcq_network::gen::{grid_city, GridCityConfig};

    fn setup() -> (RoadNetwork, StdRng) {
        let mut rng = StdRng::seed_from_u64(77);
        let net = grid_city(&GridCityConfig::tiny(), &mut rng);
        (net, rng)
    }

    #[test]
    fn base_positions_are_valid() {
        let (net, mut rng) = setup();
        for _ in 0..30 {
            let route = random_route(&net, &mut rng, 8, 20).unwrap();
            let p = profile::tiny();
            let times = time_sequence(&mut rng, &p.deviations, 0, 10, p.default_interval);
            let pos = base_positions(&net, &mut rng, &route, &times);
            let inst = Instance {
                path: route,
                positions: pos,
                prob: 1.0,
            };
            assert_eq!(inst.validate(&net, times.len()), Ok(()));
        }
    }

    #[test]
    fn uncertain_trajectories_validate() {
        let (net, mut rng) = setup();
        let p = profile::tiny();
        for id in 0..25 {
            let route = random_route(&net, &mut rng, 10, 20).unwrap();
            let times = time_sequence(&mut rng, &p.deviations, 100, 12, p.default_interval);
            let tu = build_uncertain(
                &net,
                &mut rng,
                id,
                route,
                times,
                6,
                &VariantConfig::default(),
            );
            assert_eq!(tu.validate(&net), Ok(()), "trajectory {id}");
        }
    }

    #[test]
    fn variants_are_distinct_and_usually_plural() {
        let (net, mut rng) = setup();
        let p = profile::tiny();
        let mut multi = 0;
        for id in 0..20 {
            let route = random_route(&net, &mut rng, 10, 20).unwrap();
            let times = time_sequence(&mut rng, &p.deviations, 100, 12, p.default_interval);
            let tu = build_uncertain(
                &net,
                &mut rng,
                id,
                route,
                times,
                8,
                &VariantConfig::default(),
            );
            if tu.instance_count() > 1 {
                multi += 1;
            }
            // No duplicate instances (Definition 5 requires distinct).
            for a in 0..tu.instances.len() {
                for b in a + 1..tu.instances.len() {
                    assert!(
                        tu.instances[a].path != tu.instances[b].path
                            || tu.instances[a].positions != tu.instances[b].positions
                    );
                }
            }
        }
        assert!(multi >= 15, "only {multi}/20 trajectories got variants");
    }

    #[test]
    fn probabilities_sum_to_one_and_sorted() {
        let (net, mut rng) = setup();
        let p = profile::tiny();
        let route = random_route(&net, &mut rng, 10, 20).unwrap();
        let times = time_sequence(&mut rng, &p.deviations, 100, 12, p.default_interval);
        let tu = build_uncertain(
            &net,
            &mut rng,
            0,
            route,
            times,
            8,
            &VariantConfig::default(),
        );
        let sum: f64 = tu.instances.iter().map(|i| i.prob).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for w in tu.instances.windows(2) {
            assert!(w[0].prob >= w[1].prob);
        }
    }

    #[test]
    fn variants_stay_similar_to_base() {
        // Fig. 4b: intra-trajectory edit distance should be mostly ≤ 5.
        use utcq_traj::editdist::edit_distance;
        use utcq_traj::TedView;
        let (net, mut rng) = setup();
        let p = profile::tiny();
        let mut small = 0usize;
        let mut pairs = 0usize;
        for id in 0..15 {
            let route = random_route(&net, &mut rng, 10, 20).unwrap();
            let times = time_sequence(&mut rng, &p.deviations, 100, 12, p.default_interval);
            let tu = build_uncertain(
                &net,
                &mut rng,
                id,
                route,
                times,
                6,
                &VariantConfig::default(),
            );
            let seqs: Vec<Vec<u32>> = tu
                .instances
                .iter()
                .map(|i| TedView::from_instance(&net, i).entries)
                .collect();
            for a in 0..seqs.len() {
                for b in a + 1..seqs.len() {
                    pairs += 1;
                    if edit_distance(&seqs[a], &seqs[b]) <= 5 {
                        small += 1;
                    }
                }
            }
        }
        assert!(pairs > 0);
        let frac = small as f64 / pairs as f64;
        assert!(frac > 0.6, "intra similarity too low: {frac}");
    }

    #[test]
    fn start_shift_changes_sv() {
        let (net, mut rng) = setup();
        let route = random_route(&net, &mut rng, 8, 20).unwrap();
        let times: Vec<i64> = (0..8).map(|i| i * 10).collect();
        let pos = base_positions(&net, &mut rng, &route, &times);
        let cand = mutate_start_shift(&net, &mut rng, &route, &pos).unwrap();
        assert_ne!(net.edge_from(cand.0[0]), net.edge_from(route[0]));
        let inst = Instance {
            path: cand.0,
            positions: cand.1,
            prob: 1.0,
        };
        assert_eq!(inst.validate(&net, times.len()), Ok(()));
    }
}
