//! Dataset profiles calibrated to the paper's Tables 5–6 and Figure 4.
//!
//! The paper evaluates on three proprietary GPS datasets. Each profile
//! captures every distribution the compression pipeline is sensitive to;
//! the generator reproduces them and `fig4_stats` verifies the match.

use utcq_network::gen::GridCityConfig;

/// The sample-interval deviation mix (Figure 4a buckets, as fractions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationMix {
    /// P(|Δ| = 0).
    pub zero: f64,
    /// P(|Δ| = 1).
    pub one: f64,
    /// P(|Δ| ∈ (1, 50]).
    pub upto50: f64,
    /// P(|Δ| ∈ (50, 100]).
    pub upto100: f64,
    /// P(|Δ| > 100).
    pub over100: f64,
}

impl DeviationMix {
    /// Checks the mix sums to 1.
    pub fn is_normalized(&self) -> bool {
        (self.zero + self.one + self.upto50 + self.upto100 + self.over100 - 1.0).abs() < 1e-9
    }
}

/// A synthetic stand-in for one of the paper's datasets.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Dataset label.
    pub name: &'static str,
    /// Default sample interval `Ts` (Table 5: DK 1 s, CD 10 s, HZ 20 s).
    pub default_interval: i64,
    /// Figure 4a deviation mix.
    pub deviations: DeviationMix,
    /// Mean instances per uncertain trajectory (Table 5: 9 / 3 / 13).
    pub avg_instances: f64,
    /// Hard cap on instances per trajectory.
    pub max_instances: usize,
    /// Mean edges per instance path (Table 5: 14 / 11 / 13).
    pub avg_edges: f64,
    /// Hard cap on edges per path.
    pub max_edges: usize,
    /// Mean vehicle speed in m/s for the movement simulation.
    pub speed_mps: f64,
    /// Road-network generator settings (Table 6 out-degree calibration).
    pub network: GridCityConfig,
}

/// Denmark: 1 s interval, 93 % of intervals within ±1 s, few but long
/// trajectories per vehicle, sparse rural network (avg out-degree 2.449).
pub fn dk() -> DatasetProfile {
    DatasetProfile {
        name: "DK",
        default_interval: 1,
        deviations: DeviationMix {
            zero: 0.80,
            one: 0.13,
            upto50: 0.05,
            upto100: 0.013,
            over100: 0.007,
        },
        avg_instances: 9.0,
        max_instances: 64,
        avg_edges: 14.0,
        max_edges: 140,
        speed_mps: 18.0,
        network: GridCityConfig {
            nx: 48,
            ny: 48,
            spacing: 250.0,
            jitter: 0.2,
            p_remove: 0.36,
            p_diagonal: 0.02,
        },
    }
}

/// Chengdu: 10 s interval, 62 % within ±1 s, few instances per trajectory,
/// dense urban grid (avg out-degree 2.834).
pub fn cd() -> DatasetProfile {
    DatasetProfile {
        name: "CD",
        default_interval: 10,
        deviations: DeviationMix {
            zero: 0.45,
            one: 0.17,
            upto50: 0.28,
            upto100: 0.07,
            over100: 0.03,
        },
        avg_instances: 3.0,
        max_instances: 48,
        avg_edges: 11.0,
        max_edges: 148,
        speed_mps: 11.0,
        network: GridCityConfig {
            nx: 40,
            ny: 40,
            spacing: 180.0,
            jitter: 0.15,
            p_remove: 0.2,
            p_diagonal: 0.06,
        },
    }
}

/// Hangzhou: 20 s interval, 54 % within ±1 s, many instances per
/// trajectory, dense urban grid (avg out-degree 2.791).
pub fn hz() -> DatasetProfile {
    DatasetProfile {
        name: "HZ",
        default_interval: 20,
        deviations: DeviationMix {
            zero: 0.38,
            one: 0.16,
            upto50: 0.32,
            upto100: 0.09,
            over100: 0.05,
        },
        avg_instances: 13.0,
        max_instances: 96,
        avg_edges: 13.0,
        max_edges: 189,
        speed_mps: 10.0,
        network: GridCityConfig {
            nx: 36,
            ny: 36,
            spacing: 170.0,
            jitter: 0.15,
            p_remove: 0.22,
            p_diagonal: 0.05,
        },
    }
}

/// All three profiles in the paper's order.
pub fn all() -> Vec<DatasetProfile> {
    vec![dk(), cd(), hz()]
}

/// A miniature profile for fast unit tests.
pub fn tiny() -> DatasetProfile {
    DatasetProfile {
        name: "tiny",
        default_interval: 10,
        deviations: DeviationMix {
            zero: 0.6,
            one: 0.2,
            upto50: 0.15,
            upto100: 0.04,
            over100: 0.01,
        },
        avg_instances: 4.0,
        max_instances: 12,
        avg_edges: 8.0,
        max_edges: 30,
        speed_mps: 12.0,
        network: GridCityConfig::tiny(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_normalized() {
        for p in all() {
            assert!(
                p.deviations.is_normalized(),
                "{} mix not normalized",
                p.name
            );
        }
        assert!(tiny().deviations.is_normalized());
    }

    #[test]
    fn within_one_matches_paper_headline() {
        // Fig. 4a: 93 % DK, 62 % CD, 54 % HZ within ±1 s.
        assert!((dk().deviations.zero + dk().deviations.one - 0.93).abs() < 1e-9);
        assert!((cd().deviations.zero + cd().deviations.one - 0.62).abs() < 1e-9);
        assert!((hz().deviations.zero + hz().deviations.one - 0.54).abs() < 1e-9);
    }

    #[test]
    fn table5_means() {
        assert_eq!(dk().default_interval, 1);
        assert_eq!(cd().default_interval, 10);
        assert_eq!(hz().default_interval, 20);
        assert_eq!(dk().avg_instances, 9.0);
        assert_eq!(cd().avg_instances, 3.0);
        assert_eq!(hz().avg_instances, 13.0);
    }
}
