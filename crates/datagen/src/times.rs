//! Time-sequence synthesis with realistic sample-interval jitter.
//!
//! The paper observes (Fig. 4a) that real GPS intervals deviate from the
//! nominal interval in a heavy-headed way: most deviations are 0 or ±1 s,
//! but a tail reaches minutes. SIAR (§4.1) and the improved Exp-Golomb
//! code (§4.4) are designed around exactly this mix, so the generator must
//! reproduce it.

use rand::Rng;

use crate::profile::DeviationMix;

/// Samples one signed deviation from the Figure 4a mix.
///
/// `min_interval` guards strict monotonicity: the resulting interval
/// `Ts + Δ` is at least 1 s, so for small `Ts` negative tails clamp.
pub fn sample_deviation<R: Rng + ?Sized>(rng: &mut R, mix: &DeviationMix, ts: i64) -> i64 {
    let u: f64 = rng.gen();
    let mag: i64 = if u < mix.zero {
        0
    } else if u < mix.zero + mix.one {
        1
    } else if u < mix.zero + mix.one + mix.upto50 {
        rng.gen_range(2..=50)
    } else if u < mix.zero + mix.one + mix.upto50 + mix.upto100 {
        rng.gen_range(51..=100)
    } else {
        rng.gen_range(101..=300)
    };
    if mag == 0 {
        return 0;
    }
    // Negative only when the interval stays ≥ 1 s.
    let can_negate = ts - mag >= 1;
    if can_negate && rng.gen::<bool>() {
        -mag
    } else {
        mag
    }
}

/// Generates a strictly increasing time sequence of `n` samples starting at
/// `t0` with nominal interval `ts`.
pub fn time_sequence<R: Rng + ?Sized>(
    rng: &mut R,
    mix: &DeviationMix,
    t0: i64,
    n: usize,
    ts: i64,
) -> Vec<i64> {
    let mut times = Vec::with_capacity(n);
    let mut t = t0;
    times.push(t);
    for _ in 1..n {
        let dev = sample_deviation(rng, mix, ts);
        t += (ts + dev).max(1);
        times.push(t);
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequences_strictly_increase() {
        let mut rng = StdRng::seed_from_u64(9);
        for p in profile::all() {
            let ts = time_sequence(&mut rng, &p.deviations, 1000, 200, p.default_interval);
            assert_eq!(ts.len(), 200);
            assert!(ts.windows(2).all(|w| w[0] < w[1]), "{}", p.name);
        }
    }

    #[test]
    fn deviation_mix_is_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = profile::cd();
        let n = 40_000;
        let mut within_one = 0;
        for _ in 0..n {
            let d = sample_deviation(&mut rng, &p.deviations, p.default_interval);
            if d.abs() <= 1 {
                within_one += 1;
            }
        }
        let frac = f64::from(within_one) / f64::from(n);
        // CD target: 62 % within ±1 s.
        assert!((frac - 0.62).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn dk_never_produces_nonpositive_intervals() {
        // Ts = 1 s: all deviations must keep interval ≥ 1.
        let mut rng = StdRng::seed_from_u64(7);
        let p = profile::dk();
        let ts = time_sequence(&mut rng, &p.deviations, 0, 5000, 1);
        assert!(ts.windows(2).all(|w| w[1] - w[0] >= 1));
    }

    #[test]
    fn deviations_take_both_signs_when_possible() {
        let mut rng = StdRng::seed_from_u64(13);
        let p = profile::hz(); // Ts = 20 s leaves room for negatives
        let mut pos = 0;
        let mut neg = 0;
        for _ in 0..20_000 {
            match sample_deviation(&mut rng, &p.deviations, 20) {
                d if d > 0 => pos += 1,
                d if d < 0 => neg += 1,
                _ => {}
            }
        }
        assert!(pos > 0 && neg > 0);
        // Large deviations can only be positive (interval must stay ≥ 1 s),
        // so a positive skew is expected — but small deviations balance.
        assert!((pos as f64 / (pos + neg) as f64) < 0.85);
    }
}
