//! The trajectory data model.
//!
//! Follows the paper's definitions: raw trajectories (time-stamped planar
//! points), mapped locations (Definition 2), network-constrained trajectory
//! instances, and network-constrained uncertain trajectories (Definition 5)
//! whose instances share one time sequence.

use utcq_network::{EdgeId, RoadNetwork};

/// One raw GPS sample `(x, y, t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawPoint {
    /// Easting in the local planar frame (meters).
    pub x: f64,
    /// Northing in the local planar frame (meters).
    pub y: f64,
    /// Timestamp in seconds (e.g. seconds since an epoch or day start).
    pub t: i64,
}

/// A raw trajectory: a time-ordered series of GPS samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawTrajectory {
    /// The samples, strictly increasing in `t`.
    pub points: Vec<RawPoint>,
}

impl RawTrajectory {
    /// The time sequence of the raw samples.
    pub fn times(&self) -> Vec<i64> {
        self.points.iter().map(|p| p.t).collect()
    }
}

/// A mapped location (Definition 2): a position `ndist` meters from the
/// source vertex along a directed edge. The timestamp lives in the shared
/// time sequence of the owning uncertain trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappedLocation {
    /// The edge `(vs → ve)` the location lies on.
    pub edge: EdgeId,
    /// Network distance from `vs` in meters.
    pub ndist: f64,
}

/// A sample position within an instance: which path edge it lies on and its
/// *relative distance* (Definition 7) along that edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathPosition {
    /// Index into [`Instance::path`].
    pub path_idx: u32,
    /// Relative distance `rd ∈ [0, 1)` along that edge.
    pub rd: f64,
}

/// One instance of an uncertain trajectory: a connected path through the
/// network, the per-timestamp positions along it, and the instance
/// probability from probabilistic map-matching.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// The connected edge path (Definition 4).
    pub path: Vec<EdgeId>,
    /// One entry per shared timestamp, non-decreasing along the path.
    pub positions: Vec<PathPosition>,
    /// Likelihood of this instance; instance probabilities of one
    /// uncertain trajectory sum to 1.
    pub prob: f64,
}

impl Instance {
    /// The mapped location of sample `i`.
    pub fn location(&self, net: &RoadNetwork, i: usize) -> MappedLocation {
        let pos = self.positions[i];
        let edge = self.path[pos.path_idx as usize];
        MappedLocation {
            edge,
            ndist: pos.rd * net.edge_length(edge),
        }
    }

    /// The relative-distance sequence `D` (Definition 7).
    pub fn rds(&self) -> Vec<f64> {
        self.positions.iter().map(|p| p.rd).collect()
    }

    /// Validates all structural invariants against a network; returns a
    /// human-readable reason on failure.
    pub fn validate(&self, net: &RoadNetwork, n_times: usize) -> Result<(), String> {
        if self.path.is_empty() {
            return Err("instance path is empty".into());
        }
        if !net.is_path(&self.path) {
            return Err("instance path is not connected".into());
        }
        if self.positions.len() != n_times {
            return Err(format!(
                "instance has {} positions but the trajectory has {} timestamps",
                self.positions.len(),
                n_times
            ));
        }
        if self.positions.is_empty() {
            return Err("instance has no positions".into());
        }
        if self.positions[0].path_idx != 0 {
            return Err("first sample must lie on the first path edge".into());
        }
        if self.positions.last().unwrap().path_idx as usize != self.path.len() - 1 {
            return Err("last sample must lie on the last path edge".into());
        }
        let mut prev = (0u32, -1.0f64);
        for (i, p) in self.positions.iter().enumerate() {
            if p.path_idx as usize >= self.path.len() {
                return Err(format!("position {i} points past the path"));
            }
            if !(0.0..=1.0).contains(&p.rd) {
                return Err(format!("position {i} has rd {} outside [0,1]", p.rd));
            }
            if (p.path_idx, p.rd) < prev {
                return Err(format!("position {i} moves backwards along the path"));
            }
            prev = (p.path_idx, p.rd);
        }
        if !(0.0..=1.0 + 1e-9).contains(&self.prob) {
            return Err(format!("probability {} outside [0,1]", self.prob));
        }
        Ok(())
    }
}

/// A network-constrained uncertain trajectory (Definition 5): instances
/// sharing one time sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainTrajectory {
    /// Stable identifier within a dataset.
    pub id: u64,
    /// The shared, strictly increasing time sequence `T(Tuʲ)` in seconds.
    pub times: Vec<i64>,
    /// The instances `Tuʲw`, each with its probability.
    pub instances: Vec<Instance>,
}

impl UncertainTrajectory {
    /// Number of instances `Nʲ`.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Validates the trajectory and all instances.
    pub fn validate(&self, net: &RoadNetwork) -> Result<(), String> {
        if self.times.len() < 2 {
            return Err("a trajectory needs at least two samples".into());
        }
        if !self.times.windows(2).all(|w| w[0] < w[1]) {
            return Err("time sequence is not strictly increasing".into());
        }
        if self.instances.is_empty() {
            return Err("uncertain trajectory has no instances".into());
        }
        let total_p: f64 = self.instances.iter().map(|i| i.prob).sum();
        if (total_p - 1.0).abs() > 1e-6 {
            return Err(format!("instance probabilities sum to {total_p}, not 1"));
        }
        for (w, inst) in self.instances.iter().enumerate() {
            inst.validate(net, self.times.len())
                .map_err(|e| format!("instance {w}: {e}"))?;
        }
        Ok(())
    }

    /// The instance with the highest probability (the accurate trajectory a
    /// non-probabilistic matcher would keep).
    pub fn top_instance(&self) -> &Instance {
        self.instances
            .iter()
            .max_by(|a, b| a.prob.total_cmp(&b.prob))
            .expect("non-empty")
    }
}

/// A collection of uncertain trajectories sharing a road network and a
/// nominal sampling interval.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset label (e.g. "DK", "CD", "HZ").
    pub name: String,
    /// Default sample interval `Ts` in seconds (Table 5: 1 / 10 / 20).
    pub default_interval: i64,
    /// The uncertain trajectories.
    pub trajectories: Vec<UncertainTrajectory>,
}

impl Dataset {
    /// Total number of instances across all trajectories.
    pub fn instance_count(&self) -> usize {
        self.trajectories.iter().map(|t| t.instance_count()).sum()
    }

    /// Validates every trajectory.
    pub fn validate(&self, net: &RoadNetwork) -> Result<(), String> {
        for tu in &self.trajectories {
            tu.validate(net)
                .map_err(|e| format!("trajectory {}: {e}", tu.id))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utcq_network::gen::line;

    fn line_instance(net: &RoadNetwork) -> Instance {
        // Forward edges on the line network are the even-numbered edges.
        let e0 = net
            .find_edge(utcq_network::VertexId(0), utcq_network::VertexId(1))
            .unwrap();
        let e1 = net
            .find_edge(utcq_network::VertexId(1), utcq_network::VertexId(2))
            .unwrap();
        Instance {
            path: vec![e0, e1],
            positions: vec![
                PathPosition {
                    path_idx: 0,
                    rd: 0.2,
                },
                PathPosition {
                    path_idx: 0,
                    rd: 0.8,
                },
                PathPosition {
                    path_idx: 1,
                    rd: 0.5,
                },
            ],
            prob: 1.0,
        }
    }

    #[test]
    fn instance_locations() {
        let net = line(3, 10.0);
        let inst = line_instance(&net);
        let l0 = inst.location(&net, 0);
        assert!((l0.ndist - 2.0).abs() < 1e-12);
        let l2 = inst.location(&net, 2);
        assert!((l2.ndist - 5.0).abs() < 1e-12);
        assert_eq!(inst.rds(), vec![0.2, 0.8, 0.5]);
    }

    #[test]
    fn valid_instance_passes() {
        let net = line(3, 10.0);
        let inst = line_instance(&net);
        assert_eq!(inst.validate(&net, 3), Ok(()));
    }

    #[test]
    fn invalid_instances_rejected() {
        let net = line(3, 10.0);
        let good = line_instance(&net);

        let mut broken = good.clone();
        broken.positions[1].rd = 0.1; // moves backwards
        assert!(broken.validate(&net, 3).is_err());

        let mut broken = good.clone();
        broken.positions[2].path_idx = 0; // last sample not on last edge
        assert!(broken.validate(&net, 3).is_err());

        let mut broken = good.clone();
        broken.positions[0].rd = 1.5;
        assert!(broken.validate(&net, 3).is_err());

        let mut broken = good.clone();
        broken.path.clear();
        assert!(broken.validate(&net, 3).is_err());

        // Disconnected path.
        let mut broken = good.clone();
        broken.path.swap(0, 1);
        assert!(broken.validate(&net, 3).is_err());
    }

    #[test]
    fn uncertain_trajectory_validation() {
        let net = line(3, 10.0);
        let mut inst_a = line_instance(&net);
        inst_a.prob = 0.6;
        let mut inst_b = line_instance(&net);
        inst_b.prob = 0.4;
        let tu = UncertainTrajectory {
            id: 1,
            times: vec![0, 10, 20],
            instances: vec![inst_a.clone(), inst_b.clone()],
        };
        assert_eq!(tu.validate(&net), Ok(()));
        assert!((tu.top_instance().prob - 0.6).abs() < 1e-12);

        let bad_times = UncertainTrajectory {
            times: vec![0, 10, 10],
            ..tu.clone()
        };
        assert!(bad_times.validate(&net).is_err());

        let mut bad_p = tu.clone();
        bad_p.instances[0].prob = 0.9;
        assert!(bad_p.validate(&net).is_err());

        let no_instances = UncertainTrajectory {
            instances: vec![],
            ..tu.clone()
        };
        assert!(no_instances.validate(&net).is_err());
    }

    #[test]
    fn dataset_counts() {
        let net = line(3, 10.0);
        let inst = line_instance(&net);
        let tu = UncertainTrajectory {
            id: 0,
            times: vec![0, 10, 20],
            instances: vec![inst],
        };
        let ds = Dataset {
            name: "test".into(),
            default_interval: 10,
            trajectories: vec![tu.clone(), tu],
        };
        assert_eq!(ds.instance_count(), 2);
        assert_eq!(ds.validate(&net), Ok(()));
    }
}
