//! Edit distance between edge sequences.
//!
//! The paper measures the similarity of `E(·)` between trajectory instances
//! with edit distance (Fig. 4b, following [37, 43]): most instance pairs of
//! one uncertain trajectory are within distance 5, while pairs from
//! different trajectories are usually ≥ 9 — the observation motivating
//! *intra-trajectory* referential compression.

/// Levenshtein distance between two sequences.
///
/// Two-row dynamic program, O(|a|·|b|) time and O(min) memory.
pub fn edit_distance(a: &[u32], b: &[u32]) -> usize {
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &x) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &y) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(x != y);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences() {
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(edit_distance(&[], &[]), 0);
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(edit_distance(&[], &[1, 2, 3]), 3);
        assert_eq!(edit_distance(&[5], &[]), 1);
    }

    #[test]
    fn substitutions_insertions_deletions() {
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 9, 3]), 1);
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3, 4]), 1);
        assert_eq!(edit_distance(&[1, 2, 3, 4], &[1, 3, 4]), 1);
        assert_eq!(edit_distance(&[1, 2], &[2, 1]), 2);
    }

    #[test]
    fn paper_instances_are_close() {
        // Table 3: Tu¹₁ vs Tu¹₂ differ in one entry; Tu¹₁ vs Tu¹₃ in one.
        let e1 = [1, 2, 1, 2, 2, 0, 4, 1, 0];
        let e2 = [1, 1, 1, 2, 2, 0, 4, 1, 0];
        let e3 = [1, 2, 1, 2, 2, 0, 4, 1, 2];
        assert_eq!(edit_distance(&e1, &e2), 1);
        assert_eq!(edit_distance(&e1, &e3), 1);
        assert_eq!(edit_distance(&e2, &e3), 2);
    }

    #[test]
    fn symmetry_and_triangle_inequality() {
        let seqs: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 4, 5],
            vec![2, 3, 4],
            vec![1, 1, 1],
            vec![],
            vec![5, 4, 3, 2, 1],
        ];
        for a in &seqs {
            for b in &seqs {
                assert_eq!(edit_distance(a, b), edit_distance(b, a));
                for c in &seqs {
                    assert!(edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c));
                }
            }
        }
    }
}
