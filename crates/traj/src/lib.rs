//! Trajectory model for the UTCQ reproduction.
//!
//! Implements the paper's Definitions 2–5 and 7: raw trajectories, mapped
//! locations, network-constrained trajectory instances, and uncertain
//! trajectories whose instances share a time sequence — plus the TED-model
//! view (`SV`/`E`/`D`/`T'`), spatio-temporal interpolation, edit-distance
//! similarity, raw-size accounting, and dataset statistics.
//!
//! The paper's running example (Figure 2 / Table 3) is available as
//! [`paper_fixture::build`] and exercised heavily in tests throughout the
//! workspace.

pub mod editdist;
pub mod interp;
pub mod model;
pub mod paper_fixture;
pub mod size;
pub mod stats;
pub mod ted_view;

pub use model::{
    Dataset, Instance, MappedLocation, PathPosition, RawPoint, RawTrajectory, UncertainTrajectory,
};
pub use ted_view::{TedView, TedViewError};
