//! Uncompressed storage accounting.
//!
//! Every compression ratio in the paper divides the raw NCUT footprint by
//! the compressed footprint, component by component (Table 8 reports T, E,
//! D, T′ and p separately). The raw footprint convention is chosen to match
//! the paper's own arithmetic (see DESIGN.md): 32-bit timestamps, 32 bits
//! per edge-sequence entry, 64-bit doubles for relative distances and
//! probabilities, 1 bit per time flag, and a 32-bit start vertex per
//! instance.

use utcq_network::RoadNetwork;

use crate::model::{Dataset, Instance, UncertainTrajectory};

/// Bit counts per component of the TED/UTCQ decomposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeBreakdown {
    /// Time sequence `T` bits.
    pub t: u64,
    /// Edge sequence `E` bits.
    pub e: u64,
    /// Relative distance `D` bits.
    pub d: u64,
    /// Time-flag bit-string `T'` bits.
    pub tflag: u64,
    /// Probability bits.
    pub p: u64,
    /// Start-vertex bits.
    pub sv: u64,
}

impl SizeBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.t + self.e + self.d + self.tflag + self.p + self.sv
    }

    /// Component-wise accumulation.
    pub fn add(&mut self, other: &SizeBreakdown) {
        self.t += other.t;
        self.e += other.e;
        self.d += other.d;
        self.tflag += other.tflag;
        self.p += other.p;
        self.sv += other.sv;
    }
}

/// Number of `E` entries of an instance (path edges plus repeat markers)
/// without materializing the TED view.
pub fn entry_count(inst: &Instance) -> usize {
    let mut distinct = 0usize;
    let mut last = u32::MAX;
    for p in &inst.positions {
        if p.path_idx != last {
            distinct += 1;
            last = p.path_idx;
        }
    }
    inst.path.len() + inst.positions.len() - distinct
}

/// Raw footprint of one uncertain trajectory.
pub fn uncompressed_bits(tu: &UncertainTrajectory) -> SizeBreakdown {
    let mut s = SizeBreakdown {
        t: 32 * tu.times.len() as u64,
        ..Default::default()
    };
    for inst in &tu.instances {
        let entries = entry_count(inst) as u64;
        s.e += 32 * entries;
        s.tflag += entries;
        s.d += 64 * inst.positions.len() as u64;
        s.p += 64;
        s.sv += 32;
    }
    s
}

/// Raw footprint of a whole dataset.
pub fn dataset_uncompressed_bits(ds: &Dataset) -> SizeBreakdown {
    let mut s = SizeBreakdown::default();
    for tu in &ds.trajectories {
        s.add(&uncompressed_bits(tu));
    }
    s
}

/// Sanity helper: the raw footprint must be consistent with the network
/// (entry counts resolve). Used by tests.
pub fn verify_entry_count(net: &RoadNetwork, inst: &Instance) -> bool {
    crate::ted_view::TedView::from_instance(net, inst)
        .entries
        .len()
        == entry_count(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_fixture;

    #[test]
    fn entry_counts_match_ted_view() {
        let fx = paper_fixture::build();
        for inst in &fx.tu.instances {
            assert!(verify_entry_count(&fx.example.net, inst));
            assert_eq!(entry_count(inst), 9);
        }
    }

    #[test]
    fn paper_trajectory_footprint() {
        let fx = paper_fixture::build();
        let s = uncompressed_bits(&fx.tu);
        assert_eq!(s.t, 32 * 7);
        assert_eq!(s.e, 32 * 9 * 3);
        assert_eq!(s.tflag, 9 * 3);
        assert_eq!(s.d, 64 * 7 * 3);
        assert_eq!(s.p, 64 * 3);
        assert_eq!(s.sv, 32 * 3);
        assert_eq!(s.total(), s.t + s.e + s.d + s.tflag + s.p + s.sv);
    }

    #[test]
    fn breakdown_add_accumulates() {
        let fx = paper_fixture::build();
        let one = uncompressed_bits(&fx.tu);
        let mut two = one;
        two.add(&one);
        assert_eq!(two.total(), 2 * one.total());
    }
}
