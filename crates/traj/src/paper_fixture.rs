//! The paper's running example `Tu¹` (Figure 2 / Table 3) as a reusable
//! fixture.
//!
//! Three instances over the [`utcq_network::paper_example`] network:
//!
//! * `Tu¹₁` (p = 0.75): the west–east spine `v1 → … → v8`,
//! * `Tu¹₂` (p = 0.20): the northern detour via `v10`,
//! * `Tu¹₃` (p = 0.05): the spine extended to `v9`.
//!
//! The shared time sequence is `⟨5:03:25, 5:07:25, 5:11:26, 5:15:26,
//! 5:19:25, 5:23:25, 5:27:25⟩` (seconds of day), whose SIAR encoding with
//! default interval 240 s is `⟨18205, 0, 1, 0, −1, 0, 0⟩` (§4.1).

use utcq_network::paper_example::{self, PaperExample};

use crate::model::{Instance, PathPosition, UncertainTrajectory};

/// The Figure 2 network plus the uncertain trajectory `Tu¹`.
#[derive(Debug, Clone)]
pub struct PaperFixture {
    /// Network fixture (vertices `v1..v10`).
    pub example: PaperExample,
    /// The uncertain trajectory `Tu¹` with instances `Tu¹₁, Tu¹₂, Tu¹₃`.
    pub tu: UncertainTrajectory,
}

/// Seconds-of-day for `h:m:s`.
pub const fn hms(h: i64, m: i64, s: i64) -> i64 {
    h * 3600 + m * 60 + s
}

/// The default sample interval of the running example (240 s).
pub const DEFAULT_INTERVAL: i64 = 240;

/// Builds the fixture.
pub fn build() -> PaperFixture {
    let example = paper_example::build();
    let ex = &example;

    let times = vec![
        hms(5, 3, 25),
        hms(5, 7, 25),
        hms(5, 11, 26),
        hms(5, 15, 26),
        hms(5, 19, 25),
        hms(5, 23, 25),
        hms(5, 27, 25),
    ];

    let spine = vec![
        ex.edge(1, 2),
        ex.edge(2, 3),
        ex.edge(3, 4),
        ex.edge(4, 5),
        ex.edge(5, 6),
        ex.edge(6, 7),
        ex.edge(7, 8),
    ];
    let detour = vec![
        ex.edge(1, 2),
        ex.edge(2, 10),
        ex.edge(10, 4),
        ex.edge(4, 5),
        ex.edge(5, 6),
        ex.edge(6, 7),
        ex.edge(7, 8),
    ];
    let extended = {
        let mut p = spine.clone();
        p.push(ex.edge(8, 9));
        p
    };

    let pp = |path_idx: u32, rd: f64| PathPosition { path_idx, rd };

    // Positions per Table 3's D and T' columns.
    let tu11 = Instance {
        path: spine,
        positions: vec![
            pp(0, 0.875),
            pp(2, 0.25),
            pp(4, 0.5),
            pp(4, 0.875),
            pp(5, 0.5),
            pp(6, 0.0),
            pp(6, 0.875),
        ],
        prob: 0.75,
    };
    let tu12 = Instance {
        path: detour,
        positions: vec![
            pp(0, 0.875),
            pp(1, 0.25),
            pp(4, 0.5),
            pp(4, 0.875),
            pp(5, 0.5),
            pp(6, 0.0),
            pp(6, 0.875),
        ],
        prob: 0.2,
    };
    let tu13 = Instance {
        path: extended,
        positions: vec![
            pp(0, 0.875),
            pp(2, 0.25),
            pp(4, 0.5),
            pp(4, 0.875),
            pp(5, 0.5),
            pp(6, 0.0),
            pp(7, 0.5),
        ],
        prob: 0.05,
    };

    let tu = UncertainTrajectory {
        id: 1,
        times,
        instances: vec![tu11, tu12, tu13],
    };
    PaperFixture { example, tu }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_valid() {
        let fx = build();
        assert_eq!(fx.tu.validate(&fx.example.net), Ok(()));
    }

    #[test]
    fn probabilities_match_paper() {
        let fx = build();
        let probs: Vec<f64> = fx.tu.instances.iter().map(|i| i.prob).collect();
        assert_eq!(probs, vec![0.75, 0.2, 0.05]);
    }

    #[test]
    fn siar_deviations_match_section_4_1() {
        let fx = build();
        let ts = DEFAULT_INTERVAL;
        let deltas: Vec<i64> = fx.tu.times.windows(2).map(|w| (w[1] - w[0]) - ts).collect();
        assert_eq!(deltas, vec![0, 1, 0, -1, 0, 0]);
        assert_eq!(fx.tu.times[0], 18205); // 5:03:25
    }
}
