//! Dataset statistics (the paper's Table 5 and Figure 4).
//!
//! These drive both the synthetic-data calibration (the generator must
//! reproduce the paper's distributions) and the `fig4_stats` experiment
//! runner that validates it did.

use utcq_network::RoadNetwork;

use crate::editdist::edit_distance;
use crate::model::Dataset;
use crate::ted_view::TedView;

/// Figure 4a: distribution of `|actual interval − default interval|`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviationHistogram {
    /// Fraction with deviation exactly 0 s.
    pub zero: f64,
    /// Fraction with deviation exactly 1 s.
    pub one: f64,
    /// Fraction in (1 s, 50 s].
    pub upto50: f64,
    /// Fraction in (50 s, 100 s].
    pub upto100: f64,
    /// Fraction above 100 s.
    pub over100: f64,
}

impl DeviationHistogram {
    /// Fraction of intervals deviating at most 1 s (the paper's headline:
    /// 93 % DK / 62 % CD / 54 % HZ).
    pub fn within_one(&self) -> f64 {
        self.zero + self.one
    }
}

/// Computes the Figure 4a histogram for a dataset.
pub fn interval_deviations(ds: &Dataset) -> DeviationHistogram {
    let mut h = DeviationHistogram::default();
    let mut n = 0u64;
    for tu in &ds.trajectories {
        for w in tu.times.windows(2) {
            let dev = ((w[1] - w[0]) - ds.default_interval).unsigned_abs();
            n += 1;
            match dev {
                0 => h.zero += 1.0,
                1 => h.one += 1.0,
                2..=50 => h.upto50 += 1.0,
                51..=100 => h.upto100 += 1.0,
                _ => h.over100 += 1.0,
            }
        }
    }
    if n > 0 {
        let n = n as f64;
        h.zero /= n;
        h.one /= n;
        h.upto50 /= n;
        h.upto100 /= n;
        h.over100 /= n;
    }
    h
}

/// Figure 4b: edit-distance histogram with the paper's buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EditDistanceHistogram {
    /// Fraction in `[0, 2]`.
    pub d0_2: f64,
    /// Fraction in `[3, 5]`.
    pub d3_5: f64,
    /// Fraction in `[6, 8]`.
    pub d6_8: f64,
    /// Fraction `≥ 9`.
    pub d9_up: f64,
    /// Number of pairs measured.
    pub pairs: u64,
}

impl EditDistanceHistogram {
    fn push(&mut self, d: usize) {
        self.pairs += 1;
        match d {
            0..=2 => self.d0_2 += 1.0,
            3..=5 => self.d3_5 += 1.0,
            6..=8 => self.d6_8 += 1.0,
            _ => self.d9_up += 1.0,
        }
    }

    fn normalize(&mut self) {
        if self.pairs > 0 {
            let n = self.pairs as f64;
            self.d0_2 /= n;
            self.d3_5 /= n;
            self.d6_8 /= n;
            self.d9_up /= n;
        }
    }

    /// Fraction of pairs at distance ≤ 5.
    pub fn within_five(&self) -> f64 {
        self.d0_2 + self.d3_5
    }
}

/// Edit distances between instances *within* each uncertain trajectory
/// (Fig. 4b left), capped at `max_pairs` pairs total.
pub fn intra_trajectory_similarity(
    net: &RoadNetwork,
    ds: &Dataset,
    max_pairs: u64,
) -> EditDistanceHistogram {
    let mut h = EditDistanceHistogram::default();
    'outer: for tu in &ds.trajectories {
        let seqs: Vec<Vec<u32>> = tu
            .instances
            .iter()
            .map(|i| TedView::from_instance(net, i).entries)
            .collect();
        for a in 0..seqs.len() {
            for b in a + 1..seqs.len() {
                h.push(edit_distance(&seqs[a], &seqs[b]));
                if h.pairs >= max_pairs {
                    break 'outer;
                }
            }
        }
    }
    h.normalize();
    h
}

/// Edit distances between instances of *different* uncertain trajectories
/// (Fig. 4b right). Deterministic striding keeps this O(`max_pairs`).
pub fn inter_trajectory_similarity(
    net: &RoadNetwork,
    ds: &Dataset,
    max_pairs: u64,
) -> EditDistanceHistogram {
    let mut h = EditDistanceHistogram::default();
    let m = ds.trajectories.len();
    if m < 2 {
        return h;
    }
    // Stride through trajectory pairs (j, j + stride) comparing their top
    // instances.
    let mut j = 0usize;
    let mut stride = 1usize;
    while h.pairs < max_pairs {
        let k = j + stride;
        if k >= m {
            stride += 1;
            j = 0;
            if stride >= m {
                break;
            }
            continue;
        }
        let a = TedView::from_instance(net, ds.trajectories[j].top_instance()).entries;
        let b = TedView::from_instance(net, ds.trajectories[k].top_instance()).entries;
        h.push(edit_distance(&a, &b));
        j += 1;
    }
    h.normalize();
    h
}

/// Table 5 style dataset summary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DatasetSummary {
    /// Number of uncertain trajectories.
    pub trajectories: usize,
    /// Mean instances per trajectory.
    pub avg_instances: f64,
    /// Mean path edges per instance.
    pub avg_edges: f64,
    /// Mean samples per trajectory.
    pub avg_samples: f64,
    /// Raw footprint in bytes.
    pub raw_bytes: u64,
}

/// Computes the Table 5 summary.
pub fn summarize(ds: &Dataset) -> DatasetSummary {
    let m = ds.trajectories.len();
    if m == 0 {
        return DatasetSummary::default();
    }
    let mut instances = 0usize;
    let mut edges = 0usize;
    let mut samples = 0usize;
    for tu in &ds.trajectories {
        instances += tu.instance_count();
        samples += tu.times.len();
        for inst in &tu.instances {
            edges += inst.path.len();
        }
    }
    DatasetSummary {
        trajectories: m,
        avg_instances: instances as f64 / m as f64,
        avg_edges: if instances > 0 {
            edges as f64 / instances as f64
        } else {
            0.0
        },
        avg_samples: samples as f64 / m as f64,
        raw_bytes: crate::size::dataset_uncompressed_bits(ds).total() / 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dataset;
    use crate::paper_fixture;

    fn paper_dataset() -> (utcq_network::RoadNetwork, Dataset) {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu],
        };
        (fx.example.net, ds)
    }

    #[test]
    fn deviations_of_running_example() {
        let (_, ds) = paper_dataset();
        let h = interval_deviations(&ds);
        // Deviations 0,1,0,−1,0,0 → 4/6 zero, 2/6 one.
        assert!((h.zero - 4.0 / 6.0).abs() < 1e-12);
        assert!((h.one - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.within_one(), 1.0);
        assert_eq!(h.over100, 0.0);
    }

    #[test]
    fn intra_similarity_of_running_example() {
        let (net, ds) = paper_dataset();
        let h = intra_trajectory_similarity(&net, &ds, 1000);
        assert_eq!(h.pairs, 3); // three instance pairs
        assert_eq!(h.d0_2, 1.0); // all within edit distance 2
    }

    #[test]
    fn inter_similarity_needs_two_trajectories() {
        let (net, ds) = paper_dataset();
        let h = inter_trajectory_similarity(&net, &ds, 1000);
        assert_eq!(h.pairs, 0);
    }

    #[test]
    fn summary_of_running_example() {
        let (_, ds) = paper_dataset();
        let s = summarize(&ds);
        assert_eq!(s.trajectories, 1);
        assert!((s.avg_instances - 3.0).abs() < 1e-12);
        assert!((s.avg_samples - 7.0).abs() < 1e-12);
        // Instance paths have 7, 7 and 8 edges.
        assert!((s.avg_edges - 22.0 / 3.0).abs() < 1e-12);
        assert!(s.raw_bytes > 0);
    }

    #[test]
    fn empty_dataset_summary() {
        let ds = Dataset {
            name: "empty".into(),
            default_interval: 10,
            trajectories: vec![],
        };
        assert_eq!(summarize(&ds), DatasetSummary::default());
        let h = interval_deviations(&ds);
        assert_eq!(h.within_one(), 0.0);
    }
}
