//! Spatio-temporal interpolation along instances.
//!
//! Probabilistic *where* queries return the location of an instance at an
//! arbitrary timestamp, and *when* queries return the time an instance
//! passed an arbitrary mapped location (Definitions 10–11). Between
//! samples the object is assumed to move at constant speed along its path,
//! which is how the paper's Example 3 turns the samples at 5:19:25 and
//! 5:23:25 into the answer `⟨v6→v7, 150⟩` at 5:21:25.

use utcq_network::{EdgeId, Point, RoadNetwork};

use crate::model::{Instance, MappedLocation, PathPosition};

/// Cumulative network distance from the path start to a position.
pub fn path_distance(net: &RoadNetwork, path: &[EdgeId], pos: PathPosition) -> f64 {
    let before: f64 = path[..pos.path_idx as usize]
        .iter()
        .map(|&e| net.edge_length(e))
        .sum();
    before + pos.rd * net.edge_length(path[pos.path_idx as usize])
}

/// Maps a network distance from the path start back to a position.
///
/// Distances beyond the path clamp to its end.
pub fn position_at_distance(net: &RoadNetwork, path: &[EdgeId], mut d: f64) -> PathPosition {
    for (i, &e) in path.iter().enumerate() {
        let len = net.edge_length(e);
        if d <= len || i == path.len() - 1 {
            let rd = if len <= 0.0 {
                0.0
            } else {
                (d / len).clamp(0.0, 1.0)
            };
            return PathPosition {
                path_idx: i as u32,
                rd,
            };
        }
        d -= len;
    }
    PathPosition {
        path_idx: path.len().saturating_sub(1) as u32,
        rd: 0.0,
    }
}

/// The mapped location of an instance at time `t`, or `None` if `t` is
/// outside the trajectory's time span.
pub fn location_at(
    net: &RoadNetwork,
    inst: &Instance,
    times: &[i64],
    t: i64,
) -> Option<MappedLocation> {
    let n = times.len();
    if n == 0 || t < times[0] || t > times[n - 1] {
        return None;
    }
    // partition_point gives the first index with times[i] >= t.
    let hi = times.partition_point(|&x| x < t);
    if times[hi] == t {
        return Some(inst.location(net, hi));
    }
    let lo = hi - 1;
    let d0 = path_distance(net, &inst.path, inst.positions[lo]);
    let d1 = path_distance(net, &inst.path, inst.positions[hi]);
    let frac = (t - times[lo]) as f64 / (times[hi] - times[lo]) as f64;
    let d = d0 + frac * (d1 - d0);
    let pos = position_at_distance(net, &inst.path, d);
    let edge = inst.path[pos.path_idx as usize];
    Some(MappedLocation {
        edge,
        ndist: pos.rd * net.edge_length(edge),
    })
}

/// The planar point of an instance at time `t`.
pub fn point_at(net: &RoadNetwork, inst: &Instance, times: &[i64], t: i64) -> Option<Point> {
    location_at(net, inst, times, t).map(|l| net.point_on_edge(l.edge, l.ndist))
}

/// All times (possibly interpolated, hence fractional) at which an
/// instance passes the mapped location `⟨edge, rd⟩`.
///
/// The same edge can occur on a path more than once, so the result is a
/// list. Times are clamped to the sampled span: positions the object held
/// before its first or after its last sample are not reported.
pub fn times_at_location(
    net: &RoadNetwork,
    inst: &Instance,
    times: &[i64],
    edge: EdgeId,
    rd: f64,
) -> Vec<f64> {
    let mut out = Vec::new();
    if times.is_empty() {
        return out;
    }
    let dists: Vec<f64> = inst
        .positions
        .iter()
        .map(|&p| path_distance(net, &inst.path, p))
        .collect();
    let mut offset = 0.0;
    for &path_edge in &inst.path {
        let len = net.edge_length(path_edge);
        if path_edge == edge {
            let target = offset + rd * len;
            if let Some(t) = time_at_path_distance(times, &dists, target) {
                out.push(t);
            }
        }
        offset += len;
    }
    out
}

/// Interpolates the time at which the object reaches path distance
/// `target`, given the per-sample distances. `None` if the object never
/// reaches it within the sampled span.
fn time_at_path_distance(times: &[i64], dists: &[f64], target: f64) -> Option<f64> {
    const EPS: f64 = 1e-9;
    if target < dists[0] - EPS || target > dists[dists.len() - 1] + EPS {
        return None;
    }
    for i in 0..dists.len() - 1 {
        let (d0, d1) = (dists[i], dists[i + 1]);
        if target >= d0 - EPS && target <= d1 + EPS {
            if (d1 - d0).abs() <= EPS {
                return Some(times[i] as f64);
            }
            let frac = ((target - d0) / (d1 - d0)).clamp(0.0, 1.0);
            return Some(times[i] as f64 + frac * (times[i + 1] - times[i]) as f64);
        }
    }
    // target ≈ the final sample distance.
    Some(times[dists.len() - 1] as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_fixture;

    #[test]
    fn example3_where_answer() {
        // where(Tu¹, 5:21:25) on the top instance lands 150 m along
        // (v6→v7) (paper Example 3).
        let fx = paper_fixture::build();
        let net = &fx.example.net;
        let inst = &fx.tu.instances[0];
        let t = paper_fixture::hms(5, 21, 25);
        let loc = location_at(net, inst, &fx.tu.times, t).unwrap();
        assert_eq!(loc.edge, fx.example.edge(6, 7));
        assert!((loc.ndist - 150.0).abs() < 1e-9, "ndist={}", loc.ndist);
    }

    #[test]
    fn where_at_exact_sample() {
        let fx = paper_fixture::build();
        let net = &fx.example.net;
        let inst = &fx.tu.instances[0];
        let loc = location_at(net, inst, &fx.tu.times, fx.tu.times[2]).unwrap();
        assert_eq!(loc.edge, fx.example.edge(5, 6));
        assert!((loc.ndist - 0.5 * 8.0).abs() < 1e-9);
    }

    #[test]
    fn where_outside_span() {
        let fx = paper_fixture::build();
        let net = &fx.example.net;
        let inst = &fx.tu.instances[0];
        assert!(location_at(net, inst, &fx.tu.times, fx.tu.times[0] - 1).is_none());
        assert!(location_at(net, inst, &fx.tu.times, *fx.tu.times.last().unwrap() + 1).is_none());
    }

    #[test]
    fn example3_when_answer() {
        // when(Tu¹, ⟨v6→v7, 0.75⟩) returns 5:21:25 (paper Example 3:
        // rd 0.75 of the 200 m edge is exactly the where answer above).
        let fx = paper_fixture::build();
        let net = &fx.example.net;
        let inst = &fx.tu.instances[0];
        let ts = times_at_location(net, inst, &fx.tu.times, fx.example.edge(6, 7), 0.75);
        assert_eq!(ts.len(), 1);
        assert!((ts[0] - paper_fixture::hms(5, 21, 25) as f64).abs() < 1e-6);
    }

    #[test]
    fn when_outside_sampled_span() {
        let fx = paper_fixture::build();
        let net = &fx.example.net;
        let inst = &fx.tu.instances[0];
        // rd 0.1 of the first edge lies before the first sample (rd 0.875).
        let ts = times_at_location(net, inst, &fx.tu.times, fx.example.edge(1, 2), 0.1);
        assert!(ts.is_empty());
    }

    #[test]
    fn path_distance_roundtrip() {
        let fx = paper_fixture::build();
        let net = &fx.example.net;
        let inst = &fx.tu.instances[0];
        for &pos in &inst.positions {
            let d = path_distance(net, &inst.path, pos);
            let back = position_at_distance(net, &inst.path, d);
            let d2 = path_distance(net, &inst.path, back);
            assert!((d - d2).abs() < 1e-9);
        }
    }

    #[test]
    fn position_at_distance_clamps() {
        let fx = paper_fixture::build();
        let net = &fx.example.net;
        let path = &fx.tu.instances[0].path;
        let total: f64 = path.iter().map(|&e| net.edge_length(e)).sum();
        let end = position_at_distance(net, path, total + 100.0);
        assert_eq!(end.path_idx as usize, path.len() - 1);
        assert_eq!(end.rd, 1.0);
        let start = position_at_distance(net, path, 0.0);
        assert_eq!(start.path_idx, 0);
        assert_eq!(start.rd, 0.0);
    }

    #[test]
    fn stationary_object_when() {
        // Two samples at the same position: the when query returns the
        // first time.
        use crate::model::{Instance, PathPosition};
        use utcq_network::gen::line;
        use utcq_network::VertexId;
        let net = line(3, 10.0);
        let e0 = net.find_edge(VertexId(0), VertexId(1)).unwrap();
        let e1 = net.find_edge(VertexId(1), VertexId(2)).unwrap();
        let inst = Instance {
            path: vec![e0, e1],
            positions: vec![
                PathPosition {
                    path_idx: 0,
                    rd: 0.5,
                },
                PathPosition {
                    path_idx: 0,
                    rd: 0.5,
                },
                PathPosition {
                    path_idx: 1,
                    rd: 0.5,
                },
            ],
            prob: 1.0,
        };
        let times = vec![0, 10, 20];
        let ts = times_at_location(&net, &inst, &times, e0, 0.5);
        assert_eq!(ts, vec![0.0]);
    }
}
