//! The (improved) TED representation of an instance.
//!
//! TED (§2.2) represents a network-constrained trajectory as a start vertex
//! `SV`, an edge sequence `E` of outgoing-edge numbers where an edge
//! carrying `r > 1` mapped locations is followed by `r − 1` zeros, a
//! time-flag bit-string `T'` with one bit per `E` entry (1 ⇔ the entry
//! carries a mapped location), and the relative-distance sequence `D`.
//!
//! [`TedView::from_instance`] derives this view from an [`Instance`];
//! [`TedView::to_instance`] inverts it given the network — the pair is the
//! lossless core that the compressors round-trip through.

use utcq_network::{RoadNetwork, VertexId};

use crate::model::{Instance, PathPosition};

/// The TED-model view of one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TedView {
    /// Start vertex of the first edge.
    pub sv: VertexId,
    /// Edge sequence `E`: outgoing-edge numbers with `0` repeat markers.
    pub entries: Vec<u32>,
    /// Time flags `T'`: one bit per entry, including the first and last
    /// bits (which the *improved* representation later omits because they
    /// are always 1).
    pub flags: Vec<bool>,
    /// Relative distances `D`, one per set flag, in time order.
    pub rds: Vec<f64>,
    /// Instance probability.
    pub prob: f64,
}

/// Errors turning a TED view back into an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TedViewError {
    /// An outgoing-edge number did not resolve at the current vertex.
    BadEdgeNumber {
        /// Index of the offending entry.
        entry: usize,
        /// The outgoing-edge number that failed to resolve.
        number: u32,
    },
    /// A `0` repeat marker appeared before any edge.
    LeadingZero,
    /// `flags` and `entries` lengths differ.
    LengthMismatch,
    /// A repeat marker with a cleared flag, or too few/many distances.
    Inconsistent(&'static str),
}

impl std::fmt::Display for TedViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TedViewError::BadEdgeNumber { entry, number } => {
                write!(
                    f,
                    "entry {entry}: outgoing edge number {number} does not resolve"
                )
            }
            TedViewError::LeadingZero => write!(f, "edge sequence starts with a repeat marker"),
            TedViewError::LengthMismatch => write!(f, "flags and entries lengths differ"),
            TedViewError::Inconsistent(msg) => write!(f, "inconsistent view: {msg}"),
        }
    }
}

impl std::error::Error for TedViewError {}

impl TedView {
    /// Derives the TED view of an instance.
    pub fn from_instance(net: &RoadNetwork, inst: &Instance) -> Self {
        let mut entries = Vec::with_capacity(inst.path.len() + inst.positions.len());
        let mut flags = Vec::with_capacity(entries.capacity());
        let mut pos_iter = inst.positions.iter().peekable();
        for (i, &edge) in inst.path.iter().enumerate() {
            entries.push(net.edge_number(edge));
            let mut r = 0usize;
            while pos_iter.peek().is_some_and(|p| p.path_idx as usize == i) {
                pos_iter.next();
                r += 1;
            }
            flags.push(r >= 1);
            for _ in 1..r {
                entries.push(0);
                flags.push(true);
            }
        }
        TedView {
            sv: net.edge_from(inst.path[0]),
            entries,
            flags,
            rds: inst.rds(),
            prob: inst.prob,
        }
    }

    /// Reconstructs the instance from the view.
    pub fn to_instance(&self, net: &RoadNetwork) -> Result<Instance, TedViewError> {
        if self.entries.len() != self.flags.len() {
            return Err(TedViewError::LengthMismatch);
        }
        let mut path = Vec::new();
        let mut positions = Vec::new();
        let mut cur = self.sv;
        let mut rd_iter = self.rds.iter();
        for (i, (&no, &flag)) in self.entries.iter().zip(&self.flags).enumerate() {
            if no == 0 {
                if path.is_empty() {
                    return Err(TedViewError::LeadingZero);
                }
                if !flag {
                    return Err(TedViewError::Inconsistent(
                        "repeat marker without a mapped location",
                    ));
                }
            } else {
                let edge = net
                    .edge_by_number(cur, no)
                    .ok_or(TedViewError::BadEdgeNumber {
                        entry: i,
                        number: no,
                    })?;
                path.push(edge);
                cur = net.edge_to(edge);
            }
            if flag {
                let rd = *rd_iter
                    .next()
                    .ok_or(TedViewError::Inconsistent("fewer distances than flags"))?;
                positions.push(PathPosition {
                    path_idx: (path.len() - 1) as u32,
                    rd,
                });
            }
        }
        if rd_iter.next().is_some() {
            return Err(TedViewError::Inconsistent("more distances than flags"));
        }
        Ok(Instance {
            path,
            positions,
            prob: self.prob,
        })
    }

    /// Number of mapped locations (set flags).
    pub fn location_count(&self) -> usize {
        self.flags.iter().filter(|&&b| b).count()
    }

    /// `T'` with the first and last bits omitted — the paper's *improved*
    /// representation (§4.1), valid because both are always 1.
    pub fn trimmed_flags(&self) -> &[bool] {
        if self.flags.len() <= 2 {
            &[]
        } else {
            &self.flags[1..self.flags.len() - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_fixture;

    #[test]
    fn table3_edge_sequences() {
        let fx = paper_fixture::build();
        let views: Vec<_> = fx
            .tu
            .instances
            .iter()
            .map(|i| TedView::from_instance(&fx.example.net, i))
            .collect();
        assert_eq!(views[0].entries, vec![1, 2, 1, 2, 2, 0, 4, 1, 0]);
        assert_eq!(views[1].entries, vec![1, 1, 1, 2, 2, 0, 4, 1, 0]);
        assert_eq!(views[2].entries, vec![1, 2, 1, 2, 2, 0, 4, 1, 2]);
        // All three share the start vertex v1.
        for v in &views {
            assert_eq!(v.sv, fx.example.vertex(1));
        }
    }

    #[test]
    fn table3_flags_and_distances() {
        let fx = paper_fixture::build();
        let views: Vec<_> = fx
            .tu
            .instances
            .iter()
            .map(|i| TedView::from_instance(&fx.example.net, i))
            .collect();
        // Full flags (Table 2 shows instance 1 as ⟨1,0,1,0,1,1,1,1,1⟩).
        let f = |bits: &[u8]| bits.iter().map(|&b| b == 1).collect::<Vec<_>>();
        assert_eq!(views[0].flags, f(&[1, 0, 1, 0, 1, 1, 1, 1, 1]));
        assert_eq!(views[1].flags, f(&[1, 1, 0, 0, 1, 1, 1, 1, 1]));
        assert_eq!(views[2].flags, f(&[1, 0, 1, 0, 1, 1, 1, 1, 1]));
        // Trimmed flags match Table 3 exactly.
        assert_eq!(views[0].trimmed_flags(), &f(&[0, 1, 0, 1, 1, 1, 1])[..]);
        assert_eq!(views[1].trimmed_flags(), &f(&[1, 0, 0, 1, 1, 1, 1])[..]);
        assert_eq!(views[2].trimmed_flags(), &f(&[0, 1, 0, 1, 1, 1, 1])[..]);
        // Distances of Table 3.
        assert_eq!(views[0].rds, vec![0.875, 0.25, 0.5, 0.875, 0.5, 0.0, 0.875]);
        assert_eq!(views[2].rds, vec![0.875, 0.25, 0.5, 0.875, 0.5, 0.0, 0.5]);
    }

    #[test]
    fn roundtrip_all_paper_instances() {
        let fx = paper_fixture::build();
        for inst in &fx.tu.instances {
            let view = TedView::from_instance(&fx.example.net, inst);
            let back = view.to_instance(&fx.example.net).unwrap();
            assert_eq!(&back, inst);
        }
    }

    #[test]
    fn location_count_matches_times() {
        let fx = paper_fixture::build();
        for inst in &fx.tu.instances {
            let view = TedView::from_instance(&fx.example.net, inst);
            assert_eq!(view.location_count(), fx.tu.times.len());
        }
    }

    #[test]
    fn bad_views_rejected() {
        let fx = paper_fixture::build();
        let net = &fx.example.net;
        let view = TedView::from_instance(net, &fx.tu.instances[0]);

        let mut bad = view.clone();
        bad.entries[0] = 0;
        assert_eq!(bad.to_instance(net), Err(TedViewError::LeadingZero));

        let mut bad = view.clone();
        bad.entries[1] = 7; // v2 has only 2 out-edges
        assert!(matches!(
            bad.to_instance(net),
            Err(TedViewError::BadEdgeNumber {
                entry: 1,
                number: 7
            })
        ));

        let mut bad = view.clone();
        bad.flags.pop();
        assert_eq!(bad.to_instance(net), Err(TedViewError::LengthMismatch));

        let mut bad = view.clone();
        bad.rds.pop();
        assert!(matches!(
            bad.to_instance(net),
            Err(TedViewError::Inconsistent(_))
        ));

        let mut bad = view.clone();
        bad.rds.push(0.5);
        assert!(matches!(
            bad.to_instance(net),
            Err(TedViewError::Inconsistent(_))
        ));

        let mut bad = view;
        bad.flags[5] = false; // repeat marker must carry a location
        assert!(matches!(
            bad.to_instance(net),
            Err(TedViewError::Inconsistent(_))
        ));
    }
}
