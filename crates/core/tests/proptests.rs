//! Property-based tests for the UTCQ core: lossless structure round-trips
//! and bounded lossy error on arbitrary inputs.

use proptest::prelude::*;
use utcq_bitio::BitWriter;
use utcq_core::factor::{
    apply_d, apply_e, apply_t, decode_d, decode_e, decode_t, diff_d, encode_d, encode_e,
    encode_t, factorize_e, factorize_t,
};
use utcq_core::siar;

proptest! {
    #[test]
    fn e_factorization_roundtrips(
        refe in proptest::collection::vec(0u32..8, 1..40),
        nref in proptest::collection::vec(0u32..8, 1..40),
    ) {
        let f = factorize_e(&nref, &refe);
        prop_assert_eq!(apply_e(&f, &refe), nref.clone());
        let mut w = BitWriter::new();
        encode_e(&mut w, &f, refe.len(), nref.len(), 3).unwrap();
        let buf = w.finish();
        let mut r = buf.reader();
        prop_assert_eq!(decode_e(&mut r, &refe, 3).unwrap(), nref);
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn t_factorization_roundtrips(
        refb in proptest::collection::vec(any::<bool>(), 0..40),
        nref in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        let com = factorize_t(&nref, &refb);
        prop_assert_eq!(apply_t(&com, &refb), nref.clone());
        let mut w = BitWriter::new();
        encode_t(&mut w, &com, refb.len()).unwrap();
        let buf = w.finish();
        let mut r = buf.reader();
        let back = decode_t(&mut r, refb.len(), nref.len()).unwrap();
        prop_assert_eq!(apply_t(&back, &refb), nref);
    }

    #[test]
    fn d_patches_roundtrip(
        refd in proptest::collection::vec(0u64..128, 1..60),
        patches in proptest::collection::vec((any::<proptest::sample::Index>(), 0u64..128), 0..10),
    ) {
        let mut nref = refd.clone();
        for (idx, v) in &patches {
            let i = idx.index(nref.len());
            nref[i] = *v;
        }
        let d = diff_d(&nref, &refd);
        prop_assert_eq!(apply_d(&d, &refd), nref.clone());
        let mut w = BitWriter::new();
        encode_d(&mut w, &d, refd.len(), 7).unwrap();
        let buf = w.finish();
        let mut r = buf.reader();
        let back = decode_d(&mut r, refd.len(), 7).unwrap();
        prop_assert_eq!(apply_d(&back, &refd), nref);
    }

    #[test]
    fn siar_roundtrips_arbitrary_sequences(
        t0 in 0i64..(86_400 * 30),
        intervals in proptest::collection::vec(1i64..400, 0..100),
        ts in 1i64..60,
    ) {
        let mut times = vec![t0];
        for d in &intervals {
            times.push(times.last().unwrap() + d);
        }
        let buf = siar::encode(&times, ts).unwrap();
        prop_assert_eq!(siar::decode(&buf, times.len(), ts).unwrap(), times.clone());
        // Mid-stream resume from every sample.
        let pos = siar::deviation_positions(&buf, times.len()).unwrap();
        for (i, &p) in pos.iter().enumerate() {
            let tail = siar::decode_from(&buf, p, times[i], ts, times.len()).unwrap();
            prop_assert_eq!(&tail[..], &times[i..]);
        }
    }

    #[test]
    fn flag_counts_match_naive(
        refb in proptest::collection::vec(any::<bool>(), 0..30),
        nref in proptest::collection::vec(any::<bool>(), 0..30),
    ) {
        use utcq_core::flagarr::{nref_ones_before_full, FlagArray};
        let omega = FlagArray::new(&refb);
        let tcom = factorize_t(&nref, &refb);
        let mut full = vec![true];
        full.extend_from_slice(&nref);
        full.push(true);
        for g in 0..=full.len() {
            let naive: u32 = full[..g].iter().map(|&b| u32::from(b)).sum();
            prop_assert_eq!(
                nref_ones_before_full(&tcom, &refb, &omega, full.len(), g),
                naive
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dataset_roundtrip_randomized(seed in 0u64..5000, n in 2usize..12) {
        let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), n, seed);
        let params = utcq_core::CompressParams::with_interval(ds.default_interval);
        let cds = utcq_core::compress_dataset(&net, &ds, &params).unwrap();
        let back = utcq_core::decompress_dataset(&net, &cds).unwrap();
        for (a, b) in ds.trajectories.iter().zip(&back.trajectories) {
            utcq_core::decompress::check_lossy_roundtrip(a, b, params.eta_d, params.eta_p)
                .map_err(TestCaseError::fail)?;
        }
    }
}
