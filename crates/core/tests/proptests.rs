//! Randomized property tests for the UTCQ core: lossless structure
//! round-trips and bounded lossy error on arbitrary inputs.
//!
//! Seeded [`StdRng`] loops stand in for `proptest` (the build is
//! offline); every case is deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use utcq_bitio::BitWriter;
use utcq_core::factor::{
    apply_d, apply_e, apply_t, decode_d, decode_e, decode_t, diff_d, encode_d, encode_e, encode_t,
    factorize_e, factorize_t,
};
use utcq_core::siar;

fn rand_entries(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<u32> {
    let n = rng.gen_range(min_len..max_len);
    (0..n).map(|_| rng.gen_range(0u32..8)).collect()
}

fn rand_bools(rng: &mut StdRng, max_len: usize) -> Vec<bool> {
    let n = rng.gen_range(0..max_len);
    (0..n).map(|_| rng.gen::<bool>()).collect()
}

#[test]
fn e_factorization_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xEFAC);
    for _ in 0..256 {
        let refe = rand_entries(&mut rng, 1, 40);
        let nref = rand_entries(&mut rng, 1, 40);
        let f = factorize_e(&nref, &refe);
        assert_eq!(apply_e(&f, &refe), nref);
        let mut w = BitWriter::new();
        encode_e(&mut w, &f, refe.len(), nref.len(), 3).unwrap();
        let buf = w.finish();
        let mut r = buf.reader();
        assert_eq!(decode_e(&mut r, &refe, 3).unwrap(), nref);
        assert_eq!(r.remaining(), 0);
    }
}

#[test]
fn t_factorization_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0x7FAC);
    for _ in 0..256 {
        let refb = rand_bools(&mut rng, 40);
        let nref = rand_bools(&mut rng, 40);
        let com = factorize_t(&nref, &refb);
        assert_eq!(apply_t(&com, &refb), nref);
        let mut w = BitWriter::new();
        encode_t(&mut w, &com, refb.len()).unwrap();
        let buf = w.finish();
        let mut r = buf.reader();
        let back = decode_t(&mut r, refb.len(), nref.len()).unwrap();
        assert_eq!(apply_t(&back, &refb), nref);
    }
}

#[test]
fn d_patches_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xD9A);
    for _ in 0..256 {
        let n = rng.gen_range(1usize..60);
        let refd: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..128)).collect();
        let mut nref = refd.clone();
        for _ in 0..rng.gen_range(0..10) {
            let i = rng.gen_range(0..nref.len());
            nref[i] = rng.gen_range(0u64..128);
        }
        let d = diff_d(&nref, &refd);
        assert_eq!(apply_d(&d, &refd), nref);
        let mut w = BitWriter::new();
        encode_d(&mut w, &d, refd.len(), 7).unwrap();
        let buf = w.finish();
        let mut r = buf.reader();
        let back = decode_d(&mut r, refd.len(), 7).unwrap();
        assert_eq!(apply_d(&back, &refd), nref);
    }
}

#[test]
fn siar_roundtrips_arbitrary_sequences() {
    let mut rng = StdRng::seed_from_u64(0x51A2);
    for _ in 0..128 {
        let t0 = rng.gen_range(0i64..86_400 * 30);
        let ts = rng.gen_range(1i64..60);
        let mut times = vec![t0];
        for _ in 0..rng.gen_range(0..100) {
            times.push(times.last().unwrap() + rng.gen_range(1i64..400));
        }
        let buf = siar::encode(&times, ts).unwrap();
        assert_eq!(siar::decode(&buf, times.len(), ts).unwrap(), times);
        // Mid-stream resume from every sample.
        let pos = siar::deviation_positions(&buf, times.len()).unwrap();
        for (i, &p) in pos.iter().enumerate() {
            let tail = siar::decode_from(&buf, p, times[i], ts, times.len()).unwrap();
            assert_eq!(&tail[..], &times[i..]);
        }
    }
}

#[test]
fn flag_counts_match_naive() {
    use utcq_core::flagarr::{nref_ones_before_full, FlagArray};
    let mut rng = StdRng::seed_from_u64(0xF1A6);
    for _ in 0..256 {
        let refb = rand_bools(&mut rng, 30);
        let nref = rand_bools(&mut rng, 30);
        let omega = FlagArray::new(&refb);
        let tcom = factorize_t(&nref, &refb);
        let mut full = vec![true];
        full.extend_from_slice(&nref);
        full.push(true);
        for g in 0..=full.len() {
            let naive: u32 = full[..g].iter().map(|&b| u32::from(b)).sum();
            assert_eq!(
                nref_ones_before_full(&tcom, &refb, &omega, full.len(), g),
                naive
            );
        }
    }
}

#[test]
fn dataset_roundtrip_randomized() {
    let mut rng = StdRng::seed_from_u64(0xDA7A);
    for _ in 0..12 {
        let seed = rng.gen_range(0u64..5000);
        let n = rng.gen_range(2usize..12);
        let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), n, seed);
        let params = utcq_core::CompressParams::with_interval(ds.default_interval);
        let cds = utcq_core::compress_dataset(&net, &ds, &params).unwrap();
        let back = utcq_core::decompress_dataset(&net, &cds).unwrap();
        for (a, b) in ds.trajectories.iter().zip(&back.trajectories) {
            utcq_core::decompress::check_lossy_roundtrip(a, b, params.eta_d, params.eta_p)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
