//! Compressed query answers must match the uncompressed oracle up to the
//! PDDP error bounds — the property behind the paper's Fig. 11 (average
//! difference ≈ 0, F1 ≈ 1).

use std::sync::Arc;

use utcq_core::params::CompressParams;
use utcq_core::query::PageRequest;
use utcq_core::stiu::StiuParams;
use utcq_core::Store;
use utcq_core::{decompress::check_lossy_roundtrip, oracle};
use utcq_network::{Rect, RoadNetwork};
use utcq_traj::Dataset;

fn setup(seed: u64, n: usize) -> (RoadNetwork, Dataset) {
    utcq_datagen::generate(&utcq_datagen::profile::tiny(), n, seed)
}

fn store(net: &RoadNetwork, ds: &Dataset) -> Store {
    Store::build(
        Arc::new(net.clone()),
        ds,
        CompressParams::with_interval(ds.default_interval),
        StiuParams {
            partition_s: 600,
            grid_n: 16,
        },
    )
    .unwrap()
}

#[test]
fn where_matches_oracle() {
    let (net, ds) = setup(21, 20);
    let st = store(&net, &ds);
    let mut checked = 0usize;
    for tu in &ds.trajectories {
        let span = tu.times[tu.times.len() - 1] - tu.times[0];
        for k in 0..5 {
            let t = tu.times[0] + span * k / 4;
            for &alpha in &[0.0, 0.2, 0.5] {
                let want = oracle::where_query(&net, tu, t, alpha);
                let got = st
                    .where_query(tu.id, t, alpha, PageRequest::all())
                    .unwrap()
                    .into_items();
                // Probability quantization can flip borderline α
                // comparisons; filter those out identically on both sides
                // using the exact probability.
                let borderline =
                    |w: u32| (tu.instances[w as usize].prob - alpha).abs() <= 2.0 / 512.0;
                let want_core: Vec<_> = want.iter().filter(|h| !borderline(h.instance)).collect();
                let got_core: Vec<_> = got.iter().filter(|h| !borderline(h.instance)).collect();
                assert_eq!(want_core.len(), got_core.len(), "t={t} alpha={alpha}");
                for (w, g) in want_core.iter().zip(&got_core) {
                    assert_eq!(w.instance, g.instance);
                    // Average-difference metric: the location error is
                    // bounded by ηD accumulated over interpolation.
                    let pw = net.point_on_edge(w.loc.edge, w.loc.ndist);
                    let pg = net.point_on_edge(g.loc.edge, g.loc.ndist);
                    let err = pw.dist(pg);
                    assert!(err < 25.0, "where error {err} m at t={t}");
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 50, "too few comparisons: {checked}");
}

#[test]
fn when_matches_oracle() {
    let (net, ds) = setup(22, 20);
    let st = store(&net, &ds);
    let mut checked = 0usize;
    for tu in &ds.trajectories {
        // Query the middle edge of the most probable instance.
        let inst = tu.top_instance();
        let edge = inst.path[inst.path.len() / 2];
        for &alpha in &[0.0, 0.3] {
            let want = oracle::when_query(&net, tu, edge, 0.5, alpha);
            let got = st
                .when_query(tu.id, edge, 0.5, alpha, PageRequest::all())
                .unwrap()
                .into_items();
            // Decide "borderline α" per instance from the *exact*
            // probability, so both sides filter identically (probability
            // quantization may flip the comparison either way).
            let borderline = |w: u32| (tu.instances[w as usize].prob - alpha).abs() <= 2.0 / 512.0;
            let mut want_core: Vec<_> = want.iter().filter(|h| !borderline(h.instance)).collect();
            let mut got_core: Vec<_> = got.iter().filter(|h| !borderline(h.instance)).collect();
            // Quantized times can flip the order of near-simultaneous
            // hits; align by (instance, time) instead.
            want_core.sort_by(|a, b| a.instance.cmp(&b.instance).then(a.time.total_cmp(&b.time)));
            got_core.sort_by(|a, b| a.instance.cmp(&b.instance).then(a.time.total_cmp(&b.time)));
            assert_eq!(
                want_core.len(),
                got_core.len(),
                "traj={} alpha={alpha}",
                tu.id
            );
            for (w, g) in want_core.iter().zip(&got_core) {
                assert_eq!(w.instance, g.instance);
                assert!(
                    (w.time - g.time).abs() < 20.0,
                    "when error {} s",
                    (w.time - g.time).abs()
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 20, "too few comparisons: {checked}");
}

#[test]
fn range_matches_oracle() {
    let (net, ds) = setup(23, 25);
    let st = store(&net, &ds);
    let bounds = net.bounding_rect();
    let mut agree = 0usize;
    let mut total = 0usize;
    for k in 0..40 {
        let fx = (k % 8) as f64 / 8.0;
        let fy = (k % 5) as f64 / 5.0;
        let re = Rect::new(
            bounds.min_x + fx * bounds.width(),
            bounds.min_y + fy * bounds.height(),
            bounds.min_x + (fx + 0.25) * bounds.width(),
            bounds.min_y + (fy + 0.25) * bounds.height(),
        );
        let tq = ds.trajectories[k % ds.trajectories.len()].times[0] + 30;
        for &alpha in &[0.05, 0.3, 0.7] {
            let mut want = oracle::range_query(&net, &ds, &re, tq, alpha);
            let mut got = st
                .range_query(&re, tq, alpha, PageRequest::all())
                .unwrap()
                .into_items();
            want.sort_unstable();
            got.sort_unstable();
            total += 1;
            if want == got {
                agree += 1;
            } else {
                // Disagreements must stem from borderline probability
                // masses near α (quantization) — check symmetric diff is
                // small.
                let wset: std::collections::HashSet<_> = want.iter().collect();
                let gset: std::collections::HashSet<_> = got.iter().collect();
                let diff = wset.symmetric_difference(&gset).count();
                assert!(diff <= 2, "range answers diverge: {want:?} vs {got:?}");
            }
        }
    }
    // F1-style agreement should be near-perfect.
    assert!(
        agree as f64 / total as f64 > 0.9,
        "agreement {agree}/{total}"
    );
}

#[test]
fn end_to_end_roundtrip_large() {
    let (net, ds) = setup(24, 60);
    let params = CompressParams::with_interval(ds.default_interval);
    let cds = utcq_core::compress_dataset(&net, &ds, &params).unwrap();
    let back = utcq_core::decompress_dataset(&net, &cds).unwrap();
    for (a, b) in ds.trajectories.iter().zip(&back.trajectories) {
        check_lossy_roundtrip(a, b, params.eta_d, params.eta_p).unwrap();
    }
    // And the headline: it actually compresses.
    let r = cds.ratios();
    assert!(r.total > 2.0, "total ratio {}", r.total);
}
