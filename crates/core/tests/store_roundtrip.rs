//! Persistence and ingest-equivalence properties of the [`Store`] façade:
//!
//! * a store saved to a v2 container and reopened answers every query
//!   type identically (randomized over seeds);
//! * a legacy v1 container still opens through the compatibility path
//!   and answers identically;
//! * two-batch incremental ingest is equivalent to single-batch ingest —
//!   identical query answers for *where*/*when*/*range*. (Reference
//!   selection is per-trajectory, so in this implementation even the
//!   compressed sizes match exactly; the equivalence test asserts answer
//!   equality, the part the public API guarantees, and checks the ratio
//!   against an exact-match tolerance of zero separately.)

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use utcq_core::query::PageRequest;
use utcq_core::{CompressParams, Error, StiuParams, Store, StoreBuilder};
use utcq_network::{Rect, RoadNetwork};
use utcq_traj::Dataset;

fn setup(seed: u64, n: usize) -> (RoadNetwork, Dataset) {
    utcq_datagen::generate(&utcq_datagen::profile::tiny(), n, seed)
}

fn build_store(net: &RoadNetwork, ds: &Dataset) -> Store {
    Store::build(
        Arc::new(net.clone()),
        ds,
        CompressParams::with_interval(ds.default_interval),
        StiuParams {
            partition_s: 600,
            grid_n: 16,
        },
    )
    .unwrap()
}

/// Asserts that two stores answer a deterministic mixed workload
/// identically (exact equality — both run the same compressed payload).
fn assert_equal_answers(a: &Store, b: &Store, ds: &Dataset, rng: &mut StdRng) {
    let bounds = a.network().bounding_rect();
    for tu in &ds.trajectories {
        let span = tu.times[tu.times.len() - 1] - tu.times[0];
        let t = tu.times[0] + rng.gen_range(0..=span.max(1));
        for alpha in [0.0, 0.25, 0.6] {
            let wa = a.where_query(tu.id, t, alpha, PageRequest::all()).unwrap();
            let wb = b.where_query(tu.id, t, alpha, PageRequest::all()).unwrap();
            assert_eq!(wa.items, wb.items, "where tu={} t={t} α={alpha}", tu.id);

            let inst = tu.top_instance();
            let edge = inst.path[rng.gen_range(0..inst.path.len())];
            let rd = rng.gen_range(0.1..0.9);
            let na = a
                .when_query(tu.id, edge, rd, alpha, PageRequest::all())
                .unwrap();
            let nb = b
                .when_query(tu.id, edge, rd, alpha, PageRequest::all())
                .unwrap();
            assert_eq!(na.items, nb.items, "when tu={} α={alpha}", tu.id);
        }
    }
    for k in 0..10 {
        let fx = (k % 4) as f64 / 4.0;
        let re = Rect::new(
            bounds.min_x + fx * bounds.width(),
            bounds.min_y,
            bounds.min_x + (fx + 0.3) * bounds.width(),
            bounds.max_y,
        );
        let tq = ds.trajectories[k % ds.trajectories.len()].times[0] + 30;
        for alpha in [0.05, 0.4] {
            let ra = a.range_query(&re, tq, alpha, PageRequest::all()).unwrap();
            let rb = b.range_query(&re, tq, alpha, PageRequest::all()).unwrap();
            assert_eq!(ra.items, rb.items, "range k={k} α={alpha}");
        }
    }
}

#[test]
fn reopened_v2_store_answers_identically() {
    // Property, randomized over seeds: open(save(store)) ≡ store for all
    // three query types.
    let mut rng = StdRng::seed_from_u64(0x0C0FFEE);
    for _ in 0..4 {
        let seed = rng.gen_range(0u64..10_000);
        let (net, ds) = setup(seed, 12);
        let store = build_store(&net, &ds);

        let mut bytes = Vec::new();
        store.write(&mut bytes).unwrap();
        let reopened = Store::read(&mut bytes.as_slice()).unwrap();
        assert_eq!(reopened.len(), store.len(), "seed {seed}");
        assert_eq!(
            reopened.snapshot().compressed().compressed,
            store.snapshot().compressed().compressed,
            "seed {seed}"
        );
        assert_equal_answers(&store, &reopened, &ds, &mut rng);
    }
}

#[test]
fn v2_file_roundtrip_via_paths() {
    let (net, ds) = setup(77, 10);
    let store = build_store(&net, &ds);
    let path = std::env::temp_dir().join("utcq-test-roundtrip.utcq");
    store.save(&path).unwrap();
    let reopened = Store::open(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut rng = StdRng::seed_from_u64(1);
    assert_equal_answers(&store, &reopened, &ds, &mut rng);
}

#[test]
fn v1_container_opens_through_compat_path() {
    // Fixture: a v1 (dataset-only) container written by the legacy
    // writer must still load — with the network supplied out of band —
    // and answer queries identically to the originally built store.
    let (net, ds) = setup(55, 12);
    let store = build_store(&net, &ds);
    let path = std::env::temp_dir().join("utcq-test-v1-fixture.utcq");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        utcq_core::storage::save(store.snapshot().compressed(), &mut f).unwrap();
    }

    // The v2-only opener refuses with the dedicated error…
    match Store::open(&path) {
        Err(Error::NeedsNetwork) => {}
        other => panic!("expected NeedsNetwork, got {other:?}"),
    }

    // …and the compatibility path succeeds and agrees.
    let reopened = Store::open_v1(
        &path,
        Arc::new(net.clone()),
        StiuParams {
            partition_s: 600,
            grid_n: 16,
        },
    )
    .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reopened.len(), store.len());
    let mut rng = StdRng::seed_from_u64(2);
    assert_equal_answers(&store, &reopened, &ds, &mut rng);
}

#[test]
fn incremental_ingest_equals_single_batch() {
    // ingest(a).ingest(b) ≡ ingest(a ++ b) for all three query types.
    let mut rng = StdRng::seed_from_u64(0x1261);
    for round in 0..3 {
        let (net, ds) = setup(9000 + round, 14);
        let net = Arc::new(net);
        let params = CompressParams::with_interval(ds.default_interval);
        let stiu = StiuParams {
            partition_s: 600,
            grid_n: 16,
        };

        let split = rng.gen_range(1..ds.trajectories.len());
        let mut batch_a = ds.clone();
        let mut batch_b = ds.clone();
        batch_b.trajectories = batch_a.trajectories.split_off(split);

        let incremental = StoreBuilder::new(Arc::clone(&net), params)
            .stiu_params(stiu)
            .ingest(&batch_a)
            .unwrap()
            .ingest(&batch_b)
            .unwrap()
            .finish()
            .unwrap();
        let single = StoreBuilder::new(Arc::clone(&net), params)
            .stiu_params(stiu)
            .ingest(&ds)
            .unwrap()
            .finish()
            .unwrap();

        assert_eq!(incremental.len(), single.len());
        // Reference selection is per-trajectory, so batching cannot
        // change the compressed representation at all: the ratio
        // tolerance is exactly zero in this implementation.
        assert_eq!(
            incremental.snapshot().compressed().compressed,
            single.snapshot().compressed().compressed,
            "round {round}: compressed footprints diverge"
        );
        assert_eq!(incremental.ratios().total, single.ratios().total);

        assert_equal_answers(&incremental, &single, &ds, &mut rng);
    }
}

#[test]
fn ingest_order_does_not_change_answers() {
    // b-then-a produces different internal positions than a-then-b, but
    // identical query answers (range answers are sorted by id).
    let (net, ds) = setup(4321, 12);
    let net = Arc::new(net);
    let params = CompressParams::with_interval(ds.default_interval);
    let split = ds.trajectories.len() / 2;
    let mut batch_a = ds.clone();
    let mut batch_b = ds.clone();
    batch_b.trajectories = batch_a.trajectories.split_off(split);

    let ab = StoreBuilder::new(Arc::clone(&net), params)
        .ingest(&batch_a)
        .unwrap()
        .ingest(&batch_b)
        .unwrap()
        .finish()
        .unwrap();
    let ba = StoreBuilder::new(Arc::clone(&net), params)
        .ingest(&batch_b)
        .unwrap()
        .ingest(&batch_a)
        .unwrap()
        .finish()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    assert_equal_answers(&ab, &ba, &ds, &mut rng);
}
