//! Failure injection: decoders must reject corrupt or truncated bit
//! streams with an error — never panic, loop, or fabricate data
//! silently. Random and adversarial corruptions over every decoder.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use utcq_bitio::{BitBuf, BitWriter};
use utcq_core::factor;
use utcq_core::siar;

/// Builds a random bit buffer.
fn buf_from(bits: &[bool]) -> BitBuf {
    BitBuf::from_bits(bits)
}

fn rand_bits(rng: &mut StdRng, max_len: usize) -> Vec<bool> {
    let n = rng.gen_range(0..max_len);
    (0..n).map(|_| rng.gen::<bool>()).collect()
}

#[test]
fn random_streams_never_panic_e_decoder() {
    let mut rng = StdRng::seed_from_u64(0xE0B);
    for _ in 0..512 {
        let bits = rand_bits(&mut rng, 256);
        let ref_len = rng.gen_range(0usize..20);
        let refe: Vec<u32> = (0..ref_len as u32).map(|i| i % 5).collect();
        let buf = buf_from(&bits);
        let mut r = buf.reader();
        // Must return Ok or Err — the test passes unless it panics/hangs.
        let _ = factor::decode_e(&mut r, &refe, 3);
    }
}

#[test]
fn random_streams_never_panic_t_decoder() {
    let mut rng = StdRng::seed_from_u64(0x70B);
    for _ in 0..512 {
        let bits = rand_bits(&mut rng, 256);
        let buf = buf_from(&bits);
        let mut r = buf.reader();
        let _ = factor::decode_t(&mut r, rng.gen_range(0usize..20), rng.gen_range(0usize..20));
    }
}

#[test]
fn random_streams_never_panic_d_decoder() {
    let mut rng = StdRng::seed_from_u64(0xD0B);
    for _ in 0..512 {
        let bits = rand_bits(&mut rng, 256);
        let buf = buf_from(&bits);
        let mut r = buf.reader();
        let _ = factor::decode_d(&mut r, rng.gen_range(1usize..40), 7);
    }
}

#[test]
fn random_streams_never_panic_siar() {
    let mut rng = StdRng::seed_from_u64(0x51B);
    for _ in 0..512 {
        let bits = rand_bits(&mut rng, 256);
        let buf = buf_from(&bits);
        let _ = siar::decode(&buf, rng.gen_range(1usize..50), 10);
    }
}

#[test]
fn truncated_valid_streams_error_cleanly() {
    let mut rng = StdRng::seed_from_u64(0x7C07);
    for _ in 0..256 {
        let mut seq = vec![1000i64];
        for _ in 0..rng.gen_range(1..40) {
            seq.push(seq.last().unwrap() + rng.gen_range(1i64..300));
        }
        let buf = siar::encode(&seq, 10).unwrap();
        // Truncate the stream and retry the decode of the full length.
        let cut_frac = rng.gen_range(0.0f64..0.95);
        let cut = (buf.len_bits() as f64 * cut_frac) as usize;
        let bits = buf.to_bits();
        let truncated = buf_from(&bits[..cut]);
        if let Ok(decoded) = siar::decode(&truncated, seq.len(), 10) {
            // Only acceptable when nothing was actually lost.
            assert_eq!(decoded, seq);
        } // a clean error is the expected outcome otherwise
    }
}

#[test]
fn bitflip_corruption_is_detected_or_harmless() {
    // Flip every single bit of a compressed trajectory's Com_E stream:
    // the decoder must either error out or produce *some* sequence —
    // never panic. (Factor copies are bounds-checked against the
    // reference.)
    let refe = vec![1u32, 2, 1, 2, 2, 0, 4, 1, 0];
    let nref = vec![1u32, 1, 1, 2, 2, 0, 4, 1, 0];
    let f = factor::factorize_e(&nref, &refe);
    let mut w = BitWriter::new();
    factor::encode_e(&mut w, &f, refe.len(), nref.len(), 3).unwrap();
    let buf = w.finish();
    let bits = buf.to_bits();
    for i in 0..bits.len() {
        let mut flipped = bits.clone();
        flipped[i] = !flipped[i];
        let corrupt = BitBuf::from_bits(&flipped);
        let mut r = corrupt.reader();
        let _ = factor::decode_e(&mut r, &refe, 3);
    }
}

#[test]
fn exp_golomb_rejects_pathological_prefixes() {
    use utcq_bitio::golomb;
    // A stream of all-zeros looks like an unterminated Exp-Golomb prefix.
    let zeros = BitBuf::from_bits(&[false; 200]);
    let mut r = zeros.reader();
    assert!(golomb::decode_unsigned(&mut r).is_err());
    // All-ones is an unterminated deviation group prefix.
    let ones = BitBuf::from_bits(&[true; 200]);
    let mut r = ones.reader();
    assert!(golomb::decode_deviation(&mut r).is_err());
}
