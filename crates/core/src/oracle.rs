//! Brute-force query answers on *uncompressed* data.
//!
//! Used as ground truth: the paper's Fig. 11 measures the average
//! difference and F1 score between query answers on the original and the
//! compressed datasets; our integration tests do the same.

use utcq_network::{EdgeId, Rect, RoadNetwork};
use utcq_traj::interp::{location_at, point_at, times_at_location};
use utcq_traj::{Dataset, MappedLocation, UncertainTrajectory};

/// One oracle *where* answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleWhere {
    /// Instance index.
    pub instance: u32,
    /// Instance probability.
    pub prob: f64,
    /// Location at the query time.
    pub loc: MappedLocation,
}

/// One oracle *when* answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleWhen {
    /// Instance index.
    pub instance: u32,
    /// Instance probability.
    pub prob: f64,
    /// Passing time.
    pub time: f64,
}

/// Uncompressed **where** query.
pub fn where_query(
    net: &RoadNetwork,
    tu: &UncertainTrajectory,
    t: i64,
    alpha: f64,
) -> Vec<OracleWhere> {
    tu.instances
        .iter()
        .enumerate()
        .filter(|(_, inst)| inst.prob >= alpha)
        .filter_map(|(w, inst)| {
            location_at(net, inst, &tu.times, t).map(|loc| OracleWhere {
                instance: w as u32,
                prob: inst.prob,
                loc,
            })
        })
        .collect()
}

/// Uncompressed **when** query.
pub fn when_query(
    net: &RoadNetwork,
    tu: &UncertainTrajectory,
    edge: EdgeId,
    rd: f64,
    alpha: f64,
) -> Vec<OracleWhen> {
    let mut hits = Vec::new();
    for (w, inst) in tu.instances.iter().enumerate() {
        if inst.prob < alpha {
            continue;
        }
        for time in times_at_location(net, inst, &tu.times, edge, rd) {
            hits.push(OracleWhen {
                instance: w as u32,
                prob: inst.prob,
                time,
            });
        }
    }
    hits.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.instance.cmp(&b.instance)));
    hits
}

/// Uncompressed **range** query: ids of trajectories whose overlap
/// probability at `tq` reaches `alpha`.
pub fn range_query(net: &RoadNetwork, ds: &Dataset, re: &Rect, tq: i64, alpha: f64) -> Vec<u64> {
    let mut out = Vec::new();
    for tu in &ds.trajectories {
        let mass: f64 = tu
            .instances
            .iter()
            .filter(|inst| point_at(net, inst, &tu.times, tq).is_some_and(|p| re.contains(p)))
            .map(|inst| inst.prob)
            .sum();
        if mass >= alpha {
            out.push(tu.id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use utcq_traj::paper_fixture;

    #[test]
    fn oracle_where_matches_example3() {
        let fx = paper_fixture::build();
        let hits = where_query(&fx.example.net, &fx.tu, paper_fixture::hms(5, 21, 25), 0.25);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].loc.edge, fx.example.edge(6, 7));
        assert!((hits[0].loc.ndist - 150.0).abs() < 1e-9);
    }

    #[test]
    fn oracle_when_matches_example3() {
        let fx = paper_fixture::build();
        let hits = when_query(&fx.example.net, &fx.tu, fx.example.edge(6, 7), 0.75, 0.25);
        assert_eq!(hits.len(), 1);
        assert!((hits[0].time - paper_fixture::hms(5, 21, 25) as f64).abs() < 1e-6);
    }

    #[test]
    fn oracle_range_on_running_example() {
        let fx = paper_fixture::build();
        let ds = utcq_traj::Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        let t = paper_fixture::hms(5, 5, 25);
        let all = Rect::new(-10.0, -10.0, 70.0, 10.0);
        assert_eq!(range_query(&fx.example.net, &ds, &all, t, 0.5), vec![1]);
        let far = Rect::new(100.0, 100.0, 120.0, 120.0);
        assert!(range_query(&fx.example.net, &ds, &far, t, 0.5).is_empty());
    }
}
