//! Probabilistic queries over compressed uncertain trajectories (§5.3–5.4).
//!
//! All three query types operate on the compressed form, decompressing
//! only what the StIU index says is necessary:
//!
//! * **where**(Tuʲ, t, α) — the temporal index resumes time decoding
//!   mid-stream near `t`; only instances with `p ≥ α` are decoded and
//!   interpolated (Definition 10).
//! * **when**(Tuʲ, ⟨edge, rd⟩, α) — the spatial index's region tuples
//!   decide whether the trajectory reaches the query region at all, and
//!   Lemma 1 (`p_max < α`) skips decompressing a reference's entire
//!   non-reference set (Definition 11).
//! * **range**(Tu, RE, tq, α) — the interval map and region tuples
//!   produce candidates; a Lemma 4 probability bound prunes whole
//!   trajectories, and Lemma 2/3 subpath tests decide most instances
//!   without touching their `D` streams (Definition 12).

use std::collections::HashMap;

use utcq_bitio::CodecError;
use utcq_network::{Point, Rect, RoadNetwork, VertexId};
use utcq_traj::interp::{path_distance, position_at_distance};
use utcq_traj::{Dataset, Instance, MappedLocation};

use crate::compress::{compress_dataset, CompressedDataset};
use crate::compressed::{untrim_flags, CompressedTrajectory, DecodedRef};
use crate::decompress::DecompressError;
use crate::params::CompressParams;
use crate::siar;
use crate::stiu::{self, Stiu, StiuParams};

/// A compressed dataset plus its StIU index, ready for querying.
pub struct CompressedStore<'n> {
    /// The road network.
    pub net: &'n RoadNetwork,
    /// The compressed trajectories.
    pub cds: CompressedDataset,
    /// The index.
    pub stiu: Stiu,
    id_to_idx: HashMap<u64, u32>,
}

/// One *where* answer: an instance's location at the query time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhereHit {
    /// Original instance index within the trajectory.
    pub instance: u32,
    /// Instance probability (dequantized).
    pub prob: f64,
    /// The mapped location at the query time.
    pub loc: MappedLocation,
}

/// One *when* answer: a time at which an instance passed the location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhenHit {
    /// Original instance index within the trajectory.
    pub instance: u32,
    /// Instance probability (dequantized).
    pub prob: f64,
    /// Passing time in seconds (interpolated, hence fractional).
    pub time: f64,
}

impl<'n> CompressedStore<'n> {
    /// Compresses a dataset and builds its index.
    pub fn build(
        net: &'n RoadNetwork,
        ds: &Dataset,
        params: CompressParams,
        stiu_params: StiuParams,
    ) -> Result<Self, CodecError> {
        let cds = compress_dataset(net, ds, &params)?;
        let stiu = stiu::build(net, ds, &cds, stiu_params);
        let id_to_idx = cds
            .trajectories
            .iter()
            .enumerate()
            .map(|(i, ct)| (ct.id, i as u32))
            .collect();
        Ok(Self {
            net,
            cds,
            stiu,
            id_to_idx,
        })
    }

    /// Looks up a trajectory's position by id.
    pub fn traj_index(&self, id: u64) -> Option<u32> {
        self.id_to_idx.get(&id).copied()
    }

    /// Decodes the full time sequence of one trajectory.
    pub fn decode_times(&self, ct: &CompressedTrajectory) -> Result<Vec<i64>, CodecError> {
        siar::decode(
            &ct.t_bits,
            ct.n_times as usize,
            self.cds.params.default_interval,
        )
    }

    /// `(orig_idx, dequantized probability)` of every instance.
    fn instance_probs(&self, ct: &CompressedTrajectory) -> Vec<(u32, f64)> {
        let p_codec = self.cds.params.p_codec();
        let mut out = Vec::with_capacity(ct.instance_count());
        for r in &ct.refs {
            out.push((r.orig_idx, p_codec.dequantize(r.p_code)));
        }
        for n in &ct.nrefs {
            out.push((n.orig_idx, p_codec.dequantize(n.p_code)));
        }
        out.sort_by_key(|&(i, _)| i);
        out
    }

    /// Decodes one instance (by original index) into an [`Instance`],
    /// reusing previously decoded references via `ref_cache` — one decode
    /// per reference serves its whole `Rrs`, an advantage of the
    /// referential grouping.
    fn decode_instance_cached(
        &self,
        ct: &CompressedTrajectory,
        orig_idx: u32,
        ref_cache: &mut HashMap<u32, DecodedRef>,
    ) -> Result<Instance, DecompressError> {
        let d_codec = self.cds.params.d_codec();
        let p_codec = self.cds.params.p_codec();
        let n_locs = ct.n_times as usize;
        let cached_ref = |ref_idx: u32,
                              cache: &mut HashMap<u32, DecodedRef>|
         -> Result<DecodedRef, DecompressError> {
            if let Some(d) = cache.get(&ref_idx) {
                return Ok(d.clone());
            }
            let d = ct.refs[ref_idx as usize].decode(self.cds.w_e, n_locs, &d_codec)?;
            cache.insert(ref_idx, d.clone());
            Ok(d)
        };
        let (sv, dec, p_code): (VertexId, DecodedRef, u64) = if let Some(pos) =
            ct.refs.iter().position(|r| r.orig_idx == orig_idx)
        {
            let r = &ct.refs[pos];
            (r.sv, cached_ref(pos as u32, ref_cache)?, r.p_code)
        } else {
            let n = ct
                .nrefs
                .iter()
                .find(|n| n.orig_idx == orig_idx)
                .expect("instance index valid");
            let r = &ct.refs[n.ref_idx as usize];
            let dref = cached_ref(n.ref_idx, ref_cache)?;
            (
                r.sv,
                n.decode(&dref, self.cds.w_e, n_locs, &d_codec)?,
                n.p_code,
            )
        };
        let view = utcq_traj::TedView {
            sv,
            entries: dec.entries.clone(),
            flags: untrim_flags(&dec.trimmed_flags, dec.entries.len()),
            rds: dec.d_codes.iter().map(|&c| d_codec.dequantize(c)).collect(),
            prob: p_codec.dequantize(p_code),
        };
        Ok(view.to_instance(self.net)?)
    }

    /// Probabilistic **where** query (Definition 10).
    pub fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
    ) -> Result<Vec<WhereHit>, DecompressError> {
        let Some(j) = self.traj_index(traj_id) else {
            return Ok(Vec::new());
        };
        let ct = &self.cds.trajectories[j as usize];
        let node = &self.stiu.trajs[j as usize];
        let Some(tt) = node.temporal_at(t) else {
            return Ok(Vec::new()); // t precedes the trajectory
        };
        // Resume time decoding mid-stream until we bracket t.
        let ts = self.cds.params.default_interval;
        let window = siar::decode_from(
            &ct.t_bits,
            tt.pos as usize,
            tt.start,
            ts,
            (ct.n_times - 1 - tt.no) as usize,
        )?;
        let hi_local = window.partition_point(|&x| x < t);
        if hi_local >= window.len() {
            return Ok(Vec::new()); // t is past the last sample
        }
        let (lo, hi, t_lo, t_hi) = if window[hi_local] == t {
            let g = tt.no as usize + hi_local;
            (g, g, t, t)
        } else {
            debug_assert!(hi_local > 0, "temporal_at guarantees start <= t");
            let g = tt.no as usize + hi_local;
            (g - 1, g, window[hi_local - 1], window[hi_local])
        };

        let mut hits = Vec::new();
        let mut ref_cache = HashMap::new();
        for (orig_idx, prob) in self.instance_probs(ct) {
            if prob < alpha {
                continue;
            }
            let inst = self.decode_instance_cached(ct, orig_idx, &mut ref_cache)?;
            let loc = interpolate(self.net, &inst, lo, hi, t_lo, t_hi, t);
            hits.push(WhereHit {
                instance: orig_idx,
                prob,
                loc,
            });
        }
        Ok(hits)
    }

    /// Probabilistic **when** query (Definition 11), with Lemma 1
    /// filtering.
    pub fn when_query(
        &self,
        traj_id: u64,
        edge: utcq_network::EdgeId,
        rd: f64,
        alpha: f64,
    ) -> Result<Vec<WhenHit>, DecompressError> {
        let Some(j) = self.traj_index(traj_id) else {
            return Ok(Vec::new());
        };
        let ct = &self.cds.trajectories[j as usize];
        let node = &self.stiu.trajs[j as usize];
        let query_pt = self
            .net
            .point_on_edge(edge, rd * self.net.edge_length(edge));
        let cell = self.stiu.grid.cell_of(query_pt);

        let ref_tuples: Vec<_> = node.refs_in(cell).collect();
        if ref_tuples.is_empty() {
            // No instance of this trajectory enters the query region:
            // answer without touching the compressed payload at all.
            return Ok(Vec::new());
        }
        let p_codec = self.cds.params.p_codec();
        let times = self.decode_times(ct)?;
        let mut hits = Vec::new();
        let mut ref_cache = HashMap::new();
        for rt in ref_tuples {
            let cref = &ct.refs[rt.ref_idx as usize];
            let ref_p = p_codec.dequantize(cref.p_code);
            if rt.fv.is_some() && ref_p >= alpha {
                let inst = self.decode_instance_cached(ct, cref.orig_idx, &mut ref_cache)?;
                for time in
                    utcq_traj::interp::times_at_location(self.net, &inst, &times, edge, rd)
                {
                    hits.push(WhenHit {
                        instance: cref.orig_idx,
                        prob: ref_p,
                        time,
                    });
                }
            }
            // Lemma 1: if p_max < α, none of the reference's
            // non-references can contribute — skip their decompression.
            if rt.p_max < alpha {
                continue;
            }
            for nt in node.nrefs_in(cell) {
                let cnref = &ct.nrefs[nt.nref_idx as usize];
                if cnref.ref_idx != rt.ref_idx {
                    continue;
                }
                let p = p_codec.dequantize(cnref.p_code);
                if p < alpha {
                    continue;
                }
                let inst = self.decode_instance_cached(ct, cnref.orig_idx, &mut ref_cache)?;
                for time in
                    utcq_traj::interp::times_at_location(self.net, &inst, &times, edge, rd)
                {
                    hits.push(WhenHit {
                        instance: cnref.orig_idx,
                        prob: p,
                        time,
                    });
                }
            }
        }
        hits.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.instance.cmp(&b.instance)));
        hits.dedup_by(|a, b| a.instance == b.instance && (a.time - b.time).abs() < 1e-9);
        Ok(hits)
    }

    /// Probabilistic **range** query (Definition 12), with Lemma 2–4
    /// filtering. Returns matching trajectory ids.
    pub fn range_query(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
    ) -> Result<Vec<u64>, DecompressError> {
        let cells: std::collections::HashSet<utcq_network::CellId> = self
            .stiu
            .grid
            .cells_overlapping(re)
            .into_iter()
            .collect();
        let mut out = Vec::new();
        for &j in self.stiu.trajs_in_interval(tq) {
            let ct = &self.cds.trajectories[j as usize];
            let node = &self.stiu.trajs[j as usize];

            // Collect per-group total bounds over the query cells.
            // Iterating the trajectory's (few) tuples against the cell set
            // keeps this O(tuples) however fine the grid is.
            let mut group_bound: HashMap<u32, f64> = HashMap::new();
            let mut passing_refs: Vec<u32> = Vec::new();
            let mut passing_nrefs: Vec<u32> = Vec::new();
            for rt in &node.ref_tuples {
                if cells.contains(&rt.cell) {
                    *group_bound.entry(rt.ref_idx).or_insert(0.0) += rt.p_total;
                    if rt.fv.is_some() {
                        passing_refs.push(rt.ref_idx);
                    }
                }
            }
            for nt in &node.nref_tuples {
                if cells.contains(&nt.cell) {
                    passing_nrefs.push(nt.nref_idx);
                }
            }
            if group_bound.is_empty() {
                continue; // trajectory never enters RE
            }
            // Lemma 4: an upper bound below α prunes the trajectory.
            let bound: f64 = group_bound.values().map(|b| b.min(1.0)).sum();
            if bound < alpha {
                continue;
            }
            passing_refs.sort_unstable();
            passing_refs.dedup();
            passing_nrefs.sort_unstable();
            passing_nrefs.dedup();

            // Bracket tq in the time sequence.
            let Some(tt) = node.temporal_at(tq) else {
                continue;
            };
            let ts = self.cds.params.default_interval;
            let window = siar::decode_from(
                &ct.t_bits,
                tt.pos as usize,
                tt.start,
                ts,
                (ct.n_times - 1 - tt.no) as usize,
            )?;
            let hi_local = window.partition_point(|&x| x < tq);
            if hi_local >= window.len() {
                continue; // tq past the trajectory's end
            }
            let (lo, hi, t_lo, t_hi) = if window[hi_local] == tq {
                let g = tt.no as usize + hi_local;
                (g, g, tq, tq)
            } else {
                let g = tt.no as usize + hi_local;
                (g - 1, g, window[hi_local - 1], window[hi_local])
            };

            // Instances that pass RE cells, most probable first (Lemma 3
            // early accept).
            let p_codec = self.cds.params.p_codec();
            let mut members: Vec<(u32, f64)> = passing_refs
                .iter()
                .map(|&r| {
                    let cref = &ct.refs[r as usize];
                    (cref.orig_idx, p_codec.dequantize(cref.p_code))
                })
                .chain(passing_nrefs.iter().map(|&m| {
                    let cnref = &ct.nrefs[m as usize];
                    (cnref.orig_idx, p_codec.dequantize(cnref.p_code))
                }))
                .collect();
            members.sort_by(|a, b| b.1.total_cmp(&a.1));

            let mut acc = 0.0;
            let mut remaining: f64 = members.iter().map(|m| m.1).sum();
            let mut ref_cache = HashMap::new();
            for (orig_idx, p) in members {
                if acc >= alpha {
                    break; // Lemma 3: already enough probability mass
                }
                if acc + remaining < alpha {
                    break; // cannot reach α anymore
                }
                remaining -= p;
                let inst = self.decode_instance_cached(ct, orig_idx, &mut ref_cache)?;
                if instance_overlaps(self.net, &inst, re, lo, hi, t_lo, t_hi, tq) {
                    acc += p;
                }
            }
            if acc >= alpha {
                out.push(ct.id);
            }
        }
        Ok(out)
    }
}

/// Location of an instance at time `t ∈ [t_lo, t_hi]`, interpolating
/// between samples `lo` and `hi` at constant speed along the path.
fn interpolate(
    net: &RoadNetwork,
    inst: &Instance,
    lo: usize,
    hi: usize,
    t_lo: i64,
    t_hi: i64,
    t: i64,
) -> MappedLocation {
    if lo == hi || t_hi == t_lo {
        return inst.location(net, lo);
    }
    let d0 = path_distance(net, &inst.path, inst.positions[lo]);
    let d1 = path_distance(net, &inst.path, inst.positions[hi]);
    let frac = (t - t_lo) as f64 / (t_hi - t_lo) as f64;
    let pos = position_at_distance(net, &inst.path, d0 + frac * (d1 - d0));
    let e = inst.path[pos.path_idx as usize];
    MappedLocation {
        edge: e,
        ndist: pos.rd * net.edge_length(e),
    }
}

/// Does the instance overlap `re` at `tq`? Implements Lemma 2: if the
/// subpath between the bracketing samples lies entirely inside `re` the
/// answer is yes; if it never intersects `re` the answer is no; otherwise
/// the exact interpolated location decides.
#[allow(clippy::too_many_arguments)]
fn instance_overlaps(
    net: &RoadNetwork,
    inst: &Instance,
    re: &Rect,
    lo: usize,
    hi: usize,
    t_lo: i64,
    t_hi: i64,
    tq: i64,
) -> bool {
    let polyline = subpath_polyline(net, inst, lo, hi);
    let all_inside = polyline.iter().all(|&p| re.contains(p));
    if all_inside {
        return true;
    }
    let any_intersecting = polyline
        .windows(2)
        .any(|w| re.intersects_segment(w[0], w[1]))
        || (polyline.len() == 1 && re.contains(polyline[0]));
    if !any_intersecting {
        return false;
    }
    // Inconclusive: interpolate the exact location.
    let loc = interpolate(net, inst, lo, hi, t_lo, t_hi, tq);
    re.contains(net.point_on_edge(loc.edge, loc.ndist))
}

/// The planar polyline of the subpath between samples `lo` and `hi`.
fn subpath_polyline(net: &RoadNetwork, inst: &Instance, lo: usize, hi: usize) -> Vec<Point> {
    let a = inst.positions[lo];
    let b = inst.positions[hi];
    let la = inst.location(net, lo);
    let lb = inst.location(net, hi);
    let mut pts = vec![net.point_on_edge(la.edge, la.ndist)];
    for j in a.path_idx..b.path_idx {
        pts.push(net.coord(net.edge_to(inst.path[j as usize])));
    }
    pts.push(net.point_on_edge(lb.edge, lb.ndist));
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use utcq_traj::paper_fixture;

    fn paper_store(fx: &utcq_traj::paper_fixture::PaperFixture) -> CompressedStore<'_> {
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        CompressedStore::build(
            &fx.example.net,
            &ds,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
            StiuParams {
                partition_s: 900,
                grid_n: 4,
            },
        )
        .unwrap()
    }

    #[test]
    fn example3_where_on_compressed() {
        // where(Tu¹, 5:21:25, 0.25) → ⟨v6→v7, 150⟩ from Tu¹₁ only.
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let hits = store
            .where_query(1, paper_fixture::hms(5, 21, 25), 0.25)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].instance, 0);
        assert_eq!(hits[0].loc.edge, fx.example.edge(6, 7));
        assert!((hits[0].loc.ndist - 150.0).abs() < 1.6); // ηD on a 200 m edge
    }

    #[test]
    fn where_alpha_zero_returns_all() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let hits = store
            .where_query(1, paper_fixture::hms(5, 5, 0), 0.0)
            .unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn where_outside_span_is_empty() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        assert!(store
            .where_query(1, paper_fixture::hms(4, 0, 0), 0.0)
            .unwrap()
            .is_empty());
        assert!(store
            .where_query(1, paper_fixture::hms(6, 0, 0), 0.0)
            .unwrap()
            .is_empty());
        assert!(store.where_query(99, 0, 0.0).unwrap().is_empty());
    }

    #[test]
    fn example3_when_on_compressed() {
        // when(Tu¹, ⟨v6→v7, 0.75⟩, 0.25) → 5:21:25 from Tu¹₁ (and Tu¹₂?
        // both traverse (v6→v7), but Tu¹₂.p = 0.2 < 0.25).
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let hits = store
            .when_query(1, fx.example.edge(6, 7), 0.75, 0.25)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].instance, 0);
        let want = paper_fixture::hms(5, 21, 25) as f64;
        assert!((hits[0].time - want).abs() < 3.5, "time {}", hits[0].time);
    }

    #[test]
    fn when_low_alpha_includes_nonreferences() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let hits = store
            .when_query(1, fx.example.edge(6, 7), 0.75, 0.01)
            .unwrap();
        // All three instances traverse (v6→v7).
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn when_region_miss_is_empty() {
        // Edge (8→9) region is visited only by Tu¹₃; a location on the
        // stub edges is never visited.
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let e49 = fx
            .example
            .net
            .find_edge(fx.example.vertex(4), utcq_network::VertexId(10))
            .expect("stub edge");
        let hits = store.when_query(1, e49, 0.5, 0.0).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn example4_range_queries() {
        // range over a region covering the whole corridor at 5:05:25
        // with α = 0.5 → Tu¹; a far-away region → ∅.
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let t = paper_fixture::hms(5, 5, 25);
        let all = Rect::new(-10.0, -10.0, 70.0, 10.0);
        assert_eq!(store.range_query(&all, t, 0.5).unwrap(), vec![1]);
        let far = Rect::new(100.0, 100.0, 120.0, 120.0);
        assert!(store.range_query(&far, t, 0.5).unwrap().is_empty());
    }

    #[test]
    fn range_alpha_prunes() {
        // At 5:05:25 every instance sits between l0 (on v1→v2) and l1;
        // a region around the v10 detour only holds Tu¹₂ (p = 0.2).
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let t = paper_fixture::hms(5, 9, 0);
        // Between samples 1 and 2 the detour instance is near v10.
        let detour_region = Rect::new(10.0, 4.0, 22.0, 12.0);
        let hit = store.range_query(&detour_region, t, 0.1).unwrap();
        let miss = store.range_query(&detour_region, t, 0.5).unwrap();
        assert_eq!(hit, vec![1]);
        assert!(miss.is_empty());
    }

    #[test]
    fn range_outside_time_span() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let all = Rect::new(-10.0, -10.0, 70.0, 10.0);
        assert!(store
            .range_query(&all, paper_fixture::hms(7, 0, 0), 0.1)
            .unwrap()
            .is_empty());
    }
}
