//! Probabilistic queries over compressed uncertain trajectories (§5.3–5.4).
//!
//! This module holds the query *engine*: hit types, pagination
//! primitives, and the per-trajectory evaluation routines shared by the
//! public façade ([`crate::store::Store`]). All three query types operate
//! on the compressed form, decompressing only what the StIU index says is
//! necessary:
//!
//! * **where**(Tuʲ, t, α) — the temporal index resumes time decoding
//!   mid-stream near `t`; only instances with `p ≥ α` are decoded and
//!   interpolated (Definition 10).
//! * **when**(Tuʲ, ⟨edge, rd⟩, α) — the spatial index's region tuples
//!   decide whether the trajectory reaches the query region at all, and
//!   Lemma 1 (`p_max < α`) skips decompressing a reference's entire
//!   non-reference set (Definition 11).
//! * **range**(Tu, RE, tq, α) — the interval map and region tuples
//!   produce candidates; a Lemma 4 probability bound prunes whole
//!   trajectories, and Lemma 2/3 subpath tests decide most instances
//!   without touching their `D` streams (Definition 12).
//!
//! The engine itself is a borrowed view over the store's parts plus two
//! shared acceleration layers the store owns:
//!
//! * the [`crate::cache::DecodeCache`] — decoded references, instances,
//!   time streams and partial `bracket` time windows are memoized
//!   *across* queries behind `Arc`s, so a
//!   repeated or concurrent workload stops re-paying decode costs (each
//!   query additionally keeps a tiny per-call reference map so a cache
//!   sized to zero still reuses a reference across its `Rrs` within one
//!   call);
//! * the per-trajectory [`crate::plan::TrajPlan`] — `orig_idx → slot`
//!   lookup, precomputed probabilities, and the probability-descending
//!   member order, replacing the per-call linear scans and sorts the
//!   engine used to do.
//!
//! Nothing here panics on corrupt input: structural inconsistencies in a
//! container surface as [`Error::CorruptStore`].

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use utcq_network::{EdgeId, Point, Rect, RoadNetwork, VertexId};
use utcq_traj::interp::{path_distance, position_at_distance};
use utcq_traj::{Instance, MappedLocation};

use crate::cache::DecodeCache;
use crate::compress::CompressedDataset;
use crate::compressed::{untrim_flags, CompressedTrajectory, DecodedRef};
use crate::error::Error;
use crate::plan::{Slot, TrajPlan};
use crate::siar;
use crate::stiu::{Stiu, TrajIndex};

/// One *where* answer: an instance's location at the query time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhereHit {
    /// Original instance index within the trajectory.
    pub instance: u32,
    /// Instance probability (dequantized).
    pub prob: f64,
    /// The mapped location at the query time.
    pub loc: MappedLocation,
}

/// One *when* answer: a time at which an instance passed the location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhenHit {
    /// Original instance index within the trajectory.
    pub instance: u32,
    /// Instance probability (dequantized).
    pub prob: f64,
    /// Passing time in seconds (interpolated, hence fractional).
    pub time: f64,
}

/// A batched *range* query for [`crate::store::Store::par_range_query`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQuery {
    /// The query region `RE`.
    pub re: Rect,
    /// The query time `tq`.
    pub tq: i64,
    /// The probability threshold `α`.
    pub alpha: f64,
}

/// Default [`PageRequest::limit`]: large enough that per-trajectory
/// queries (bounded by instance counts) are returned whole, small enough
/// that a hostile `range` query cannot materialize an unbounded answer.
pub const DEFAULT_PAGE_LIMIT: usize = 1024;

/// Cursor + limit for the paginated query entry points.
///
/// Cursors are opaque offsets minted by the previous [`Page`]; answers
/// are deterministic for a fixed store, so walking pages with the
/// returned `next_cursor` enumerates the full answer exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRequest {
    /// Maximum number of items in the returned page.
    pub limit: usize,
    /// Resume position from the previous page's [`Page::next_cursor`];
    /// `None` starts from the beginning.
    pub cursor: Option<u64>,
}

impl Default for PageRequest {
    fn default() -> Self {
        Self {
            limit: DEFAULT_PAGE_LIMIT,
            cursor: None,
        }
    }
}

impl PageRequest {
    /// First page with a custom limit.
    pub fn first(limit: usize) -> Self {
        Self {
            limit,
            cursor: None,
        }
    }

    /// The page following a cursor minted by [`Page::next_cursor`].
    pub fn after(cursor: u64, limit: usize) -> Self {
        Self {
            limit,
            cursor: Some(cursor),
        }
    }

    /// No pagination: the whole answer in one page.
    pub fn all() -> Self {
        Self {
            limit: usize::MAX,
            cursor: None,
        }
    }
}

/// One page of query answers.
#[derive(Debug, Clone, PartialEq)]
pub struct Page<T> {
    /// The answers in this page (at most the requested limit).
    pub items: Vec<T>,
    /// Cursor for the next page; `None` when this page is the last.
    pub next_cursor: Option<u64>,
    /// Whether further answers remain past this page.
    pub has_more: bool,
}

impl<T> Page<T> {
    /// Unwraps the page into its items.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// Slices a fully materialized answer into the requested page, in
    /// place: the tail is truncated and the head drained out of the same
    /// allocation — no second vector, no per-item copy pass.
    pub(crate) fn slice(full: Vec<T>, req: PageRequest) -> Self {
        let len = full.len();
        let start = (req.cursor.unwrap_or(0) as usize).min(len);
        // A zero limit could never progress; serve at least one item.
        let end = start.saturating_add(req.limit.max(1)).min(len);
        let mut items = full;
        items.truncate(end);
        if start > 0 {
            items.drain(..start);
        }
        // A small page sliced out of a large answer would otherwise pin
        // the full answer's allocation for the page's lifetime.
        if items.capacity() > items.len().saturating_mul(2).max(64) {
            items.shrink_to_fit();
        }
        let has_more = end < len;
        Page {
            items,
            next_cursor: has_more.then_some(end as u64),
            has_more,
        }
    }
}

/// The query surface shared by every store shape.
///
/// Both the single-partition [`crate::store::Store`] and the partitioned
/// [`crate::shard::ShardedStore`] implement this trait, so services,
/// benchmarks and the CLI can be written against `&dyn QueryTarget` and
/// stay agnostic of how the trajectories are physically laid out. The
/// contract is strict: for the same dataset, every implementation must
/// return byte-identical answers and identical paginated *item*
/// sequences (cursor encodings may differ — a sharded cursor carries the
/// shard it was minted by; see `crate::shard`).
pub trait QueryTarget: Send + Sync {
    /// Number of trajectories queryable through this target.
    fn len(&self) -> usize;

    /// Whether the target holds no trajectories.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The road network the trajectories are mapped onto.
    fn network(&self) -> &Arc<RoadNetwork>;

    /// Probabilistic **where** query (Definition 10), paginated.
    fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhereHit>, Error>;

    /// Probabilistic **when** query (Definition 11), paginated.
    fn when_query(
        &self,
        traj_id: u64,
        edge: EdgeId,
        rd: f64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhenHit>, Error>;

    /// Probabilistic **range** query (Definition 12), paginated. Answers
    /// are trajectory ids ascending; the cursor is keyset-style (the last
    /// returned id), identical across implementations.
    fn range_query(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<u64>, Error>;

    /// Evaluates a batch of **range** queries in parallel; answers are
    /// unpaginated, in input order.
    fn par_range_query(&self, queries: &[RangeQuery]) -> Result<Vec<Vec<u64>>, Error>;

    /// Aggregated decode-cache counters across all partitions.
    fn cache_stats(&self) -> crate::cache::CacheStats;

    /// Reconfigures the total decode-cache byte budget (a sharded target
    /// splits it evenly across its partitions; `0` disables caching).
    fn set_cache_bytes(&self, bytes: usize);

    /// Drops every cached decode in every partition.
    fn clear_cache(&self);
}

/// Runs `run_one(0..n)` across the available cores, pulling indices from
/// a shared atomic counter — the work-queue threading model every
/// parallel query path in this crate uses. A skewed batch (a few
/// expensive items amid many cheap ones) keeps every thread busy until
/// the queue drains; results come back in input order.
///
/// Single shared queue, single pool: [`crate::shard::ShardedStore`] fans
/// out over shards *inside* `run_one`, so sharding never multiplies the
/// thread count.
pub(crate) fn par_run<T: Send>(
    n: usize,
    run_one: impl Fn(usize) -> Result<T, Error> + Sync,
) -> Result<Vec<T>, Error> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return (0..n).map(run_one).collect();
    }
    // Indexed answers collected per worker, merged in input order.
    type Answered<T> = Vec<(usize, Result<T, Error>)>;
    let next = AtomicUsize::new(0);
    let mut answered: Vec<Answered<T>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return local;
                        }
                        local.push((i, run_one(i)));
                    }
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => answered.push(local),
                // A worker panic is a bug in `run_one`; re-raise the
                // original payload on the caller instead of minting a
                // second panic here.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, r) in answered.into_iter().flatten() {
        out[i] = Some(r?); // bounds: the atomic queue only hands out i < n
    }
    out.into_iter()
        .map(|r| r.ok_or(Error::CorruptStore("parallel run left an index unanswered")))
        .collect()
}

/// Borrowed view over a store's parts — the engine the façade delegates
/// to. Keeping it borrow-based lets `par_range_query` share one engine
/// (and therefore one decode cache) across threads.
#[derive(Clone, Copy)]
pub(crate) struct QueryEngine<'a> {
    pub net: &'a RoadNetwork,
    pub cds: &'a CompressedDataset,
    pub stiu: &'a Stiu,
    pub plans: &'a crate::chunk::ChunkedVec<TrajPlan>,
    pub cache: &'a DecodeCache,
    /// Epoch of the snapshot this engine reads — every cache key this
    /// engine mints carries it, so entries of superseded epochs can
    /// never serve a newer snapshot (or vice versa).
    pub epoch: u64,
}

/// Per-call scratch map of decoded references: the first lookup of each
/// reference within a query goes through the shared cache (or decodes);
/// subsequent members of the same `Rrs` reuse the `Arc` without touching
/// a lock — and a disabled cache still decodes each reference only once
/// per call.
type LocalRefs = HashMap<u32, Arc<DecodedRef>>;

impl<'a> QueryEngine<'a> {
    /// The compressed trajectory, index node and query plan at position
    /// `j`, checked.
    fn parts(
        &self,
        j: u32,
    ) -> Result<(&'a CompressedTrajectory, &'a TrajIndex, &'a TrajPlan), Error> {
        let ct = self
            .cds
            .trajectories
            .get(j as usize)
            .ok_or(Error::CorruptStore("trajectory position out of range"))?;
        let node = self
            .stiu
            .trajs
            .get(j as usize)
            .ok_or(Error::CorruptStore("index node missing for trajectory"))?;
        let plan = self
            .plans
            .get(j as usize)
            .ok_or(Error::CorruptStore("query plan missing for trajectory"))?;
        Ok((ct, node, plan))
    }

    /// The full time sequence of the trajectory at position `j`,
    /// memoized in the shared cache.
    pub fn times(&self, j: u32, ct: &CompressedTrajectory) -> Result<Arc<Vec<i64>>, Error> {
        self.cache.times_or_decode(self.epoch, j, || {
            Ok(siar::decode(
                &ct.t_bits,
                ct.n_times as usize,
                self.cds.params.default_interval,
            )?)
        })
    }

    /// The decoded streams of reference `ref_idx` of trajectory `j`:
    /// per-call map first, shared cache second, decode last.
    fn ref_decoded(
        &self,
        j: u32,
        ct: &CompressedTrajectory,
        ref_idx: u32,
        local: &mut LocalRefs,
    ) -> Result<Arc<DecodedRef>, Error> {
        if let Some(d) = local.get(&ref_idx) {
            return Ok(Arc::clone(d));
        }
        let d = self.cache.ref_or_decode(self.epoch, j, ref_idx, || {
            let cref = ct
                .refs
                .get(ref_idx as usize)
                .ok_or(Error::CorruptStore("reference index out of range"))?;
            Ok(cref.decode(
                self.cds.w_e,
                ct.n_times as usize,
                &self.cds.params.d_codec(),
            )?)
        })?;
        local.insert(ref_idx, Arc::clone(&d));
        Ok(d)
    }

    /// Decodes one instance (by original index) into an [`Instance`].
    /// The plan resolves the instance's compressed slot in O(1); the
    /// shared cache serves repeated decodes across queries, and one
    /// reference decode serves its whole `Rrs` — the advantage of the
    /// referential grouping.
    fn decode_instance(
        &self,
        j: u32,
        ct: &CompressedTrajectory,
        plan: &TrajPlan,
        orig_idx: u32,
        local: &mut LocalRefs,
    ) -> Result<Arc<Instance>, Error> {
        self.cache.instance_or_decode(self.epoch, j, orig_idx, || {
            let d_codec = self.cds.params.d_codec();
            let n_locs = ct.n_times as usize;
            enum Decoded {
                Shared(Arc<DecodedRef>),
                Own(DecodedRef),
            }
            let (sv, dec): (VertexId, Decoded) = match plan.slot(orig_idx)? {
                Slot::Ref(pos) => {
                    let r = ct
                        .refs
                        .get(pos as usize)
                        .ok_or(Error::CorruptStore("plan slot points past refs"))?;
                    (r.sv, Decoded::Shared(self.ref_decoded(j, ct, pos, local)?))
                }
                Slot::NRef(pos) => {
                    let n = ct
                        .nrefs
                        .get(pos as usize)
                        .ok_or(Error::CorruptStore("plan slot points past nrefs"))?;
                    let r = ct
                        .refs
                        .get(n.ref_idx as usize)
                        .ok_or(Error::CorruptStore("non-reference points past refs"))?;
                    let dref = self.ref_decoded(j, ct, n.ref_idx, local)?;
                    (
                        r.sv,
                        Decoded::Own(n.decode(&dref, self.cds.w_e, n_locs, &d_codec)?),
                    )
                }
            };
            let dec = match &dec {
                Decoded::Shared(d) => d.as_ref(),
                Decoded::Own(d) => d,
            };
            let view = utcq_traj::TedView {
                sv,
                entries: dec.entries.clone(),
                flags: untrim_flags(&dec.trimmed_flags, dec.entries.len()),
                rds: dec.d_codes.iter().map(|&c| d_codec.dequantize(c)).collect(),
                prob: plan.prob(orig_idx)?,
            };
            Ok(view
                .to_instance(self.net)
                .map_err(crate::decompress::DecompressError::View)?)
        })
    }

    /// Brackets `t` in the trajectory's time sequence via the temporal
    /// index: `Ok(Some((lo, hi, t_lo, t_hi)))` when `t` falls inside the
    /// span, `Ok(None)` when it precedes or follows every sample.
    ///
    /// The partially decoded window (resumed mid-stream at the covering
    /// temporal tuple) is memoized in the shared cache under
    /// `(j, tuple.no)`, so repeated *where*/*range* probes near the same
    /// time stop re-paying the partial decode.
    fn bracket(
        &self,
        j: u32,
        ct: &CompressedTrajectory,
        node: &TrajIndex,
        t: i64,
    ) -> Result<Option<(usize, usize, i64, i64)>, Error> {
        let Some(tt) = node.temporal_at(t) else {
            return Ok(None); // t precedes the trajectory
        };
        // Resume time decoding mid-stream until we bracket t.
        let ts = self.cds.params.default_interval;
        let remaining = (ct.n_times as u64)
            .checked_sub(1 + u64::from(tt.no))
            .ok_or(Error::CorruptStore("temporal tuple past the sample count"))?;
        let window = self.cache.window_or_decode(self.epoch, j, tt.no, || {
            Ok(siar::decode_from(
                &ct.t_bits,
                tt.pos as usize,
                tt.start,
                ts,
                remaining as usize,
            )?)
        })?;
        let hi_local = window.partition_point(|&x| x < t);
        if hi_local >= window.len() {
            return Ok(None); // t is past the last sample
        }
        // bounds: hi_local < window.len() checked just above
        Ok(Some(if window[hi_local] == t {
            let g = tt.no as usize + hi_local;
            (g, g, t, t)
        } else {
            if hi_local == 0 {
                // temporal_at guarantees start <= t; a window that opens
                // past t means the index tuple is inconsistent.
                return Err(Error::CorruptStore("temporal tuple opens past query time"));
            }
            let g = tt.no as usize + hi_local;
            // bounds: 0 < hi_local < window.len() established above
            (g - 1, g, window[hi_local - 1], window[hi_local])
        }))
    }

    /// Probabilistic **where** query (Definition 10) on the trajectory at
    /// position `j`, fully materialized.
    pub fn where_query(&self, j: u32, t: i64, alpha: f64) -> Result<Vec<WhereHit>, Error> {
        let (ct, node, plan) = self.parts(j)?;
        let Some((lo, hi, t_lo, t_hi)) = self.bracket(j, ct, node, t)? else {
            return Ok(Vec::new());
        };
        let mut hits = Vec::new();
        let mut local = LocalRefs::new();
        for (orig_idx, &prob) in plan.probs().iter().enumerate() {
            if prob < alpha {
                continue;
            }
            let orig_idx = orig_idx as u32;
            let inst = self.decode_instance(j, ct, plan, orig_idx, &mut local)?;
            let loc = interpolate(self.net, &inst, lo, hi, t_lo, t_hi, t)?;
            hits.push(WhereHit {
                instance: orig_idx,
                prob,
                loc,
            });
        }
        Ok(hits)
    }

    /// Probabilistic **when** query (Definition 11) with Lemma 1
    /// filtering, on the trajectory at position `j`, fully materialized.
    pub fn when_query(
        &self,
        j: u32,
        edge: utcq_network::EdgeId,
        rd: f64,
        alpha: f64,
    ) -> Result<Vec<WhenHit>, Error> {
        let (ct, node, plan) = self.parts(j)?;
        let query_pt = self
            .net
            .point_on_edge(edge, rd * self.net.edge_length(edge));
        let cell = self.stiu.grid.cell_of(query_pt);

        // Negative cache: a recorded region miss answers without even
        // scanning the region tuples again.
        if self.cache.when_miss_hit(self.epoch, j, cell.0) {
            return Ok(Vec::new());
        }
        let ref_tuples: Vec<_> = node.refs_in(cell).collect();
        if ref_tuples.is_empty() {
            // No instance of this trajectory enters the query region:
            // answer without touching the compressed payload at all —
            // and remember that, so the next probe of this cell skips
            // the tuple scan too.
            self.cache.note_when_miss(self.epoch, j, cell.0);
            return Ok(Vec::new());
        }
        let times = self.times(j, ct)?;
        let mut hits = Vec::new();
        let mut local = LocalRefs::new();
        for rt in ref_tuples {
            let cref = ct
                .refs
                .get(rt.ref_idx as usize)
                .ok_or(Error::CorruptStore("region tuple points past refs"))?;
            let ref_p = plan.prob(cref.orig_idx)?;
            if rt.fv.is_some() && ref_p >= alpha {
                let inst = self.decode_instance(j, ct, plan, cref.orig_idx, &mut local)?;
                for time in utcq_traj::interp::times_at_location(self.net, &inst, &times, edge, rd)
                {
                    hits.push(WhenHit {
                        instance: cref.orig_idx,
                        prob: ref_p,
                        time,
                    });
                }
            }
            // Lemma 1: if p_max < α, none of the reference's
            // non-references can contribute — skip their decompression.
            if rt.p_max < alpha {
                continue;
            }
            for nt in node.nrefs_in(cell) {
                let cnref = ct
                    .nrefs
                    .get(nt.nref_idx as usize)
                    .ok_or(Error::CorruptStore("region tuple points past nrefs"))?;
                if cnref.ref_idx != rt.ref_idx {
                    continue;
                }
                let p = plan.prob(cnref.orig_idx)?;
                if p < alpha {
                    continue;
                }
                let inst = self.decode_instance(j, ct, plan, cnref.orig_idx, &mut local)?;
                for time in utcq_traj::interp::times_at_location(self.net, &inst, &times, edge, rd)
                {
                    hits.push(WhenHit {
                        instance: cnref.orig_idx,
                        prob: p,
                        time,
                    });
                }
            }
        }
        hits.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.instance.cmp(&b.instance)));
        hits.dedup_by(|a, b| a.instance == b.instance && (a.time - b.time).abs() < 1e-9);
        Ok(hits)
    }

    /// Does the trajectory at position `j` match **range**(RE, tq, α)
    /// (Definition 12)? Applies the Lemma 2–4 filters.
    pub fn range_matches(
        &self,
        j: u32,
        cells: &HashSet<utcq_network::CellId>,
        re: &Rect,
        tq: i64,
        alpha: f64,
    ) -> Result<bool, Error> {
        self.range_matches_with(j, cells, re, tq, alpha, &mut RangeScratch::new())
    }

    /// [`QueryEngine::range_matches`] against caller-owned scratch: the
    /// batch scan engine keeps one [`RangeScratch`] per worker so a
    /// whole batch of queries shares a handful of allocations instead
    /// of paying five per candidate. The answer is identical to the
    /// fresh-scratch path — every accumulation order below is a
    /// deterministic function of the trajectory's structure.
    pub(crate) fn range_matches_with(
        &self,
        j: u32,
        cells: &HashSet<utcq_network::CellId>,
        re: &Rect,
        tq: i64,
        alpha: f64,
        scratch: &mut RangeScratch,
    ) -> Result<bool, Error> {
        scratch.reset();
        let (ct, node, plan) = self.parts(j)?;

        // Collect per-group total bounds over the query cells.
        // Iterating the trajectory's (few) tuples against the cell set
        // keeps this O(tuples) however fine the grid is. Groups
        // accumulate in first-seen tuple order (a linear scan over the
        // few distinct groups), so the Lemma 4 sum below adds terms in
        // a deterministic order.
        for rt in &node.ref_tuples {
            if cells.contains(&rt.cell) {
                match scratch
                    .group_bound
                    .iter_mut()
                    .find(|(r, _)| *r == rt.ref_idx)
                {
                    Some((_, b)) => *b += rt.p_total,
                    None => scratch.group_bound.push((rt.ref_idx, rt.p_total)),
                }
                if rt.fv.is_some() {
                    scratch.passing_refs.push(rt.ref_idx);
                }
            }
        }
        for nt in &node.nref_tuples {
            if cells.contains(&nt.cell) {
                scratch.passing_nrefs.push(nt.nref_idx);
            }
        }
        if scratch.group_bound.is_empty() {
            return Ok(false); // trajectory never enters RE
        }
        // Lemma 4: an upper bound below α prunes the trajectory.
        let bound: f64 = scratch.group_bound.iter().map(|(_, b)| b.min(1.0)).sum();
        if bound < alpha {
            return Ok(false);
        }
        scratch.passing_refs.sort_unstable();
        scratch.passing_refs.dedup();
        scratch.passing_nrefs.sort_unstable();
        scratch.passing_nrefs.dedup();

        // Bracket tq in the time sequence.
        let Some((lo, hi, t_lo, t_hi)) = self.bracket(j, ct, node, tq)? else {
            return Ok(false);
        };

        // Instances that pass RE cells, most probable first (Lemma 3
        // early accept). The plan's precomputed probability-descending
        // order replaces the per-call sort: membership is a set filter.
        for &r in &scratch.passing_refs {
            let cref = ct
                .refs
                .get(r as usize)
                .ok_or(Error::CorruptStore("region tuple points past refs"))?;
            scratch.passing.insert(cref.orig_idx);
        }
        for &m in &scratch.passing_nrefs {
            let cnref = ct
                .nrefs
                .get(m as usize)
                .ok_or(Error::CorruptStore("region tuple points past nrefs"))?;
            scratch.passing.insert(cnref.orig_idx);
        }
        let members = plan
            .by_prob_desc()
            .iter()
            .filter(|(orig_idx, _)| scratch.passing.contains(orig_idx));

        let mut acc = 0.0;
        let mut remaining: f64 = members.clone().map(|&(_, p)| p).sum();
        for &(orig_idx, p) in members {
            if acc >= alpha {
                break; // Lemma 3: already enough probability mass
            }
            if acc + remaining < alpha {
                break; // cannot reach α anymore
            }
            remaining -= p;
            let inst = self.decode_instance(j, ct, plan, orig_idx, &mut scratch.local)?;
            if instance_overlaps(self.net, &inst, re, lo, hi, t_lo, t_hi, tq)? {
                acc += p;
            }
        }
        Ok(acc >= alpha)
    }
}

/// Reusable allocations for one `range_matches` evaluation, cleared
/// between candidates. The single-query path builds one per call; the
/// batch engines keep one per worker for a whole batch.
pub(crate) struct RangeScratch {
    /// `(ref_idx, Σ p_total)` per group, in first-seen tuple order.
    group_bound: Vec<(u32, f64)>,
    passing_refs: Vec<u32>,
    passing_nrefs: Vec<u32>,
    /// Original indices of instances whose cell passes RE.
    passing: HashSet<u32>,
    local: LocalRefs,
}

impl RangeScratch {
    pub(crate) fn new() -> Self {
        Self {
            group_bound: Vec::new(),
            passing_refs: Vec::new(),
            passing_nrefs: Vec::new(),
            passing: HashSet::new(),
            local: LocalRefs::new(),
        }
    }

    /// Empties every collection, keeping their capacity.
    fn reset(&mut self) {
        self.group_bound.clear();
        self.passing_refs.clear();
        self.passing_nrefs.clear();
        self.passing.clear();
        self.local.clear();
    }
}

/// Float slack for the probability-mass prune: `range_matches` sums a
/// subset of the plan's probabilities in Lemma 3 order while
/// [`crate::plan::TrajPlan::prob_mass`] sums all of them in original
/// order, so the two can differ by accumulated ulps near the boundary.
/// Pruning only when α exceeds the mass by more than the slack keeps
/// the skip strictly conservative.
pub(crate) const RANGE_PRUNE_SLACK: f64 = 1e-9;

/// Whether the probability-mass bound rules a trajectory out before any
/// decode: even if every instance overlapped RE, the accumulator could
/// never reach α. A NaN α compares `false` here, so it never prunes —
/// and never matches, identically to the unpruned path.
pub(crate) fn range_pruned(mass: f64, alpha: f64) -> bool {
    alpha > mass + RANGE_PRUNE_SLACK
}

/// Location of an instance at time `t ∈ [t_lo, t_hi]`, interpolating
/// between samples `lo` and `hi` at constant speed along the path.
fn interpolate(
    net: &RoadNetwork,
    inst: &Instance,
    lo: usize,
    hi: usize,
    t_lo: i64,
    t_hi: i64,
    t: i64,
) -> Result<MappedLocation, Error> {
    if lo >= inst.positions.len() || hi >= inst.positions.len() {
        return Err(Error::CorruptStore("sample index past instance positions"));
    }
    if lo == hi || t_hi == t_lo {
        return Ok(inst.location(net, lo));
    }
    // bounds: lo/hi < positions.len() checked at function entry
    let d0 = path_distance(net, &inst.path, inst.positions[lo]);
    let d1 = path_distance(net, &inst.path, inst.positions[hi]);
    let frac = (t - t_lo) as f64 / (t_hi - t_lo) as f64;
    let pos = position_at_distance(net, &inst.path, d0 + frac * (d1 - d0));
    let e = *inst
        .path
        .get(pos.path_idx as usize)
        .ok_or(Error::CorruptStore("interpolated position past the path"))?;
    Ok(MappedLocation {
        edge: e,
        ndist: pos.rd * net.edge_length(e),
    })
}

/// Does the instance overlap `re` at `tq`? Implements Lemma 2: if the
/// subpath between the bracketing samples lies entirely inside `re` the
/// answer is yes; if it never intersects `re` the answer is no; otherwise
/// the exact interpolated location decides.
#[allow(clippy::too_many_arguments)]
fn instance_overlaps(
    net: &RoadNetwork,
    inst: &Instance,
    re: &Rect,
    lo: usize,
    hi: usize,
    t_lo: i64,
    t_hi: i64,
    tq: i64,
) -> Result<bool, Error> {
    let polyline = subpath_polyline(net, inst, lo, hi)?;
    let all_inside = polyline.iter().all(|&p| re.contains(p));
    if all_inside {
        return Ok(true);
    }
    let any_intersecting = polyline
        .windows(2)
        .any(|w| re.intersects_segment(w[0], w[1])) // bounds: windows(2) yields 2-slices
        || (polyline.len() == 1 && re.contains(polyline[0])); // bounds: len() == 1 checked
    if !any_intersecting {
        return Ok(false);
    }
    // Inconclusive: interpolate the exact location.
    let loc = interpolate(net, inst, lo, hi, t_lo, t_hi, tq)?;
    Ok(re.contains(net.point_on_edge(loc.edge, loc.ndist)))
}

/// The planar polyline of the subpath between samples `lo` and `hi`.
fn subpath_polyline(
    net: &RoadNetwork,
    inst: &Instance,
    lo: usize,
    hi: usize,
) -> Result<Vec<Point>, Error> {
    let (a, b) = match (inst.positions.get(lo), inst.positions.get(hi)) {
        (Some(&a), Some(&b)) => (a, b),
        _ => return Err(Error::CorruptStore("sample index past instance positions")),
    };
    if (b.path_idx as usize) >= inst.path.len() {
        return Err(Error::CorruptStore("sample position past the path"));
    }
    let la = inst.location(net, lo);
    let lb = inst.location(net, hi);
    let mut pts = vec![net.point_on_edge(la.edge, la.ndist)];
    for j in a.path_idx..b.path_idx {
        // bounds: j < b.path_idx, validated against path.len() above
        pts.push(net.coord(net.edge_to(inst.path[j as usize])));
    }
    pts.push(net.point_on_edge(lb.edge, lb.ndist));
    Ok(pts)
}
