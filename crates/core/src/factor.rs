//! Referential representation: factor lists for `E`, `T'`, and `D` (§4.2)
//! plus their variable-length binary encodings (§4.4).
//!
//! A non-reference is stored as a list of *factors* against its reference:
//!
//! * `E` uses the `(S, L, M)` scheme of FRESCO \[35\]: copy
//!   `ref[S..S+L]` then append the mismatched element `M`. Two rewrites
//!   (paper cases A and B): a trailing factor with no mismatch is `(S, L)`,
//!   and an element absent from the reference is `(S = |E(ref)|, M)`.
//! * `T'` uses `(S, L)` factors whose mismatch bit is *inferred* as
//!   `NOT(ref[S+L])`; the final factor instead carries an explicit
//!   has-mismatch flag (and bit) to avoid the end-of-reference ambiguity.
//! * `D` uses sparse `(pos, rd)` patches at the positions whose
//!   (quantized) relative distance differs from the reference — legal
//!   because all instances of one uncertain trajectory share `|D|`.
//!
//! The paper's Table 4 examples are unit tests below.

use utcq_bitio::{golomb, width_for_max, BitReader, BitWriter, CodecError};

// ---------------------------------------------------------------------------
// E factors
// ---------------------------------------------------------------------------

/// One factor of `Com_E(Nref, Ref)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EFactor {
    /// Copy `ref[s..s+l]`, then append the mismatch `m`.
    Copy {
        /// Start position in the reference.
        s: u32,
        /// Copied length.
        l: u32,
        /// First mismatched element after the copy.
        m: u32,
    },
    /// Copy `ref[s..s+l]` with no mismatch — only legal as the final
    /// factor (paper case A).
    Tail {
        /// Start position in the reference.
        s: u32,
        /// Copied length.
        l: u32,
    },
    /// An element absent from the reference (paper case B); encoded with
    /// `S = |E(ref)|`.
    Novel {
        /// The literal element.
        m: u32,
    },
}

/// Greedy longest-match factorization of `nref` against `refe`.
pub fn factorize_e(nref: &[u32], refe: &[u32]) -> Vec<EFactor> {
    let mut factors = Vec::new();
    let mut q = 0usize;
    while q < nref.len() {
        let (s, l) = longest_match(&nref[q..], refe);
        if l == 0 {
            factors.push(EFactor::Novel { m: nref[q] });
            q += 1;
        } else if q + l == nref.len() {
            factors.push(EFactor::Tail {
                s: s as u32,
                l: l as u32,
            });
            q += l;
        } else {
            factors.push(EFactor::Copy {
                s: s as u32,
                l: l as u32,
                m: nref[q + l],
            });
            q += l + 1;
        }
    }
    factors
}

/// Longest prefix of `needle` occurring anywhere in `hay`; ties prefer the
/// smallest start. Returns `(start, len)`.
fn longest_match(needle: &[u32], hay: &[u32]) -> (usize, usize) {
    if needle.is_empty() {
        return (0, 0);
    }
    let first = needle[0];
    let mut best = (0usize, 0usize);
    for s in 0..hay.len() {
        // Matches must start on the needle's first symbol, and a start
        // this late can no longer beat the current best.
        if hay[s] != first || hay.len() - s <= best.1 {
            continue;
        }
        let mut l = 1usize;
        while l < needle.len() && s + l < hay.len() && hay[s + l] == needle[l] {
            l += 1;
        }
        if l > best.1 {
            best = (s, l);
            if l == needle.len() {
                break;
            }
        }
    }
    best
}

/// Replays factors into the represented sequence.
pub fn apply_e(factors: &[EFactor], refe: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    for f in factors {
        match *f {
            EFactor::Copy { s, l, m } => {
                out.extend_from_slice(&refe[s as usize..(s + l) as usize]);
                out.push(m);
            }
            EFactor::Tail { s, l } => {
                out.extend_from_slice(&refe[s as usize..(s + l) as usize]);
            }
            EFactor::Novel { m } => out.push(m),
        }
    }
    out
}

/// Binary-encodes `Com_E`. `m_width` is the fixed width of outgoing-edge
/// numbers (`⌈log2(o+1)⌉` for max out-degree `o`).
pub fn encode_e(
    w: &mut BitWriter,
    factors: &[EFactor],
    ref_len: usize,
    nref_len: usize,
    m_width: u32,
) -> Result<(), CodecError> {
    let ws = width_for_max(ref_len as u64);
    let wl = width_for_max(ref_len as u64);
    golomb::encode_unsigned(w, factors.len() as u64)?;
    golomb::encode_unsigned(w, nref_len as u64)?;
    for f in factors {
        match *f {
            EFactor::Copy { s, l, m } => {
                w.write_bits(u64::from(s), ws)?;
                w.write_bits(u64::from(l), wl)?;
                w.write_bits(u64::from(m), m_width)?;
            }
            EFactor::Tail { s, l } => {
                w.write_bits(u64::from(s), ws)?;
                w.write_bits(u64::from(l), wl)?;
            }
            EFactor::Novel { m } => {
                w.write_bits(ref_len as u64, ws)?;
                w.write_bits(u64::from(m), m_width)?;
            }
        }
    }
    Ok(())
}

/// Decodes `Com_E` and replays it against the reference in one pass.
pub fn decode_e(r: &mut BitReader<'_>, refe: &[u32], m_width: u32) -> Result<Vec<u32>, CodecError> {
    let ref_len = refe.len();
    let ws = width_for_max(ref_len as u64);
    let wl = width_for_max(ref_len as u64);
    let h = golomb::decode_unsigned(r)? as usize;
    let nref_len = golomb::decode_unsigned(r)? as usize;
    let mut out = Vec::with_capacity(nref_len);
    for i in 0..h {
        let s = r.read_bits(ws)? as usize;
        if s == ref_len {
            out.push(r.read_bits(m_width)? as u32);
            continue;
        }
        let l = r.read_bits(wl)? as usize;
        if s + l > ref_len {
            return Err(CodecError::Malformed("E factor copies past reference end"));
        }
        out.extend_from_slice(&refe[s..s + l]);
        let is_tail = i == h - 1 && out.len() == nref_len;
        if !is_tail {
            out.push(r.read_bits(m_width)? as u32);
        }
    }
    if out.len() != nref_len {
        return Err(CodecError::Malformed("E factors produce the wrong length"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// T' factors
// ---------------------------------------------------------------------------

/// One `(S, L)` factor of `Com_T'`: copy `ref[s..s+l]` then append the
/// inferred mismatch `NOT(ref[s+l])` (non-final factors only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TFactor {
    /// Start position in the reference.
    pub s: u32,
    /// Copied length.
    pub l: u32,
}

/// The referential representation of a trimmed time-flag bit-string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TCom {
    /// `Com_T' = ∅`: the non-reference equals the reference.
    Identical,
    /// The reference is empty but the non-reference is not: store verbatim.
    Raw(Vec<bool>),
    /// Factor list; `last_m` is the explicit mismatch bit of the final
    /// factor (`None` when the final factor is an exact tail copy).
    Factors {
        /// The `(S, L)` factors.
        factors: Vec<TFactor>,
        /// Explicit mismatch bit of the last factor, if any.
        last_m: Option<bool>,
    },
}

impl TCom {
    /// Number of factors `H` (0 for `Identical` / `Raw`).
    pub fn factor_count(&self) -> usize {
        match self {
            TCom::Factors { factors, .. } => factors.len(),
            _ => 0,
        }
    }
}

/// Factorizes a trimmed flag string against a reference.
pub fn factorize_t(nref: &[bool], refb: &[bool]) -> TCom {
    if nref == refb {
        return TCom::Identical;
    }
    if refb.is_empty() || nref.is_empty() {
        return TCom::Raw(nref.to_vec());
    }
    let mut factors = Vec::new();
    let mut last_m = None;
    let mut q = 0usize;
    while q < nref.len() {
        // Best factor at q: maximize covered bits. A match of length l at s
        // covers l+1 bits via the inferred mismatch when s+l < |ref| (the
        // mismatch is automatic for maximal matches), exactly l bits as a
        // tail when q+l == |nref|, or — as the final factor only — l bits
        // plus an *explicit* mismatch bit.
        let remaining = nref.len() - q;
        let mut best: Option<(usize, usize, usize, bool)> = None; // (cover, s, l, explicit)
        for s in 0..refb.len() {
            let mut l = 0usize;
            while q + l < nref.len() && s + l < refb.len() && refb[s + l] == nref[q + l] {
                l += 1;
            }
            // Tail candidate: exact copy to the end of nref.
            if q + l == nref.len() {
                let cand = (l, s, l, false);
                if best.is_none_or(|b| cand.0 > b.0) {
                    best = Some(cand);
                }
            }
            // Implicit-mismatch candidate: needs a reference bit after the
            // copy (the mismatch is automatic for maximal matches).
            if s + l < refb.len() && q + l < nref.len() {
                debug_assert_ne!(refb[s + l], nref[q + l]);
                let cand = (l + 1, s, l, false);
                if best.is_none_or(|b| cand.0 > b.0) {
                    best = Some(cand);
                }
            }
            // Explicit-final candidate: copy all but the last remaining bit
            // and append it literally. Only usable as the very last factor.
            if l >= remaining - 1 {
                let cand = (remaining, s, remaining - 1, true);
                if best.is_none_or(|b| cand.0 > b.0) {
                    best = Some(cand);
                }
            }
        }
        let Some((cover, s, l, _)) = best else {
            // The reference is a constant run shorter than the remainder:
            // factors cannot express nref. Store it verbatim (only
            // reachable when |nref| ≠ |ref|, which the decoder can tell).
            debug_assert_ne!(nref.len(), refb.len());
            return TCom::Raw(nref.to_vec());
        };
        debug_assert!(cover >= 1);
        factors.push(TFactor {
            s: s as u32,
            l: l as u32,
        });
        q += cover;
        // The decoder appends mismatch bits implicitly for all but the
        // final factor; if the final factor consumed a mismatch bit
        // (cover = l + 1), that bit must be stored explicitly.
        if q == nref.len() && cover == l + 1 {
            last_m = Some(nref[nref.len() - 1]);
        }
    }
    TCom::Factors { factors, last_m }
}

/// Replays a `T'` representation against the reference.
pub fn apply_t(com: &TCom, refb: &[bool]) -> Vec<bool> {
    match com {
        TCom::Identical => refb.to_vec(),
        TCom::Raw(bits) => bits.clone(),
        TCom::Factors { factors, last_m } => {
            let mut out = Vec::new();
            for (i, f) in factors.iter().enumerate() {
                let (s, l) = (f.s as usize, f.l as usize);
                out.extend_from_slice(&refb[s..s + l]);
                let is_last = i == factors.len() - 1;
                if is_last {
                    if let Some(m) = last_m {
                        out.push(*m);
                    }
                } else {
                    out.push(!refb[s + l]);
                }
            }
            out
        }
    }
}

/// Binary-encodes a `T'` representation.
pub fn encode_t(w: &mut BitWriter, com: &TCom, ref_len: usize) -> Result<(), CodecError> {
    let wt = width_for_max(ref_len as u64);
    match com {
        TCom::Identical => golomb::encode_unsigned(w, 0)?,
        TCom::Raw(bits) => {
            golomb::encode_unsigned(w, 0)?;
            for &b in bits {
                w.push_bit(b);
            }
        }
        TCom::Factors { factors, last_m } => {
            golomb::encode_unsigned(w, factors.len() as u64)?;
            for (i, f) in factors.iter().enumerate() {
                w.write_bits(u64::from(f.s), wt)?;
                w.write_bits(u64::from(f.l), wt)?;
                if i == factors.len() - 1 {
                    w.push_bit(last_m.is_some());
                    if let Some(m) = last_m {
                        w.push_bit(*m);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Decodes a `T'` representation. `nref_len` (known from the decoded edge
/// sequence) disambiguates the `H = 0` cases.
pub fn decode_t(
    r: &mut BitReader<'_>,
    ref_len: usize,
    nref_len: usize,
) -> Result<TCom, CodecError> {
    let wt = width_for_max(ref_len as u64);
    let h = golomb::decode_unsigned(r)? as usize;
    if h == 0 {
        if nref_len == ref_len {
            return Ok(TCom::Identical);
        }
        // H = 0 with differing lengths is the verbatim fallback (empty
        // reference, or a constant-run reference that factors cannot
        // express). Lengths differing is guaranteed by the encoder.
        let mut bits = Vec::with_capacity(nref_len);
        for _ in 0..nref_len {
            bits.push(r.read_bit()?);
        }
        return Ok(TCom::Raw(bits));
    }
    let mut factors = Vec::with_capacity(h);
    let mut last_m = None;
    for i in 0..h {
        let s = r.read_bits(wt)? as u32;
        let l = r.read_bits(wt)? as u32;
        if (s + l) as usize > ref_len {
            return Err(CodecError::Malformed("T' factor copies past reference end"));
        }
        factors.push(TFactor { s, l });
        if i == h - 1 && r.read_bit()? {
            last_m = Some(r.read_bit()?);
        }
    }
    Ok(TCom::Factors { factors, last_m })
}

// ---------------------------------------------------------------------------
// D patches
// ---------------------------------------------------------------------------

/// One `(pos, rd)` patch of `Com_D`: position `pos` holds quantized code
/// `code` instead of the reference's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DPatch {
    /// Index into the distance sequence.
    pub pos: u32,
    /// The PDDP code at that index.
    pub code: u64,
}

/// Computes the patch list between two equal-length quantized sequences.
pub fn diff_d(nref: &[u64], refd: &[u64]) -> Vec<DPatch> {
    debug_assert_eq!(nref.len(), refd.len(), "instances share |D|");
    nref.iter()
        .zip(refd)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, (a, _))| DPatch {
            pos: i as u32,
            code: *a,
        })
        .collect()
}

/// Applies patches to the reference's codes.
pub fn apply_d(patches: &[DPatch], refd: &[u64]) -> Vec<u64> {
    let mut out = refd.to_vec();
    for p in patches {
        out[p.pos as usize] = p.code;
    }
    out
}

/// Binary-encodes `Com_D`. `d_width` is the PDDP code width.
pub fn encode_d(
    w: &mut BitWriter,
    patches: &[DPatch],
    n_locs: usize,
    d_width: u32,
) -> Result<(), CodecError> {
    let wp = width_for_max(n_locs.saturating_sub(1) as u64);
    golomb::encode_unsigned(w, patches.len() as u64)?;
    for p in patches {
        w.write_bits(u64::from(p.pos), wp)?;
        w.write_bits(p.code, d_width)?;
    }
    Ok(())
}

/// Decodes `Com_D`.
pub fn decode_d(
    r: &mut BitReader<'_>,
    n_locs: usize,
    d_width: u32,
) -> Result<Vec<DPatch>, CodecError> {
    let wp = width_for_max(n_locs.saturating_sub(1) as u64);
    let h = golomb::decode_unsigned(r)? as usize;
    let mut patches = Vec::with_capacity(h);
    for _ in 0..h {
        let pos = r.read_bits(wp)? as u32;
        if pos as usize >= n_locs {
            return Err(CodecError::Malformed("D patch position out of range"));
        }
        patches.push(DPatch {
            pos,
            code: r.read_bits(d_width)?,
        });
    }
    Ok(patches)
}

#[cfg(test)]
mod tests {
    use super::*;

    const REF_E: [u32; 9] = [1, 2, 1, 2, 2, 0, 4, 1, 0]; // E(Tu¹₁)

    #[test]
    fn table4_com_e_of_tu12() {
        // Com_E(Nref¹₁₁, Ref¹₁) = ⟨(0,1,1), (2,7)⟩.
        let nref = [1, 1, 1, 2, 2, 0, 4, 1, 0];
        let f = factorize_e(&nref, &REF_E);
        assert_eq!(
            f,
            vec![
                EFactor::Copy { s: 0, l: 1, m: 1 },
                EFactor::Tail { s: 2, l: 7 },
            ]
        );
        assert_eq!(apply_e(&f, &REF_E), nref);
    }

    #[test]
    fn table4_com_e_of_tu13() {
        // Com_E(Nref¹₁₂, Ref¹₁) = ⟨(0,8,2)⟩.
        let nref = [1, 2, 1, 2, 2, 0, 4, 1, 2];
        let f = factorize_e(&nref, &REF_E);
        assert_eq!(f, vec![EFactor::Copy { s: 0, l: 8, m: 2 }]);
        assert_eq!(apply_e(&f, &REF_E), nref);
    }

    #[test]
    fn case_b_novel_symbol() {
        // §4.2 case B: E(Tu¹₄) = ⟨3,2,1,2,2⟩ starts with a 3 that never
        // occurs in the reference → factor (S=9, M=3).
        let nref = [3, 2, 1, 2, 2];
        let f = factorize_e(&nref, &REF_E);
        assert_eq!(f[0], EFactor::Novel { m: 3 });
        assert_eq!(apply_e(&f, &REF_E), nref);
    }

    #[test]
    fn e_factor_bit_roundtrip() {
        let cases: Vec<Vec<u32>> = vec![
            vec![1, 1, 1, 2, 2, 0, 4, 1, 0],
            vec![1, 2, 1, 2, 2, 0, 4, 1, 2],
            vec![3, 2, 1, 2, 2],
            vec![1, 2, 1, 2, 2, 0, 4, 1, 0], // identical to the reference
            vec![7],
            vec![5, 5, 5, 5],
        ];
        for nref in cases {
            let f = factorize_e(&nref, &REF_E);
            let mut w = BitWriter::new();
            encode_e(&mut w, &f, REF_E.len(), nref.len(), 3).unwrap();
            let buf = w.finish();
            let mut r = buf.reader();
            assert_eq!(decode_e(&mut r, &REF_E, 3).unwrap(), nref);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn e_identical_is_one_tail_factor() {
        let f = factorize_e(&REF_E, &REF_E);
        assert_eq!(f, vec![EFactor::Tail { s: 0, l: 9 }]);
    }

    fn bits(v: &[u8]) -> Vec<bool> {
        v.iter().map(|&b| b == 1).collect()
    }

    #[test]
    fn table4_com_t_of_tu12() {
        // Com_T'(Nref¹₁₁, Ref¹₁) = ⟨(1,2),(3,4)⟩.
        let refb = bits(&[0, 1, 0, 1, 1, 1, 1]); // T'(Tu¹₁) trimmed
        let nref = bits(&[1, 0, 0, 1, 1, 1, 1]); // T'(Tu¹₂) trimmed
        let com = factorize_t(&nref, &refb);
        assert_eq!(
            com,
            TCom::Factors {
                factors: vec![TFactor { s: 1, l: 2 }, TFactor { s: 3, l: 4 }],
                last_m: None,
            }
        );
        assert_eq!(apply_t(&com, &refb), nref);
    }

    #[test]
    fn table4_com_t_of_tu13_is_empty() {
        // T'(Tu¹₃) equals T'(Tu¹₁) → Com_T' = ∅.
        let refb = bits(&[0, 1, 0, 1, 1, 1, 1]);
        let com = factorize_t(&refb.clone(), &refb);
        assert_eq!(com, TCom::Identical);
        assert_eq!(apply_t(&com, &refb), refb);
    }

    #[test]
    fn t_factor_roundtrip_misc() {
        let refs = [
            bits(&[0, 1, 0, 1, 1, 1, 1]),
            bits(&[1, 1, 1, 1]),
            bits(&[0, 0, 0]),
            vec![],
        ];
        let nrefs = [
            bits(&[1, 0, 0, 1, 1, 1, 1]),
            bits(&[0]),
            bits(&[0, 0, 0, 0, 0, 1]),
            bits(&[1, 1]),
            vec![],
            bits(&[1, 0, 1, 0, 1, 0, 1, 0]),
        ];
        for refb in &refs {
            for nref in &nrefs {
                let com = factorize_t(nref, refb);
                assert_eq!(&apply_t(&com, refb), nref, "ref={refb:?} nref={nref:?}");
                let mut w = BitWriter::new();
                encode_t(&mut w, &com, refb.len()).unwrap();
                let buf = w.finish();
                let mut r = buf.reader();
                let back = decode_t(&mut r, refb.len(), nref.len()).unwrap();
                assert_eq!(&apply_t(&back, refb), nref);
            }
        }
    }

    #[test]
    fn t_constant_reference_opposite_bits() {
        // All-ones reference, non-reference starting with 0: zero-length
        // copies with inferred mismatches must carry the day.
        let refb = bits(&[1, 1, 1, 1]);
        let nref = bits(&[0, 0, 1, 0]);
        let com = factorize_t(&nref, &refb);
        assert_eq!(apply_t(&com, &refb), nref);
    }

    #[test]
    fn table4_com_d() {
        // Quantize Table 3's D at ηD = 1/128 (all values dyadic → exact).
        let q = |x: f64| (x * 128.0).round() as u64;
        let refd: Vec<u64> = [0.875, 0.25, 0.5, 0.875, 0.5, 0.0, 0.875]
            .iter()
            .map(|&x| q(x))
            .collect();
        // Tu¹₂ has identical D → no patches.
        assert!(diff_d(&refd, &refd).is_empty());
        // Tu¹₃ differs at position 6 (0.5 instead of 0.875) → ⟨(6, 0.5)⟩.
        let mut d13 = refd.clone();
        d13[6] = q(0.5);
        let patches = diff_d(&d13, &refd);
        assert_eq!(
            patches,
            vec![DPatch {
                pos: 6,
                code: q(0.5)
            }]
        );
        assert_eq!(apply_d(&patches, &refd), d13);
    }

    #[test]
    fn d_patch_bit_roundtrip() {
        let refd: Vec<u64> = (0..20).map(|i| i * 3 % 128).collect();
        let mut nref = refd.clone();
        nref[0] = 99;
        nref[7] = 1;
        nref[19] = 127;
        let patches = diff_d(&nref, &refd);
        assert_eq!(patches.len(), 3);
        let mut w = BitWriter::new();
        encode_d(&mut w, &patches, refd.len(), 7).unwrap();
        let buf = w.finish();
        let mut r = buf.reader();
        let back = decode_d(&mut r, refd.len(), 7).unwrap();
        assert_eq!(back, patches);
        assert_eq!(apply_d(&back, &refd), nref);
    }
}
