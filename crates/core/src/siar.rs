//! SIAR: Sample-Interval Adaptive Representation of time sequences (§4.1)
//! with the improved Exp-Golomb encoding (§4.4).
//!
//! The time sequence `T(Tuʲ)` is stored as its first timestamp followed by
//! per-step deviations from the default interval `Ts`:
//! `Δtᵢ = (tᵢ₊₁ − tᵢ) − Ts`. The first timestamp splits into an
//! Exp-Golomb day index and a 17-bit second-of-day (the paper encodes
//! timestamps in 17 bits within one day); the deviations use the signed
//! improved Exp-Golomb code.

use utcq_bitio::{golomb, BitBuf, BitWriter, CodecError};

const SECONDS_PER_DAY: i64 = 86_400;

/// Encodes a strictly increasing time sequence.
pub fn encode(times: &[i64], ts: i64) -> Result<BitBuf, CodecError> {
    assert!(!times.is_empty(), "cannot encode an empty time sequence");
    let mut w = BitWriter::new();
    let t0 = times[0];
    let (day, sec) = (
        t0.div_euclid(SECONDS_PER_DAY),
        t0.rem_euclid(SECONDS_PER_DAY),
    );
    golomb::encode_unsigned(&mut w, day as u64)?;
    w.write_bits(sec as u64, 17)?;
    for pair in times.windows(2) {
        golomb::encode_deviation(&mut w, (pair[1] - pair[0]) - ts)?;
    }
    Ok(w.finish())
}

/// Decodes a full time sequence of `n` samples.
pub fn decode(buf: &BitBuf, n: usize, ts: i64) -> Result<Vec<i64>, CodecError> {
    let mut r = buf.reader();
    let day = golomb::decode_unsigned(&mut r)? as i64;
    let sec = r.read_bits(17)? as i64;
    let mut times = Vec::with_capacity(n);
    let mut t = day * SECONDS_PER_DAY + sec;
    times.push(t);
    for _ in 1..n {
        t += ts + golomb::decode_deviation(&mut r)?;
        times.push(t);
    }
    Ok(times)
}

/// The bit position right after the header (day + second-of-day) — the
/// position of the first deviation, used as the base of StIU `t.pos`
/// pointers.
pub fn first_deviation_pos(buf: &BitBuf) -> Result<usize, CodecError> {
    let mut r = buf.reader();
    golomb::decode_unsigned(&mut r)?;
    r.read_bits(17)?;
    Ok(r.pos())
}

/// Resumes decoding mid-stream: given that sample `no` has timestamp
/// `start` and the deviation of step `no → no+1` begins at bit `pos`,
/// yields timestamps `no, no+1, …` until the reader is exhausted or
/// `max_steps` are produced.
pub fn decode_from(
    buf: &BitBuf,
    pos: usize,
    start: i64,
    ts: i64,
    max_steps: usize,
) -> Result<Vec<i64>, CodecError> {
    let mut r = buf.reader_at(pos);
    let mut out = Vec::with_capacity(max_steps.min(64) + 1);
    out.push(start);
    let mut t = start;
    for _ in 0..max_steps {
        if r.remaining() == 0 {
            break;
        }
        t += ts + golomb::decode_deviation(&mut r)?;
        out.push(t);
    }
    Ok(out)
}

/// Bit positions of each deviation code: `positions()[i]` is where the
/// code of step `i → i+1` starts. Used when building the StIU temporal
/// index.
pub fn deviation_positions(buf: &BitBuf, n: usize) -> Result<Vec<usize>, CodecError> {
    let mut r = buf.reader();
    golomb::decode_unsigned(&mut r)?;
    r.read_bits(17)?;
    let mut pos = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        pos.push(r.pos());
        golomb::decode_deviation(&mut r)?;
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_roundtrip() {
        // ⟨5:03:25, +240, +241, +240, +239, +240, +240⟩, Ts = 240.
        let times = vec![18205, 18445, 18686, 18926, 19165, 19405, 19645];
        let buf = encode(&times, 240).unwrap();
        assert_eq!(decode(&buf, times.len(), 240).unwrap(), times);
        // Header: day 0 = 1 bit; sec = 17 bits; deviations 0,1,0,−1,0,0 =
        // 1+4+1+4+1+1 = 12 bits. Total 30.
        assert_eq!(buf.len_bits(), 1 + 17 + 12);
    }

    #[test]
    fn paper_compression_ratio_arithmetic() {
        // §4.4: the improved Exp-Golomb encoding compresses the example's
        // deviations into 12 bits vs 17 + 12 per (i, t) pair for TED.
        let times = vec![18205, 18445, 18686, 18926, 19165, 19405, 19645];
        let buf = encode(&times, 240).unwrap();
        let ratio = (32.0 * 7.0) / buf.len_bits() as f64;
        // The paper reports 7.72 with a 17-bit header; ours adds 1 bit of
        // day index, giving 224/30 ≈ 7.47.
        assert!(ratio > 7.0, "ratio {ratio}");
    }

    #[test]
    fn multi_day_times() {
        let times = vec![3 * 86_400 + 100, 3 * 86_400 + 110, 3 * 86_400 + 125];
        let buf = encode(&times, 10).unwrap();
        assert_eq!(decode(&buf, 3, 10).unwrap(), times);
    }

    #[test]
    fn single_sample() {
        let times = vec![42];
        let buf = encode(&times, 10).unwrap();
        assert_eq!(decode(&buf, 1, 10).unwrap(), times);
    }

    #[test]
    fn mid_stream_resume() {
        let times = vec![1000, 1010, 1025, 1030, 1041, 1052];
        let buf = encode(&times, 10).unwrap();
        let pos = deviation_positions(&buf, times.len()).unwrap();
        assert_eq!(pos.len(), 5);
        // Resume at sample 2 (deviation 2→3 starts at pos[2]).
        let tail = decode_from(&buf, pos[2], times[2], 10, 10).unwrap();
        assert_eq!(tail, vec![1025, 1030, 1041, 1052]);
        // Bounded steps.
        let tail = decode_from(&buf, pos[2], times[2], 10, 1).unwrap();
        assert_eq!(tail, vec![1025, 1030]);
    }

    #[test]
    fn first_deviation_pos_matches_positions() {
        let times = vec![500, 510, 520];
        let buf = encode(&times, 10).unwrap();
        assert_eq!(
            first_deviation_pos(&buf).unwrap(),
            deviation_positions(&buf, 3).unwrap()[0]
        );
    }

    #[test]
    fn irregular_intervals_roundtrip() {
        let times = vec![0, 1, 300, 301, 302, 1000, 1020];
        let buf = encode(&times, 20).unwrap();
        assert_eq!(decode(&buf, times.len(), 20).unwrap(), times);
    }
}
