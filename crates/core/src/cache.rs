//! Shared, bounded, thread-safe decode cache.
//!
//! Queries on the compressed form repeatedly decode the same artifacts:
//! a reference's streams serve every member of its `Rrs`, a trajectory's
//! time sequence serves every *when* query against it, and a fully
//! reconstructed [`Instance`] serves every query that needs its path.
//! Before this module existed those decodes were repaid on every call —
//! the per-reference cache in `query.rs` died with each query.
//!
//! [`DecodeCache`] memoizes the decoded artifact kinds behind `Arc`s:
//!
//! * `(traj, ref_idx) → Arc<DecodedRef>` — a reference's decoded streams;
//! * `(traj, orig_idx) → Arc<Instance>` — a fully decoded instance;
//! * `traj → Arc<Vec<i64>>` — a trajectory's decoded time sequence;
//! * `(traj, no) → Arc<Vec<i64>>` — a *partial* time window resumed
//!   mid-stream at the temporal tuple whose first sample index is `no`
//!   (the `bracket` step of the *where*/*range* paths, which previously
//!   re-paid the partial decode on every call);
//! * `(traj, cell) → ∅` — a **negative** entry recording that the
//!   trajectory never enters the StIU cell, so a repeated region-miss
//!   *when* query answers without re-scanning the region tuples.
//!   Negative entries carry no payload but are charged the fixed
//!   per-entry overhead, so they compete for the byte budget like any
//!   other entry and retire through the same LRU;
//! * `(RE, tq, α) → Arc<Vec<u64>>` — the **complete** match set of a
//!   range query shape (exact bit-pattern key, never a lossy hash),
//!   stored only when a scan ran unpaginated to the end; empty match
//!   sets store as payload-free negative entries. Repeated range
//!   probes of a warm shape skip the whole candidate scan.
//!
//! Every key additionally carries the **epoch** of the snapshot that
//! minted it (see [`crate::snapshot`]): after a live ingest publishes a
//! new epoch, entries of superseded epochs simply stop matching and age
//! out through normal eviction — no flush, and no cross-epoch aliasing
//! even if a future writer stops being append-only.
//!
//! The cache is **sharded**: keys hash to one of [`SHARD_COUNT`]
//! [`RwLock`]-protected shards, so concurrent queries (e.g. under
//! [`crate::store::Store::par_range_query`]) contend only when they touch
//! the same shard. Hits take the shard's *read* lock — recency is
//! maintained with a per-entry atomic tick, so a hit never needs write
//! access. Misses decode outside any lock and then take the write lock to
//! insert, evicting least-recently-used entries until the shard is back
//! under its byte budget.
//!
//! The budget is a total across shards (each shard gets an equal slice)
//! and is reconfigurable at runtime through [`DecodeCache::set_budget`];
//! a budget of `0` disables caching entirely (every lookup decodes).
//! [`DecodeCache::stats`] exposes hit/miss/eviction counters plus the
//! live entry count and byte footprint — surfaced publicly as
//! [`crate::store::Store::cache_stats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use utcq_traj::Instance;

use crate::compressed::DecodedRef;
use crate::error::Error;

/// Number of lock shards. A small power of two: enough to keep a
/// machine's worth of query threads from serializing on one lock, small
/// enough that tiny byte budgets still leave each shard a usable slice.
pub const SHARD_COUNT: usize = 16;

/// Default cache budget: 64 MiB, a laptop-friendly slice that still holds
/// the full decoded working set of the bundled benchmark datasets.
pub const DEFAULT_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// Which decoded artifact of which trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    /// Decoded streams of `refs[ref_idx]` of trajectory `traj`.
    Ref { traj: u32, ref_idx: u32 },
    /// Fully decoded instance `orig_idx` of trajectory `traj`.
    Instance { traj: u32, orig_idx: u32 },
    /// Decoded time sequence of trajectory `traj`.
    Times { traj: u32 },
    /// Partial time window of trajectory `traj`, resumed mid-stream at
    /// the temporal tuple whose first sample index is `no`.
    Window { traj: u32, no: u32 },
    /// Negative entry: trajectory `traj` has no region tuple in StIU
    /// cell `cell` — a *when* query there is answer-free.
    WhenMiss { traj: u32, cell: u32 },
    /// The complete match set of one **range** query shape. The shape
    /// is stored *exactly* — the rectangle's four coordinate bit
    /// patterns, the query time, and α's bit pattern — never a lossy
    /// hash, which could collide two shapes and serve a wrong answer.
    RangeResult {
        re_bits: [u64; 4],
        tq: i64,
        alpha_bits: u64,
    },
}

impl Kind {
    /// The key of **range**(RE, tq, α), by bit pattern: two α values
    /// (or rectangles) alias iff they are bit-identical, so e.g. NaN α
    /// keys consistently and `0.0`/`-0.0` are distinct shapes (both
    /// compute the same answer, so the split is merely one redundant
    /// entry, never a wrong one).
    fn range_result(re: &utcq_network::Rect, tq: i64, alpha: f64) -> Self {
        Kind::RangeResult {
            re_bits: [
                re.min_x.to_bits(),
                re.min_y.to_bits(),
                re.max_x.to_bits(),
                re.max_y.to_bits(),
            ],
            tq,
            alpha_bits: alpha.to_bits(),
        }
    }
}

/// Cache key: an artifact kind stamped with the snapshot epoch that
/// minted it. Entries of superseded epochs stop matching and age out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    epoch: u64,
    kind: Kind,
}

/// Cached value, one variant per key kind.
#[derive(Debug, Clone)]
enum Value {
    Ref(Arc<DecodedRef>),
    Instance(Arc<Instance>),
    Times(Arc<Vec<i64>>),
    /// Complete, id-ascending match set of a range query shape
    /// (`Kind::RangeResult`); empty sets store as `Value::Negative`.
    RangeIds(Arc<Vec<u64>>),
    /// Payload-free negative entry (`Kind::WhenMiss`, or an empty
    /// `Kind::RangeResult` match set).
    Negative,
}

struct Entry {
    value: Value,
    /// Estimated heap footprint, fixed at insert time.
    bytes: usize,
    /// Last-access tick; updated under the shard's *read* lock.
    tick: AtomicU64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Key, Entry>,
    /// Sum of `Entry::bytes` currently resident in this shard.
    bytes: usize,
    /// Resident `Value::Negative` entries, maintained on insert/evict
    /// so `stats()` never walks the map.
    negatives: usize,
}

impl Shard {
    /// Evicts least-recently-used entries until `bytes + incoming` fits
    /// in `budget`. Returns the number of evictions.
    ///
    /// Eviction is batched: one recency-sorted pass drains down to a low
    /// watermark (7/8 of the budget) rather than exactly to the line, so
    /// the O(n log n) scan is amortized over the many inserts that
    /// follow instead of being repaid on every miss of a full shard.
    fn make_room(&mut self, incoming: usize, budget: usize) -> u64 {
        if self.bytes + incoming <= budget || self.map.is_empty() {
            return 0;
        }
        let watermark = (budget - budget / 8).saturating_sub(incoming);
        let mut by_age: Vec<(Key, u64, usize)> = self
            .map
            .iter()
            .map(|(&k, e)| (k, e.tick.load(Ordering::Relaxed), e.bytes))
            .collect();
        by_age.sort_unstable_by_key(|&(_, tick, _)| tick);
        let mut evicted = 0;
        for (key, _, _) in by_age {
            if self.bytes <= watermark {
                break;
            }
            if let Some(e) = self.map.remove(&key) {
                self.bytes -= e.bytes;
                if matches!(e.value, Value::Negative) {
                    self.negatives -= 1;
                }
                evicted += 1;
            }
        }
        evicted
    }
}

/// Point-in-time counters of a [`DecodeCache`], returned by
/// [`crate::store::Store::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to decode.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Region-miss *when* queries answered from a negative entry
    /// (counted within `hits` as well).
    pub negative_hits: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Negative entries currently resident (counted within `entries`).
    pub negative_entries: usize,
    /// Estimated bytes currently resident.
    pub bytes: usize,
    /// Configured byte budget (`0` = caching disabled).
    pub budget_bytes: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The one-line summary every front end prints — `utcq query
    /// --cache-stats`, the serve process at shutdown — so the CLI and
    /// server presentations of the same counters cannot drift.
    ///
    /// ```
    /// let line = utcq_core::CacheStats::default().render();
    /// assert!(line.starts_with("decode cache:"));
    /// ```
    pub fn render(&self) -> String {
        format!(
            "decode cache: {} hits / {} misses ({:.1}% hit rate), {} entries ({} negative), {} / {} bytes, {} evictions",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.negative_entries,
            self.bytes,
            self.budget_bytes,
            self.evictions
        )
    }
}

/// The shared decode cache. One per [`crate::store::Store`], shared by
/// every epoch's [`crate::snapshot::Snapshot`]; cheap to share by
/// reference across query threads (`Send + Sync`).
pub struct DecodeCache {
    shards: Vec<RwLock<Shard>>,
    /// Total byte budget; each shard gets `budget / SHARD_COUNT`.
    budget: AtomicUsize,
    /// Global logical clock for LRU recency.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    negative_hits: AtomicU64,
}

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl DecodeCache {
    /// A cache with the given total byte budget (`0` disables caching).
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self {
            shards: (0..SHARD_COUNT).map(|_| RwLock::default()).collect(),
            budget: AtomicUsize::new(budget_bytes),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            negative_hits: AtomicU64::new(0),
        }
    }

    /// The configured total byte budget.
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Reconfigures the byte budget at runtime, evicting down to the new
    /// limit immediately. A budget of `0` disables caching and drops all
    /// entries.
    pub fn set_budget(&self, budget_bytes: usize) {
        self.budget.store(budget_bytes, Ordering::Relaxed);
        let per_shard = budget_bytes / SHARD_COUNT;
        for shard in &self.shards {
            let mut s = shard.write().expect("cache lock poisoned");
            if budget_bytes == 0 {
                self.evictions
                    .fetch_add(s.map.len() as u64, Ordering::Relaxed);
                s.map.clear();
                s.bytes = 0;
                s.negatives = 0;
            } else {
                let evicted = s.make_room(0, per_shard);
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Whether lookups can ever hit (budget > 0).
    pub fn is_enabled(&self) -> bool {
        self.budget() > 0
    }

    /// Drops every entry (counters survive). Used by benchmarks to
    /// measure cold-cache behavior on a warm process.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.write().expect("cache lock poisoned");
            s.map.clear();
            s.bytes = 0;
            s.negatives = 0;
        }
    }

    /// Current counters and footprint. O(shard count): every per-entry
    /// quantity is maintained incrementally under the shard locks.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut negative_entries = 0;
        let mut bytes = 0;
        for shard in &self.shards {
            let s = shard.read().expect("cache lock poisoned");
            entries += s.map.len();
            negative_entries += s.negatives;
            bytes += s.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            negative_hits: self.negative_hits.load(Ordering::Relaxed),
            entries,
            negative_entries,
            bytes,
            budget_bytes: self.budget(),
        }
    }

    fn shard_of(&self, key: &Key) -> &RwLock<Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARD_COUNT]
    }

    /// The memoization primitive: returns the cached value for `key`, or
    /// decodes it with `decode`, inserts, and returns it. With a zero
    /// budget this is a plain call to `decode`.
    fn get_or_insert(
        &self,
        key: Key,
        decode: impl FnOnce() -> Result<Value, Error>,
    ) -> Result<Value, Error> {
        let budget = self.budget();
        if budget == 0 {
            return decode();
        }
        let shard = self.shard_of(&key);
        if let Some(entry) = shard.read().expect("cache lock poisoned").map.get(&key) {
            entry.tick.store(
                self.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry.value.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Decode outside any lock: a racing thread may decode the same
        // key concurrently; the loser's insert below just finds the
        // winner's entry and reuses it.
        let value = decode()?;
        self.insert(key, value.clone());
        Ok(value)
    }

    /// Inserts an already-computed value, evicting to stay under budget.
    /// Finding a racing winner's entry leaves it in place.
    fn insert(&self, key: Key, value: Value) {
        let bytes = value_bytes(&value);
        let shard = self.shard_of(&key);
        let mut s = shard.write().expect("cache lock poisoned");
        // Re-read the budget under the write lock: a concurrent
        // set_budget may have shrunk (or zeroed) it since the snapshot
        // above, and inserting against the stale value would strand an
        // entry no future lookup could ever reach or evict.
        let per_shard = self.budget() / SHARD_COUNT;
        if s.map.contains_key(&key) {
            return;
        }
        if bytes > per_shard {
            // Larger than the whole shard budget: serve it uncached
            // rather than flushing everything for a single entry.
            return;
        }
        let evicted = s.make_room(bytes, per_shard);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        s.bytes += bytes;
        if matches!(value, Value::Negative) {
            s.negatives += 1;
        }
        s.map.insert(
            key,
            Entry {
                value,
                bytes,
                tick: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
            },
        );
    }

    /// Cached decode of reference `ref_idx` of trajectory `traj`.
    pub fn ref_or_decode(
        &self,
        epoch: u64,
        traj: u32,
        ref_idx: u32,
        decode: impl FnOnce() -> Result<DecodedRef, Error>,
    ) -> Result<Arc<DecodedRef>, Error> {
        let key = Key {
            epoch,
            kind: Kind::Ref { traj, ref_idx },
        };
        match self.get_or_insert(key, || Ok(Value::Ref(Arc::new(decode()?))))? {
            Value::Ref(r) => Ok(r),
            _ => Err(Error::CorruptStore("cache key/value kind mismatch")),
        }
    }

    /// Cached decode of instance `orig_idx` of trajectory `traj`.
    pub fn instance_or_decode(
        &self,
        epoch: u64,
        traj: u32,
        orig_idx: u32,
        decode: impl FnOnce() -> Result<Instance, Error>,
    ) -> Result<Arc<Instance>, Error> {
        let key = Key {
            epoch,
            kind: Kind::Instance { traj, orig_idx },
        };
        match self.get_or_insert(key, || Ok(Value::Instance(Arc::new(decode()?))))? {
            Value::Instance(i) => Ok(i),
            _ => Err(Error::CorruptStore("cache key/value kind mismatch")),
        }
    }

    /// Cached partial time-decode window of trajectory `traj`, resumed
    /// at the temporal tuple whose first sample index is `no` (`no`
    /// uniquely identifies the resume point within a trajectory).
    pub fn window_or_decode(
        &self,
        epoch: u64,
        traj: u32,
        no: u32,
        decode: impl FnOnce() -> Result<Vec<i64>, Error>,
    ) -> Result<Arc<Vec<i64>>, Error> {
        let key = Key {
            epoch,
            kind: Kind::Window { traj, no },
        };
        match self.get_or_insert(key, || Ok(Value::Times(Arc::new(decode()?))))? {
            Value::Times(t) => Ok(t),
            _ => Err(Error::CorruptStore("cache key/value kind mismatch")),
        }
    }

    /// Cached decode of the time sequence of trajectory `traj`.
    pub fn times_or_decode(
        &self,
        epoch: u64,
        traj: u32,
        decode: impl FnOnce() -> Result<Vec<i64>, Error>,
    ) -> Result<Arc<Vec<i64>>, Error> {
        let key = Key {
            epoch,
            kind: Kind::Times { traj },
        };
        match self.get_or_insert(key, || Ok(Value::Times(Arc::new(decode()?))))? {
            Value::Times(t) => Ok(t),
            _ => Err(Error::CorruptStore("cache key/value kind mismatch")),
        }
    }

    /// Whether a negative entry records that trajectory `traj` never
    /// enters StIU cell `cell` (at `epoch`). A `true` answer counts as a
    /// hit *and* a negative hit; a `false` answer counts nothing — the
    /// caller is about to scan the region tuples, not decode.
    pub fn when_miss_hit(&self, epoch: u64, traj: u32, cell: u32) -> bool {
        if self.budget() == 0 {
            return false;
        }
        let key = Key {
            epoch,
            kind: Kind::WhenMiss { traj, cell },
        };
        let shard = self.shard_of(&key);
        if let Some(entry) = shard.read().expect("cache lock poisoned").map.get(&key) {
            entry.tick.store(
                self.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.negative_hits.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Records that trajectory `traj` never enters StIU cell `cell` (at
    /// `epoch`) — called by the *when* path after an empty region scan.
    pub fn note_when_miss(&self, epoch: u64, traj: u32, cell: u32) {
        if self.budget() == 0 {
            return;
        }
        self.insert(
            Key {
                epoch,
                kind: Kind::WhenMiss { traj, cell },
            },
            Value::Negative,
        );
    }

    /// The cached complete match set of **range**(RE, tq, α) at
    /// `epoch`, id-ascending, if a prior query stored it. An empty
    /// match set hits too (stored as a negative entry, so it counts a
    /// negative hit like a *when* region miss). `None` means the caller
    /// runs the scan.
    pub fn range_result(
        &self,
        epoch: u64,
        re: &utcq_network::Rect,
        tq: i64,
        alpha: f64,
    ) -> Option<Arc<Vec<u64>>> {
        if self.budget() == 0 {
            return None;
        }
        let key = Key {
            epoch,
            kind: Kind::range_result(re, tq, alpha),
        };
        let shard = self.shard_of(&key);
        let guard = shard.read().expect("cache lock poisoned");
        let entry = guard.map.get(&key)?;
        entry.tick.store(
            self.clock.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.hits.fetch_add(1, Ordering::Relaxed);
        match &entry.value {
            Value::RangeIds(ids) => Some(Arc::clone(ids)),
            Value::Negative => {
                self.negative_hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::new(Vec::new()))
            }
            _ => None,
        }
    }

    /// Records the complete match set of **range**(RE, tq, α) at
    /// `epoch` — called only when the scan ran unpaginated to the end
    /// (no cursor, no further candidates), so `ids` is the whole
    /// answer. Empty sets store payload-free as negative entries.
    pub fn note_range_result(
        &self,
        epoch: u64,
        re: &utcq_network::Rect,
        tq: i64,
        alpha: f64,
        ids: Arc<Vec<u64>>,
    ) {
        if self.budget() == 0 {
            return;
        }
        let key = Key {
            epoch,
            kind: Kind::range_result(re, tq, alpha),
        };
        let value = if ids.is_empty() {
            Value::Negative
        } else {
            Value::RangeIds(ids)
        };
        self.insert(key, value);
    }
}

/// Fixed per-entry overhead charged on top of the payload estimate:
/// hash-map slot, `Entry` bookkeeping, `Arc` control block. Negative
/// entries are charged exactly this.
const ENTRY_OVERHEAD: usize = 96;

fn value_bytes(v: &Value) -> usize {
    ENTRY_OVERHEAD
        + match v {
            Value::Ref(r) => r.heap_bytes(),
            Value::Instance(i) => {
                i.path.len() * std::mem::size_of::<utcq_network::EdgeId>()
                    + i.positions.len() * std::mem::size_of::<utcq_traj::PathPosition>()
            }
            Value::Times(t) => t.len() * std::mem::size_of::<i64>(),
            Value::RangeIds(ids) => ids.len() * std::mem::size_of::<u64>(),
            Value::Negative => 0,
        }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times_entry(cache: &DecodeCache, traj: u32, len: usize) -> Arc<Vec<i64>> {
        cache
            .times_or_decode(0, traj, || Ok((0..len as i64).collect()))
            .unwrap()
    }

    #[test]
    fn hit_after_miss() {
        let cache = DecodeCache::with_budget(1 << 20);
        let a = times_entry(&cache, 1, 8);
        let b = cache
            .times_or_decode(0, 1, || panic!("second lookup must not decode"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn epochs_partition_the_key_space() {
        let cache = DecodeCache::with_budget(1 << 20);
        let old = cache.times_or_decode(0, 1, || Ok(vec![1, 2])).unwrap();
        // The same trajectory under a newer epoch is a distinct entry —
        // stale decodes can never serve a post-ingest snapshot.
        let new = cache.times_or_decode(1, 1, || Ok(vec![1, 2, 3])).unwrap();
        assert_eq!(old.len(), 2);
        assert_eq!(new.len(), 3);
        let again = cache
            .times_or_decode(1, 1, || panic!("epoch-1 entry must be cached"))
            .unwrap();
        assert!(Arc::ptr_eq(&new, &again));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn window_entries_are_keyed_independently() {
        let cache = DecodeCache::with_budget(1 << 20);
        // Full times and a partial window of the same trajectory coexist.
        let full = times_entry(&cache, 1, 8);
        let win = cache
            .window_or_decode(0, 1, 3, || Ok(vec![3, 4, 5]))
            .unwrap();
        assert_eq!(full.len(), 8);
        assert_eq!(*win, vec![3, 4, 5]);
        // Second lookup of the window is a hit, not a re-decode.
        let win2 = cache
            .window_or_decode(0, 1, 3, || panic!("window must be cached"))
            .unwrap();
        assert!(Arc::ptr_eq(&win, &win2));
        // A different resume point is a distinct entry.
        let other = cache.window_or_decode(0, 1, 5, || Ok(vec![5, 6])).unwrap();
        assert_eq!(*other, vec![5, 6]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 3, 3));
    }

    #[test]
    fn negative_entries_hit_and_account() {
        let cache = DecodeCache::with_budget(1 << 20);
        assert!(!cache.when_miss_hit(0, 7, 3), "cold probe misses");
        cache.note_when_miss(0, 7, 3);
        assert!(cache.when_miss_hit(0, 7, 3), "recorded miss hits");
        assert!(!cache.when_miss_hit(1, 7, 3), "new epoch does not alias");
        assert!(!cache.when_miss_hit(0, 7, 4), "other cell does not alias");
        let s = cache.stats();
        assert_eq!(s.negative_hits, 1);
        assert_eq!(s.negative_entries, 1);
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, ENTRY_OVERHEAD, "negative entries are payload-free");
        // Zero budget disables negative caching like everything else.
        cache.set_budget(0);
        cache.note_when_miss(0, 7, 3);
        assert!(!cache.when_miss_hit(0, 7, 3));
    }

    #[test]
    fn range_results_key_on_exact_shape_and_epoch() {
        let cache = DecodeCache::with_budget(1 << 20);
        let re = utcq_network::Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(cache.range_result(0, &re, 900, 0.3).is_none());
        cache.note_range_result(0, &re, 900, 0.3, Arc::new(vec![3, 7, 11]));
        assert_eq!(*cache.range_result(0, &re, 900, 0.3).unwrap(), [3, 7, 11]);
        // Any shape component differing is a distinct key.
        assert!(cache.range_result(1, &re, 900, 0.3).is_none(), "epoch");
        assert!(cache.range_result(0, &re, 901, 0.3).is_none(), "tq");
        assert!(cache.range_result(0, &re, 900, 0.31).is_none(), "alpha");
        let other = utcq_network::Rect::new(0.0, 0.0, 10.0, 10.5);
        assert!(cache.range_result(0, &other, 900, 0.3).is_none(), "rect");
        // Empty answers are remembered as negative entries and hit.
        cache.note_range_result(0, &re, 1800, 0.3, Arc::new(Vec::new()));
        assert!(cache.range_result(0, &re, 1800, 0.3).unwrap().is_empty());
        let s = cache.stats();
        assert_eq!(s.negative_entries, 1);
        assert_eq!(s.negative_hits, 1);
        // Zero budget bypasses reads and writes.
        cache.set_budget(0);
        assert!(cache.range_result(0, &re, 900, 0.3).is_none());
        cache.note_range_result(0, &re, 900, 0.3, Arc::new(vec![1]));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn zero_budget_bypasses() {
        let cache = DecodeCache::with_budget(0);
        assert!(!cache.is_enabled());
        times_entry(&cache, 1, 8);
        times_entry(&cache, 1, 8); // decodes again, no memoization
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (0, 0, 0, 0));
    }

    #[test]
    fn tiny_budget_evicts_lru() {
        // Budget for roughly one small entry per shard.
        let cache = DecodeCache::with_budget(SHARD_COUNT * 200);
        for traj in 0..64 {
            times_entry(&cache, traj, 8);
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "{s:?}");
        assert!(s.entries <= SHARD_COUNT, "{s:?}");
        assert!(s.bytes <= cache.budget(), "{s:?}");
    }

    #[test]
    fn oversized_entry_is_served_uncached() {
        let cache = DecodeCache::with_budget(SHARD_COUNT * 64);
        let v = times_entry(&cache, 1, 10_000); // far over a shard budget
        assert_eq!(v.len(), 10_000);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn set_budget_shrinks_in_place() {
        let cache = DecodeCache::with_budget(1 << 20);
        for traj in 0..32 {
            times_entry(&cache, traj, 64);
        }
        assert_eq!(cache.stats().entries, 32);
        cache.set_budget(SHARD_COUNT * 250);
        let s = cache.stats();
        assert!(s.bytes <= SHARD_COUNT * 250, "{s:?}");
        cache.set_budget(0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = DecodeCache::with_budget(1 << 20);
        times_entry(&cache, 1, 8);
        times_entry(&cache, 1, 8);
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes), (0, 0));
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn recency_protects_hot_entries() {
        // One shard's worth of keys would race; use a single traj id per
        // shard-agnostic check: insert A, touch it, then flood — A's high
        // tick should survive longer than untouched peers on its shard.
        let cache = DecodeCache::with_budget(SHARD_COUNT * 400);
        times_entry(&cache, 0, 8);
        for _ in 0..4 {
            times_entry(&cache, 0, 8); // keep traj 0 hot
            for traj in 1..40 {
                times_entry(&cache, traj, 8);
            }
        }
        // traj 0 was touched every round; it should still be resident.
        cache
            .times_or_decode(0, 0, || panic!("hot entry was evicted"))
            .map(|_| ())
            .unwrap();
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = Arc::new(DecodeCache::with_budget(1 << 20));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let traj = (t * 7 + i) % 16;
                    let v = c
                        .times_or_decode(0, traj, || Ok(vec![i64::from(traj); 4]))
                        .unwrap();
                    assert_eq!(*v, vec![i64::from(traj); 4]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert!(s.hits > 0 && s.misses >= 16, "{s:?}");
    }
}
