//! A long-lived TCP query server over an opened container.
//!
//! [`Server`] binds a [`std::net::TcpListener`], opens the container
//! **once** (through the [`Opened`] facade, so v2 and v3 containers are
//! served identically) and answers the newline-delimited JSON protocol
//! of [`crate::wire`] — `PROTOCOL.md` documents the format. The decode
//! cache and query plans live in the shared store, so they stay warm
//! across requests and across connections: exactly the steady state the
//! `bench_queries` "warm" numbers measure, instead of the re-open-per-
//! invocation cost the CLI's offline `query` pays.
//!
//! # Event loop + worker pool
//!
//! One readiness loop owns every connection, built on the raw-fd
//! `epoll` wrappers in [`crate::poll`] (std-only, no async runtime)
//! and the per-connection state machines in [`crate::conn`]. The loop
//! accepts, reads and frames request lines, and flushes responses; an
//! idle connection therefore costs two buffers and a file descriptor,
//! not a thread, so connection count is no longer capped by
//! `--threads`.
//!
//! Query execution stays on a fixed pool of `threads` workers, decoupled
//! from connection ownership: the loop gathers every complete line a
//! readable connection has into one **burst**, dispatches the burst to
//! a worker, and queues the worker's concatenated responses back onto
//! that connection's write buffer in one coalesced flush. At most one
//! burst per connection is in flight, and a burst executes its lines
//! sequentially — that is the whole in-order pipelining guarantee (a
//! pipelined query behind an `ingest` on the same connection observes
//! the ingest, and responses always stream back in request order; see
//! `PROTOCOL.md`). Bursts from different connections run on different
//! workers concurrently, sharing one decode cache underneath.
//!
//! Clients may pipeline freely: send N request lines without awaiting,
//! read N responses in order (`utcq client --pipeline N` does exactly
//! this). A slow reader that lets its write backlog grow past the
//! [`crate::conn::WRITE_HIGH_WATERMARK`] stops being *read* until it
//! drains — backpressure by TCP flow control, not by server memory.
//!
//! # Writable servers
//!
//! [`Server::writable`] enables the protocol's `ingest` op: batches
//! append to the live store (`PROTOCOL.md` documents the request).
//! Ingest runs on the store's writer path — compression and indexing
//! happen against a private clone of the current snapshot, then publish
//! as a new epoch — so queries on the other workers never block, and
//! pipelined queries behind an ingest on the *same* connection resume
//! as soon as the batch publishes. Read-only servers (the default)
//! answer `ingest` with the `read_only` error code.
//!
//! # Shutdown
//!
//! Graceful, from either side: a client sends `{"op":"shutdown"}` (it
//! gets the acknowledgement as its response), or the process calls
//! [`ServerHandle::shutdown`]. Either way the flag is raised, every
//! registered connection's **read** side is half-closed, and the
//! eventfd waker unblocks the loop, which then
//!
//! 1. stops accepting new connections,
//! 2. drains in flight: every dispatched burst finishes executing and
//!    its responses flush completely (no response is ever truncated
//!    mid-line; buffered-but-undispatched requests are dropped, as
//!    they were under the blocking design), bounded by a drain
//!    deadline for peers that never read, and
//! 3. joins every worker before [`Server::run`] returns.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::conn::{Conn, Frame};
use crate::error::Error;
use crate::opened::Opened;
use crate::poll;
use crate::wire;

pub use crate::conn::DRAIN_BUDGET_BYTES;

/// Default worker-pool size for [`Server::bind`] callers that take the
/// CLI default.
pub const DEFAULT_THREADS: usize = 4;

/// Poller token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the shutdown/result waker.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Readiness reports drained per `epoll_wait` call.
const EVENTS_PER_WAIT: usize = 256;

/// How long shutdown waits for in-flight bursts to flush before
/// force-closing connections whose peers stopped reading.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(5);

/// One burst of frames from a single connection, executed sequentially
/// by one worker — the unit of dispatch that preserves per-connection
/// request order under pipelining.
struct Job {
    token: u64,
    frames: Vec<Frame>,
}

/// A completed burst: every response line of the burst, concatenated
/// newline-terminated in request order, flushed as one write.
struct Done {
    token: u64,
    bytes: Vec<u8>,
    /// A `shutdown` request was acknowledged inside this burst (its
    /// ack is the last line of `bytes`; later frames were dropped).
    shutdown: bool,
}

/// Shared shutdown state: the flag, the live-connection registry and
/// the eventfd waker that unblocks the readiness loop.
///
/// The registry maps a per-connection token to a clone of its stream,
/// inserted at accept and removed when the loop drops the connection —
/// entries exist exactly while a connection is live, so the registry
/// neither leaks descriptors on a long-lived server nor holds client
/// sockets half-open after shutdown. It exists so [`trigger`] can
/// half-close read sides from *any* thread, making EOF visible to
/// clients mid-read immediately, before the loop itself gets to its
/// own sweep.
///
/// [`trigger`]: ServerState::trigger
struct ServerState {
    shutting_down: AtomicBool,
    conns: Mutex<HashMap<u64, TcpStream>>,
    addr: SocketAddr,
    waker: poll::Waker,
}

impl ServerState {
    /// Flips the server into shutdown: raise the flag, half-close every
    /// registered connection's read side, wake the (possibly blocked)
    /// readiness loop. Idempotent.
    fn trigger(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Ok(conns) = self.conns.lock() {
            for c in conns.values() {
                // Readers see EOF; the write half stays open so queued
                // responses finish intact.
                let _ = c.shutdown(Shutdown::Read);
            }
        }
        self.waker.wake();
    }

    /// Registers a freshly accepted connection under its token.
    fn register(&self, token: u64, stream: &TcpStream) {
        if let (Ok(mut conns), Ok(clone)) = (self.conns.lock(), stream.try_clone()) {
            conns.insert(token, clone);
        }
        // Close the race with a concurrent trigger(): a connection
        // accepted after the shutdown sweep but registered only now
        // would otherwise keep its read side open until the loop's own
        // sweep. Checking after the insert means either the sweep saw
        // our entry or we see the flag — also covers a failed try_clone
        // above, since we half-close the stream itself.
        if self.shutting_down.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }

    /// Drops the registry's clone, completing the close once the loop's
    /// own stream is gone.
    fn deregister(&self, token: u64) {
        if let Ok(mut conns) = self.conns.lock() {
            conns.remove(&token);
        }
    }
}

/// A handle that can stop a running [`Server`] from another thread —
/// what in-process embedders (tests, benchmarks) use instead of sending
/// a `shutdown` request over a socket.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Initiates the same graceful shutdown a `{"op":"shutdown"}`
    /// request does. Returns immediately; [`Server::run`] returns once
    /// in-flight bursts have flushed and every worker has drained.
    pub fn shutdown(&self) {
        self.state.trigger();
    }
}

/// A bound, not-yet-running query server. See the [module docs](self).
///
/// ```no_run
/// use std::sync::Arc;
/// use utcq_core::serve::Server;
/// use utcq_core::Opened;
///
/// # fn main() -> Result<(), utcq_core::Error> {
/// let opened = Arc::new(Opened::open("data.utcq")?);
/// // Port 0 = ephemeral; read the real port back before blocking.
/// let server = Server::bind(opened, "127.0.0.1:0", 4)?;
/// println!("listening on {}", server.local_addr());
/// server.run()?; // blocks until a shutdown request arrives
/// # Ok(()) }
/// ```
pub struct Server {
    listener: TcpListener,
    opened: Arc<Opened>,
    threads: usize,
    /// Whether `ingest` requests are honored (`utcq serve --writable`).
    /// Read-only servers answer them with the `read_only` error code.
    writable: bool,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) over an opened
    /// container. `threads` is the worker-pool size (clamped to ≥ 1) —
    /// execution parallelism only; connection count is independent.
    /// The server starts read-only; see [`Server::writable`].
    pub fn bind(opened: Arc<Opened>, addr: &str, threads: usize) -> Result<Self, Error> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let waker = poll::Waker::new()?;
        Ok(Self {
            listener,
            opened,
            threads: threads.max(1),
            writable: false,
            state: Arc::new(ServerState {
                shutting_down: AtomicBool::new(false),
                conns: Mutex::new(HashMap::new()),
                addr,
                waker,
            }),
        })
    }

    /// Enables (or disables) the `ingest` op for every connection.
    /// Ingest batches are serialized through the store's writer lock
    /// underneath, so any number of workers may carry them.
    pub fn writable(mut self, writable: bool) -> Self {
        self.writable = writable;
        self
    }

    /// The address actually bound — the resolved port when binding port
    /// `0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A shutdown handle usable from other threads while [`Server::run`]
    /// blocks.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until shut down (by a `shutdown` request or a
    /// [`ServerHandle`]), then drains the worker pool and returns.
    pub fn run(self) -> Result<(), Error> {
        let poller = poll::Poller::new()?;
        self.listener.set_nonblocking(true)?;
        poller.add(self.listener.as_raw_fd(), TOKEN_LISTENER, poll::IN)?;
        poller.add(self.state.waker.fd(), TOKEN_WAKER, poll::IN)?;

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (done_tx, done_rx) = mpsc::channel::<Done>();

        let result = std::thread::scope(|scope| {
            for _ in 0..self.threads {
                let job_rx = Arc::clone(&job_rx);
                let done_tx = done_tx.clone();
                let opened = Arc::clone(&self.opened);
                let state = Arc::clone(&self.state);
                let writable = self.writable;
                scope.spawn(move || worker_loop(&opened, &state, writable, &job_rx, &done_tx));
            }
            drop(done_tx);
            // job_tx is moved in and dropped when the loop returns,
            // which is what lets every worker's recv() fail and exit.
            event_loop(&self, &poller, job_tx, &done_rx)
        });
        // Every connection is gone; drop any remaining registry clones
        // so client sockets close fully (they would otherwise linger
        // half-open for as long as a ServerHandle is alive).
        if let Ok(mut conns) = self.state.conns.lock() {
            conns.clear();
        }
        result
    }
}

/// One worker: executes bursts sequentially (frame order == response
/// order), posts the coalesced response bytes back and wakes the loop.
fn worker_loop(
    opened: &Opened,
    state: &ServerState,
    writable: bool,
    job_rx: &Mutex<mpsc::Receiver<Job>>,
    done_tx: &mpsc::Sender<Done>,
) {
    loop {
        // Holding the lock only for the recv keeps one slow burst from
        // serializing the whole pool.
        let job = match job_rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        let mut bytes = Vec::new();
        let mut shutdown = false;
        for frame in job.frames {
            let reply = match frame {
                Frame::Line(line) => {
                    if writable {
                        wire::handle_line_writable(opened, &line)
                    } else {
                        wire::handle_line(opened, &line)
                    }
                }
                Frame::Oversized => wire::oversized_reply(),
            };
            bytes.extend_from_slice(reply.line.as_bytes());
            bytes.push(b'\n');
            if reply.shutdown {
                // The ack is the last response this connection gets;
                // any frames pipelined behind it are dropped.
                shutdown = true;
                break;
            }
        }
        if done_tx
            .send(Done {
                token: job.token,
                bytes,
                shutdown,
            })
            .is_err()
        {
            return;
        }
        state.waker.wake();
    }
}

/// The readiness loop: accepts, frames, dispatches, collects, flushes.
fn event_loop(
    server: &Server,
    poller: &poll::Poller,
    job_tx: mpsc::Sender<Job>,
    done_rx: &mpsc::Receiver<Done>,
) -> Result<(), Error> {
    let state = &server.state;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut events = vec![poll::Event::zeroed(); EVENTS_PER_WAIT];
    let mut next_token = TOKEN_FIRST_CONN;
    let mut frames: Vec<Frame> = Vec::new();
    let mut accepting = true;
    // Set once the shutdown sweep has run; bounds the remaining drain.
    let mut draining: Option<Instant> = None;

    loop {
        let timeout_ms = match draining {
            None => -1,
            Some(at) => {
                let left = SHUTDOWN_DRAIN.saturating_sub(at.elapsed());
                left.as_millis().min(i32::MAX as u128) as i32
            }
        };
        let n = poller.wait(&mut events, timeout_ms)?;
        for &ev in events.iter().take(n) {
            match ev.token() {
                TOKEN_LISTENER => {
                    if accepting {
                        accept_ready(server, poller, &mut conns, &mut next_token);
                    }
                }
                TOKEN_WAKER => {
                    state.waker.drain();
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let ready = ev.readiness();
                    if ready & poll::ERR != 0 {
                        conn.mark_fatal();
                    }
                    if ready & poll::OUT != 0 {
                        conn.flush();
                    }
                    if ready & (poll::IN | poll::HUP | poll::RDHUP) != 0 {
                        pump_and_dispatch(conn, &job_tx, &mut frames);
                    }
                    settle(poller, state, &mut conns, token);
                }
            }
        }
        // Collect completed bursts: responses queue in request order
        // and flush coalesced; freed connections may dispatch the next
        // burst immediately.
        while let Ok(done) = done_rx.try_recv() {
            let Some(conn) = conns.get_mut(&done.token) else {
                continue; // connection died while its burst executed
            };
            conn.set_in_flight(false);
            conn.queue_response(&done.bytes);
            if done.shutdown {
                conn.half_close_read();
                state.trigger();
            }
            conn.flush();
            if !conn.finished() && draining.is_none() {
                pump_and_dispatch(conn, &job_tx, &mut frames);
            }
            settle(poller, state, &mut conns, done.token);
        }
        // Shutdown sweep, once: stop accepting, half-close every read
        // side (the trigger thread already half-closed registered
        // streams; this also covers conns it raced with), then drain.
        if draining.is_none() && state.shutting_down.load(Ordering::SeqCst) {
            draining = Some(Instant::now());
            if accepting {
                accepting = false;
                let _ = poller.remove(server.listener.as_raw_fd());
            }
            let tokens: Vec<u64> = conns.keys().copied().collect();
            for token in tokens {
                if let Some(conn) = conns.get_mut(&token) {
                    conn.half_close_read();
                }
                settle(poller, state, &mut conns, token);
            }
        }
        if let Some(at) = draining {
            if conns.is_empty() {
                break;
            }
            if at.elapsed() >= SHUTDOWN_DRAIN {
                // Peers that never drained their responses: force the
                // remaining sockets closed rather than hang run().
                for (token, conn) in conns.drain() {
                    let _ = poller.remove(conn.raw_fd());
                    state.deregister(token);
                }
                break;
            }
        }
    }
    Ok(())
}

/// Accepts every pending connection (nonblocking listener) and
/// registers it with the poller and the shutdown registry.
fn accept_ready(
    server: &Server,
    poller: &poll::Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        match server.listener.accept() {
            Ok((stream, _)) => {
                if server.state.shutting_down.load(Ordering::SeqCst) {
                    continue; // drop it; we are no longer serving
                }
                let token = *next_token;
                *next_token += 1;
                let Ok(mut conn) = Conn::new(stream, token) else {
                    continue;
                };
                server.state.register(token, conn.stream());
                if poller.add(conn.raw_fd(), token, poll::IN).is_ok() {
                    conn.registered = poll::IN;
                    conns.insert(token, conn);
                } else {
                    server.state.deregister(token);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // WouldBlock: backlog drained. Anything else (EMFILE & co):
            // stop for this round; level-triggered readiness retries.
            Err(_) => break,
        }
    }
}

/// Reads whatever `conn` has and, if that produced at least one
/// complete frame, dispatches the burst to the worker pool.
fn pump_and_dispatch(conn: &mut Conn, job_tx: &mpsc::Sender<Job>, frames: &mut Vec<Frame>) {
    if conn.is_in_flight() {
        return; // the completion path will pump again
    }
    frames.clear();
    conn.pump(frames);
    if !frames.is_empty() {
        conn.set_in_flight(true);
        // Send can only fail once workers are gone, i.e. never while
        // the loop runs; a lost burst at teardown is indistinguishable
        // from shutdown dropping undispatched requests.
        let _ = job_tx.send(Job {
            token: conn.token(),
            frames: std::mem::take(frames),
        });
    }
}

/// Post-activity bookkeeping for one connection: drop it when it is
/// finished, otherwise converge its poller registration with the
/// interest it currently wants.
fn settle(poller: &poll::Poller, state: &ServerState, conns: &mut HashMap<u64, Conn>, token: u64) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    if conn.finished() {
        let _ = poller.remove(conn.raw_fd());
        conns.remove(&token);
        state.deregister(token);
        return;
    }
    let want = conn.desired_interest();
    if want != conn.registered && poller.modify(conn.raw_fd(), token, want).is_ok() {
        conn.registered = want;
    }
}

// ---------------------------------------------------------------------
// Replication: the follower loop behind `utcq serve --follow`.

/// How long a caught-up follower waits before asking the leader for
/// news again.
pub const FOLLOW_POLL: std::time::Duration = std::time::Duration::from_millis(200);

/// First reconnect delay after the leader drops; doubles per attempt.
pub const FOLLOW_BACKOFF_BASE: std::time::Duration = std::time::Duration::from_millis(100);

/// Ceiling on the reconnect delay.
pub const FOLLOW_BACKOFF_CAP: std::time::Duration = std::time::Duration::from_secs(5);

/// A tiny xorshift generator for backoff jitter — enough randomness to
/// de-synchronize a fleet of reconnecting followers without pulling in
/// an RNG dependency.
struct Jitter(u64);

impl Jitter {
    fn seeded() -> Jitter {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        Jitter((nanos << 17) ^ u64::from(std::process::id()) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Sleeps in short slices so a raised `stop` flag is honored promptly.
fn sleep_unless_stopped(total: std::time::Duration, stop: &AtomicBool) {
    let slice = std::time::Duration::from_millis(20);
    let mut left = total;
    while !stop.load(Ordering::SeqCst) && !left.is_zero() {
        let step = left.min(slice);
        std::thread::sleep(step);
        left -= step;
    }
}

/// Streams accepted batches from a leader into this container — the
/// loop behind `utcq serve --follow <addr>`.
///
/// Connects to `leader`, repeatedly asks for batches after the epoch
/// this container is at (`{"op":"tail","from":<epoch>}`), and applies
/// each through the normal ingest path — the same compress-and-publish
/// code the leader ran, which is what makes leader and follower answers
/// byte-identical. On a disconnect it retries with capped exponential
/// backoff plus jitter and resumes from its own epoch, so no batch is
/// applied twice and none is skipped.
///
/// Returns `Ok(())` when `stop` is raised. Returns an error only when
/// following cannot meaningfully continue:
///
/// * the leader answers `tail_gap` — this follower is too far behind
///   the leader's bounded feed and must re-sync from a fresh container
///   copy;
/// * the leader answers `no_wal` — it was started without `--wal`;
/// * an applied batch publishes under a different epoch than the leader
///   recorded (the stores have diverged).
pub fn follow(opened: &Opened, leader: &str, stop: &AtomicBool) -> Result<(), Error> {
    let mut jitter = Jitter::seeded();
    let mut attempt: u32 = 0;
    while !stop.load(Ordering::SeqCst) {
        let stream = match TcpStream::connect(leader) {
            Ok(s) => s,
            Err(_) => {
                sleep_unless_stopped(backoff(attempt, &mut jitter), stop);
                attempt = attempt.saturating_add(1);
                continue;
            }
        };
        // A read timeout keeps a hung leader from pinning the loop; a
        // timed-out read is treated like a disconnect.
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        attempt = 0;
        while !stop.load(Ordering::SeqCst) {
            let from = opened.epoch();
            let request = format!("{{\"op\":\"tail\",\"from\":{from}}}\n");
            if writer
                .write_all(request.as_bytes())
                .and_then(|()| writer.flush())
                .is_err()
            {
                break; // reconnect
            }
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break, // EOF, timeout or torn connection
                Ok(_) => {}
            }
            let (batches, _current) = match wire::parse_tail_reply(line.trim_end()) {
                Ok(r) => r,
                Err(msg) => {
                    if msg.starts_with("tail_gap") || msg.starts_with("no_wal") {
                        return Err(Error::Io(std::io::Error::other(format!(
                            "cannot follow {leader}: {msg}"
                        ))));
                    }
                    break; // malformed reply: resync over a fresh connection
                }
            };
            if batches.is_empty() {
                sleep_unless_stopped(FOLLOW_POLL, stop);
                continue;
            }
            for (leader_epoch, batch) in &batches {
                let report = opened.ingest(batch)?;
                if report.epoch != *leader_epoch {
                    return Err(Error::Io(std::io::Error::other(format!(
                        "follower diverged from {leader}: batch recorded at leader epoch \
                         {leader_epoch} published locally as epoch {}; re-sync from a fresh \
                         container copy",
                        report.epoch
                    ))));
                }
            }
        }
    }
    Ok(())
}

/// Delay before reconnect attempt `attempt`: `base · 2^attempt` capped,
/// plus up to half of itself in jitter.
fn backoff(attempt: u32, jitter: &mut Jitter) -> std::time::Duration {
    let base = FOLLOW_BACKOFF_BASE.saturating_mul(1u32 << attempt.min(8));
    let capped = base.min(FOLLOW_BACKOFF_CAP);
    let extra = jitter.next() % (capped.as_millis() as u64 / 2).max(1);
    capped + std::time::Duration::from_millis(extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CompressParams;
    use crate::stiu::StiuParams;
    use crate::store::Store;
    use std::io::Read;
    use utcq_traj::{paper_fixture, Dataset};

    fn paper_opened() -> Arc<Opened> {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        let store = Store::build(
            Arc::new(fx.example.net.clone()),
            &ds,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
            StiuParams {
                partition_s: 900,
                grid_n: 4,
            },
        )
        .unwrap();
        Arc::new(Opened::Single(Box::new(store)))
    }

    fn roundtrip(addr: SocketAddr, request: &str) -> String {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer.write_all(request.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn serves_and_shuts_down_over_tcp() {
        let server = Server::bind(paper_opened(), "127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().unwrap());

        assert_eq!(
            roundtrip(addr, r#"{"id":1,"op":"ping"}"#),
            r#"{"id":1,"ok":true,"op":"ping"}"#
        );
        let t = paper_fixture::hms(5, 21, 25);
        let resp = roundtrip(addr, &format!(r#"{{"op":"where","traj":1,"t":{t}}}"#));
        assert!(resp.contains(r#""ok":true"#), "{resp}");
        assert!(resp.contains(r#""items":[{"instance":0"#), "{resp}");

        assert_eq!(
            roundtrip(addr, r#"{"op":"shutdown"}"#),
            r#"{"ok":true,"op":"shutdown"}"#
        );
        runner.join().unwrap();
        // The listener is gone: a fresh connection cannot complete a
        // round-trip anymore.
        let dead = TcpStream::connect(addr).and_then(|s| {
            s.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
            let mut line = String::new();
            BufReader::new(s).read_line(&mut line)?;
            Ok(line)
        });
        match dead {
            Err(_) => {}
            Ok(line) => assert!(line.is_empty(), "unexpected response: {line:?}"),
        }
    }

    #[test]
    fn handle_shuts_down_without_a_client() {
        let server = Server::bind(paper_opened(), "127.0.0.1:0", 1).unwrap();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run().unwrap());
        handle.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn pipelined_burst_answers_in_request_order() {
        let server = Server::bind(paper_opened(), "127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run().unwrap());

        // Send a whole burst without reading a single response.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let n = 32;
        for i in 0..n {
            writer
                .write_all(format!("{{\"id\":{i},\"op\":\"ping\"}}\n").as_bytes())
                .unwrap();
        }
        writer.flush().unwrap();
        for i in 0..n {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(
                line.trim_end(),
                format!("{{\"id\":{i},\"ok\":true,\"op\":\"ping\"}}"),
                "response {i} out of order"
            );
        }

        handle.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn idle_connections_survive_while_others_work() {
        let server = Server::bind(paper_opened(), "127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run().unwrap());

        // Far more idle connections than worker threads — under the
        // blocking design these would exhaust the pool.
        let idle: Vec<TcpStream> = (0..16).map(|_| TcpStream::connect(addr).unwrap()).collect();
        assert_eq!(
            roundtrip(addr, r#"{"id":1,"op":"ping"}"#),
            r#"{"id":1,"ok":true,"op":"ping"}"#
        );
        // Idle sockets are still alive: they answer after the worker.
        for (i, s) in idle.iter().enumerate() {
            let mut reader = BufReader::new(s.try_clone().unwrap());
            (s).set_read_timeout(Some(std::time::Duration::from_secs(5)))
                .unwrap();
            let mut w = s;
            w.write_all(format!("{{\"id\":{i},\"op\":\"ping\"}}\n").as_bytes())
                .unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(
                line.trim_end(),
                format!("{{\"id\":{i},\"ok\":true,\"op\":\"ping\"}}")
            );
        }

        handle.shutdown();
        runner.join().unwrap();
        // Idle connections see EOF after shutdown.
        for s in &idle {
            let mut buf = [0u8; 1];
            s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
                .unwrap();
            let mut r = s;
            assert_eq!(r.read(&mut buf).unwrap_or(0), 0);
        }
    }

    #[test]
    fn follower_streams_batches_and_stays_byte_identical() {
        // Leader: paper store with a WAL attached (the tail op needs
        // the in-memory feed).
        let leader = paper_opened();
        let dir = std::env::temp_dir().join(format!("utcq-follow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("leader.wal");
        let _ = std::fs::remove_file(&wal_path);
        leader
            .attach_wal(crate::wal::WalConfig::new(wal_path))
            .unwrap();
        let server = Server::bind(Arc::clone(&leader), "127.0.0.1:0", 2)
            .unwrap()
            .writable(true);
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run().unwrap());

        // Follower: an identical store, tailing the leader.
        let follower = paper_opened();
        let stop = Arc::new(AtomicBool::new(false));
        let f_opened = Arc::clone(&follower);
        let f_stop = Arc::clone(&stop);
        let leader_addr = addr.to_string();
        let tail = std::thread::spawn(move || follow(&f_opened, &leader_addr, &f_stop).unwrap());

        // Publish a batch on the leader over the wire.
        let fx = paper_fixture::build();
        let mut tu = fx.tu.clone();
        tu.id = 9;
        for t in &mut tu.times {
            *t += 100_000;
        }
        let batch = Dataset {
            name: String::new(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![tu.clone()],
        };
        leader.ingest(&batch).unwrap();

        // The follower catches up within the poll cadence.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while follower.epoch() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(follower.epoch(), 1, "follower never caught up");

        stop.store(true, Ordering::SeqCst);
        tail.join().unwrap();
        handle.shutdown();
        runner.join().unwrap();

        // Leader and follower answer the same query byte-identically.
        let t = tu.times[0];
        let req = format!(r#"{{"op":"where","traj":9,"t":{t},"alpha":0}}"#);
        let a = wire::handle_line(&leader, &req).line;
        let b = wire::handle_line(&follower, &req).line;
        assert!(a.contains(r#""ok":true"#), "{a}");
        assert_eq!(a, b, "leader and follower answers must be byte-identical");
    }
}
