//! A long-lived TCP query server over an opened container.
//!
//! [`Server`] binds a [`std::net::TcpListener`], opens the container
//! **once** (through the [`Opened`] facade, so v2 and v3 containers are
//! served identically) and answers the newline-delimited JSON protocol
//! of [`crate::wire`] — `PROTOCOL.md` documents the format. The decode
//! cache and query plans live in the shared store, so they stay warm
//! across requests and across connections: exactly the steady state the
//! `bench_queries` "warm" numbers measure, instead of the re-open-per-
//! invocation cost the CLI's offline `query` pays.
//!
//! # Threading model
//!
//! A small fixed pool: `threads` workers pull accepted connections from
//! one channel, each serving its connection request-by-request
//! (pipelined clients are fine — requests are answered in arrival
//! order). The query layer underneath is the same `Send + Sync` store
//! the parallel batch paths use, so workers share one decode cache and
//! never clone trajectory data.
//!
//! # Writable servers
//!
//! [`Server::writable`] enables the protocol's `ingest` op: batches
//! append to the live store (`PROTOCOL.md` documents the request).
//! Ingest runs on the store's writer path — compression and indexing
//! happen against a private clone of the current snapshot, then publish
//! as a new epoch — so queries on the other workers never block, and
//! pipelined queries behind an ingest on the *same* connection resume
//! as soon as the batch publishes. Read-only servers (the default)
//! answer `ingest` with the `read_only` error code.
//!
//! # Shutdown
//!
//! Graceful, from either side: a client sends `{"op":"shutdown"}` (it
//! gets the acknowledgement as its response), or the process calls
//! [`ServerHandle::shutdown`]. Either way the server then
//!
//! 1. stops accepting new connections (the acceptor is woken by a
//!    loopback connect, not killed),
//! 2. half-closes the **read** side of every live connection — each
//!    worker finishes the request it is executing, flushes the complete
//!    response line, then sees EOF and closes cleanly (no response is
//!    ever truncated mid-line), and
//! 3. joins every worker before [`Server::run`] returns.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use crate::error::Error;
use crate::opened::Opened;
use crate::wire;

/// Default worker-pool size for [`Server::bind`] callers that take the
/// CLI default.
pub const DEFAULT_THREADS: usize = 4;

/// Shared shutdown state: the flag, the live-connection registry and
/// the loopback address used to wake the acceptor.
///
/// The registry maps a per-connection token to a clone of its stream,
/// inserted at accept and removed when the handler finishes — entries
/// exist exactly while a connection is live, so the registry neither
/// leaks descriptors on a long-lived server nor holds client sockets
/// half-open after shutdown.
struct ServerState {
    shutting_down: AtomicBool,
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_token: AtomicU64,
    addr: SocketAddr,
}

impl ServerState {
    /// Flips the server into shutdown: stop accepting, half-close every
    /// live connection's read side, wake the (possibly blocked)
    /// acceptor. Idempotent.
    fn trigger(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Ok(conns) = self.conns.lock() {
            for c in conns.values() {
                // Readers see EOF after their in-flight request; the
                // write half stays open so responses finish intact.
                let _ = c.shutdown(Shutdown::Read);
            }
        }
        // Unblock `TcpListener::accept`.
        let _ = TcpStream::connect(self.addr);
    }

    /// Registers a freshly accepted connection; the token deregisters
    /// it when its handler finishes.
    fn register(&self, stream: &TcpStream) -> u64 {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        if let (Ok(mut conns), Ok(clone)) = (self.conns.lock(), stream.try_clone()) {
            conns.insert(token, clone);
        }
        // Close the race with a concurrent trigger(): a connection
        // accepted after the shutdown sweep but registered only now
        // would otherwise keep its read side open forever (and block
        // run() from draining). Checking after the insert means either
        // the sweep saw our entry or we see the flag — also covers a
        // failed try_clone above, since we half-close the stream itself.
        if self.shutting_down.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Read);
        }
        token
    }

    /// Drops the registry's clone, completing the close once the
    /// handler's own stream is gone.
    fn deregister(&self, token: u64) {
        if let Ok(mut conns) = self.conns.lock() {
            conns.remove(&token);
        }
    }
}

/// A handle that can stop a running [`Server`] from another thread —
/// what in-process embedders (tests, benchmarks) use instead of sending
/// a `shutdown` request over a socket.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Initiates the same graceful shutdown a `{"op":"shutdown"}`
    /// request does. Returns immediately; [`Server::run`] returns once
    /// every worker has drained.
    pub fn shutdown(&self) {
        self.state.trigger();
    }
}

/// A bound, not-yet-running query server. See the [module docs](self).
///
/// ```no_run
/// use std::sync::Arc;
/// use utcq_core::serve::Server;
/// use utcq_core::Opened;
///
/// # fn main() -> Result<(), utcq_core::Error> {
/// let opened = Arc::new(Opened::open("data.utcq")?);
/// // Port 0 = ephemeral; read the real port back before blocking.
/// let server = Server::bind(opened, "127.0.0.1:0", 4)?;
/// println!("listening on {}", server.local_addr());
/// server.run()?; // blocks until a shutdown request arrives
/// # Ok(()) }
/// ```
pub struct Server {
    listener: TcpListener,
    opened: Arc<Opened>,
    threads: usize,
    /// Whether `ingest` requests are honored (`utcq serve --writable`).
    /// Read-only servers answer them with the `read_only` error code.
    writable: bool,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) over an opened
    /// container. `threads` is the worker-pool size (clamped to ≥ 1).
    /// The server starts read-only; see [`Server::writable`].
    pub fn bind(opened: Arc<Opened>, addr: &str, threads: usize) -> Result<Self, Error> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            opened,
            threads: threads.max(1),
            writable: false,
            state: Arc::new(ServerState {
                shutting_down: AtomicBool::new(false),
                conns: Mutex::new(HashMap::new()),
                next_token: AtomicU64::new(0),
                addr,
            }),
        })
    }

    /// Enables (or disables) the `ingest` op for every connection.
    /// Ingest batches are serialized through the store's writer lock
    /// underneath, so any number of workers may carry them.
    pub fn writable(mut self, writable: bool) -> Self {
        self.writable = writable;
        self
    }

    /// The address actually bound — the resolved port when binding port
    /// `0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A shutdown handle usable from other threads while [`Server::run`]
    /// blocks.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until shut down (by a `shutdown` request or a
    /// [`ServerHandle`]), then drains the worker pool and returns.
    pub fn run(self) -> Result<(), Error> {
        let (tx, rx) = mpsc::channel::<(u64, TcpStream)>();
        let rx = Arc::new(Mutex::new(rx));
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                let rx = Arc::clone(&rx);
                let opened = Arc::clone(&self.opened);
                let state = Arc::clone(&self.state);
                let writable = self.writable;
                scope.spawn(move || loop {
                    // Holding the lock only for the recv keeps a slow
                    // connection from serializing the whole pool.
                    let next = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    match next {
                        Ok((token, stream)) => {
                            serve_connection(&opened, &state, writable, stream);
                            state.deregister(token);
                        }
                        Err(_) => break, // channel closed: acceptor is done
                    }
                });
            }
            for stream in self.listener.incoming() {
                if self.state.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let token = self.state.register(&stream);
                if tx.send((token, stream)).is_err() {
                    break;
                }
            }
            drop(tx); // workers drain queued connections, then exit
        });
        // Every handler is done; drop any remaining registry clones so
        // client sockets close fully (they would otherwise linger
        // half-open for as long as a ServerHandle is alive).
        if let Ok(mut conns) = self.state.conns.lock() {
            conns.clear();
        }
        Ok(())
    }
}

/// Serves one connection: read a line, execute, write the response
/// line, flush — until EOF, an unrecoverable socket error, or shutdown.
///
/// Reads are bounded: at most [`wire::MAX_REQUEST_BYTES`] + 3 bytes of
/// a line are ever buffered, so an unterminated request cannot grow
/// server memory without limit. An over-long line gets the same
/// `bad_request` response the offline executor produces; its remainder
/// is then discarded up to the next newline (itself bounded by
/// [`DRAIN_BUDGET_BYTES`]) so the connection resynchronizes on the next
/// request — a line that never ends within the budget closes the
/// connection instead.
fn serve_connection(opened: &Opened, state: &ServerState, writable: bool, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // +3 leaves room for a maximal request plus "\r\n" plus one
        // sentinel byte that proves the line ran over the cap.
        let mut bounded = (&mut reader).take(wire::MAX_REQUEST_BYTES as u64 + 3);
        match bounded.read_line(&mut line) {
            Ok(0) | Err(_) => return, // EOF or torn connection
            Ok(_) => {}
        }
        // The offline client reads via `lines()`, which strips the
        // terminator — strip it here too so the cap (and every answer)
        // is computed over identical bytes on both surfaces.
        let request = line.trim_end_matches(['\r', '\n']);
        if request.trim().is_empty() {
            continue;
        }
        // The executor rejects lines past MAX_REQUEST_BYTES itself.
        let oversized = request.len() > wire::MAX_REQUEST_BYTES;
        let reply = if writable {
            wire::handle_line_writable(opened, request)
        } else {
            wire::handle_line(opened, request)
        };
        if writer
            .write_all(reply.line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if oversized {
            // The rest of the over-long line is still inbound; discard
            // through its newline so the next request starts clean (and
            // so closing early can't RST away the response just sent).
            if !drain_line(&mut reader) {
                return;
            }
            continue;
        }
        if reply.shutdown {
            state.trigger();
            return;
        }
        if state.shutting_down.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// How many bytes of an over-long request line the server will discard
/// looking for its newline before giving up and closing the connection.
pub const DRAIN_BUDGET_BYTES: u64 = 64 * wire::MAX_REQUEST_BYTES as u64;

// ---------------------------------------------------------------------
// Replication: the follower loop behind `utcq serve --follow`.

/// How long a caught-up follower waits before asking the leader for
/// news again.
pub const FOLLOW_POLL: std::time::Duration = std::time::Duration::from_millis(200);

/// First reconnect delay after the leader drops; doubles per attempt.
pub const FOLLOW_BACKOFF_BASE: std::time::Duration = std::time::Duration::from_millis(100);

/// Ceiling on the reconnect delay.
pub const FOLLOW_BACKOFF_CAP: std::time::Duration = std::time::Duration::from_secs(5);

/// A tiny xorshift generator for backoff jitter — enough randomness to
/// de-synchronize a fleet of reconnecting followers without pulling in
/// an RNG dependency.
struct Jitter(u64);

impl Jitter {
    fn seeded() -> Jitter {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        Jitter((nanos << 17) ^ u64::from(std::process::id()) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Sleeps in short slices so a raised `stop` flag is honored promptly.
fn sleep_unless_stopped(total: std::time::Duration, stop: &AtomicBool) {
    let slice = std::time::Duration::from_millis(20);
    let mut left = total;
    while !stop.load(Ordering::SeqCst) && !left.is_zero() {
        let step = left.min(slice);
        std::thread::sleep(step);
        left -= step;
    }
}

/// Streams accepted batches from a leader into this container — the
/// loop behind `utcq serve --follow <addr>`.
///
/// Connects to `leader`, repeatedly asks for batches after the epoch
/// this container is at (`{"op":"tail","from":<epoch>}`), and applies
/// each through the normal ingest path — the same compress-and-publish
/// code the leader ran, which is what makes leader and follower answers
/// byte-identical. On a disconnect it retries with capped exponential
/// backoff plus jitter and resumes from its own epoch, so no batch is
/// applied twice and none is skipped.
///
/// Returns `Ok(())` when `stop` is raised. Returns an error only when
/// following cannot meaningfully continue:
///
/// * the leader answers `tail_gap` — this follower is too far behind
///   the leader's bounded feed and must re-sync from a fresh container
///   copy;
/// * the leader answers `no_wal` — it was started without `--wal`;
/// * an applied batch publishes under a different epoch than the leader
///   recorded (the stores have diverged).
pub fn follow(opened: &Opened, leader: &str, stop: &AtomicBool) -> Result<(), Error> {
    let mut jitter = Jitter::seeded();
    let mut attempt: u32 = 0;
    while !stop.load(Ordering::SeqCst) {
        let stream = match TcpStream::connect(leader) {
            Ok(s) => s,
            Err(_) => {
                sleep_unless_stopped(backoff(attempt, &mut jitter), stop);
                attempt = attempt.saturating_add(1);
                continue;
            }
        };
        // A read timeout keeps a hung leader from pinning the loop; a
        // timed-out read is treated like a disconnect.
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        attempt = 0;
        while !stop.load(Ordering::SeqCst) {
            let from = opened.epoch();
            let request = format!("{{\"op\":\"tail\",\"from\":{from}}}\n");
            if writer
                .write_all(request.as_bytes())
                .and_then(|()| writer.flush())
                .is_err()
            {
                break; // reconnect
            }
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break, // EOF, timeout or torn connection
                Ok(_) => {}
            }
            let (batches, _current) = match wire::parse_tail_reply(line.trim_end()) {
                Ok(r) => r,
                Err(msg) => {
                    if msg.starts_with("tail_gap") || msg.starts_with("no_wal") {
                        return Err(Error::Io(std::io::Error::other(format!(
                            "cannot follow {leader}: {msg}"
                        ))));
                    }
                    break; // malformed reply: resync over a fresh connection
                }
            };
            if batches.is_empty() {
                sleep_unless_stopped(FOLLOW_POLL, stop);
                continue;
            }
            for (leader_epoch, batch) in &batches {
                let report = opened.ingest(batch)?;
                if report.epoch != *leader_epoch {
                    return Err(Error::Io(std::io::Error::other(format!(
                        "follower diverged from {leader}: batch recorded at leader epoch \
                         {leader_epoch} published locally as epoch {}; re-sync from a fresh \
                         container copy",
                        report.epoch
                    ))));
                }
            }
        }
    }
    Ok(())
}

/// Delay before reconnect attempt `attempt`: `base · 2^attempt` capped,
/// plus up to half of itself in jitter.
fn backoff(attempt: u32, jitter: &mut Jitter) -> std::time::Duration {
    let base = FOLLOW_BACKOFF_BASE.saturating_mul(1u32 << attempt.min(8));
    let capped = base.min(FOLLOW_BACKOFF_CAP);
    let extra = jitter.next() % (capped.as_millis() as u64 / 2).max(1);
    capped + std::time::Duration::from_millis(extra)
}

/// Discards buffered input through the next `\n`, in `fill_buf`-sized
/// chunks and never more than [`DRAIN_BUDGET_BYTES`] total. Returns
/// whether a newline was found (i.e. the stream is resynchronized).
fn drain_line(reader: &mut BufReader<TcpStream>) -> bool {
    let mut budget = DRAIN_BUDGET_BYTES;
    loop {
        let buf = match reader.fill_buf() {
            Ok([]) | Err(_) => return false, // EOF or torn connection
            Ok(buf) => buf,
        };
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            reader.consume(pos + 1);
            return true;
        }
        let n = buf.len();
        reader.consume(n);
        budget = budget.saturating_sub(n as u64);
        if budget == 0 {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CompressParams;
    use crate::stiu::StiuParams;
    use crate::store::Store;
    use utcq_traj::{paper_fixture, Dataset};

    fn paper_opened() -> Arc<Opened> {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        let store = Store::build(
            Arc::new(fx.example.net.clone()),
            &ds,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
            StiuParams {
                partition_s: 900,
                grid_n: 4,
            },
        )
        .unwrap();
        Arc::new(Opened::Single(Box::new(store)))
    }

    fn roundtrip(addr: SocketAddr, request: &str) -> String {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer.write_all(request.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn serves_and_shuts_down_over_tcp() {
        let server = Server::bind(paper_opened(), "127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().unwrap());

        assert_eq!(
            roundtrip(addr, r#"{"id":1,"op":"ping"}"#),
            r#"{"id":1,"ok":true,"op":"ping"}"#
        );
        let t = paper_fixture::hms(5, 21, 25);
        let resp = roundtrip(addr, &format!(r#"{{"op":"where","traj":1,"t":{t}}}"#));
        assert!(resp.contains(r#""ok":true"#), "{resp}");
        assert!(resp.contains(r#""items":[{"instance":0"#), "{resp}");

        assert_eq!(
            roundtrip(addr, r#"{"op":"shutdown"}"#),
            r#"{"ok":true,"op":"shutdown"}"#
        );
        runner.join().unwrap();
        // The listener is gone: a fresh connection cannot complete a
        // round-trip anymore.
        let dead = TcpStream::connect(addr).and_then(|s| {
            s.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
            let mut line = String::new();
            BufReader::new(s).read_line(&mut line)?;
            Ok(line)
        });
        match dead {
            Err(_) => {}
            Ok(line) => assert!(line.is_empty(), "unexpected response: {line:?}"),
        }
    }

    #[test]
    fn handle_shuts_down_without_a_client() {
        let server = Server::bind(paper_opened(), "127.0.0.1:0", 1).unwrap();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run().unwrap());
        handle.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn follower_streams_batches_and_stays_byte_identical() {
        // Leader: paper store with a WAL attached (the tail op needs
        // the in-memory feed).
        let leader = paper_opened();
        let dir = std::env::temp_dir().join(format!("utcq-follow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("leader.wal");
        let _ = std::fs::remove_file(&wal_path);
        leader
            .attach_wal(crate::wal::WalConfig::new(wal_path))
            .unwrap();
        let server = Server::bind(Arc::clone(&leader), "127.0.0.1:0", 2)
            .unwrap()
            .writable(true);
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run().unwrap());

        // Follower: an identical store, tailing the leader.
        let follower = paper_opened();
        let stop = Arc::new(AtomicBool::new(false));
        let f_opened = Arc::clone(&follower);
        let f_stop = Arc::clone(&stop);
        let leader_addr = addr.to_string();
        let tail = std::thread::spawn(move || follow(&f_opened, &leader_addr, &f_stop).unwrap());

        // Publish a batch on the leader over the wire.
        let fx = paper_fixture::build();
        let mut tu = fx.tu.clone();
        tu.id = 9;
        for t in &mut tu.times {
            *t += 100_000;
        }
        let batch = Dataset {
            name: String::new(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![tu.clone()],
        };
        leader.ingest(&batch).unwrap();

        // The follower catches up within the poll cadence.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while follower.epoch() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(follower.epoch(), 1, "follower never caught up");

        stop.store(true, Ordering::SeqCst);
        tail.join().unwrap();
        handle.shutdown();
        runner.join().unwrap();

        // Leader and follower answer the same query byte-identically.
        let t = tu.times[0];
        let req = format!(r#"{{"op":"where","traj":9,"t":{t},"alpha":0}}"#);
        let a = wire::handle_line(&leader, &req).line;
        let b = wire::handle_line(&follower, &req).line;
        assert!(a.contains(r#""ok":true"#), "{a}");
        assert_eq!(a, b, "leader and follower answers must be byte-identical");
    }
}
