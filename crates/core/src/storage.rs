//! On-disk persistence of compressed datasets.
//!
//! A compact little-endian binary container (`UTCQ` magic, format
//! version 1) holding the compression parameters, every compressed
//! trajectory's bit streams, and the size accounting — everything needed
//! to reopen a store and query it without the original data. The road
//! network is *not* embedded (like the paper's setting, the network is a
//! shared static asset); the loader checks the recorded edge-number
//! width against the network it is given.

use std::io::{self, Read, Write};

use utcq_bitio::BitBuf;
use utcq_network::VertexId;
use utcq_traj::size::SizeBreakdown;

use crate::compress::CompressedDataset;
use crate::compressed::{CompressedNonRef, CompressedRef, CompressedTrajectory};
use crate::params::CompressParams;

const MAGIC: &[u8; 4] = b"UTCQ";
const VERSION: u8 = 1;

/// Errors while reading a container.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a UTCQ container or an unsupported version.
    BadHeader,
    /// Structurally invalid payload (corrupt lengths or padding).
    Corrupt(&'static str),
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadHeader => write!(f, "not a UTCQ v{VERSION} container"),
            StorageError::Corrupt(what) => write!(f, "corrupt container: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn write_bits(w: &mut impl Write, b: &BitBuf) -> io::Result<()> {
    write_u32(w, b.len_bits() as u32)?;
    w.write_all(b.as_bytes())
}

fn read_bits(r: &mut impl Read) -> Result<BitBuf, StorageError> {
    let len = read_u32(r)? as usize;
    if len > (1 << 30) {
        return Err(StorageError::Corrupt("bit stream longer than 2^30"));
    }
    let mut bytes = vec![0u8; len.div_ceil(8)];
    r.read_exact(&mut bytes)?;
    BitBuf::from_bytes(bytes, len).ok_or(StorageError::Corrupt("bit padding"))
}

fn write_breakdown(w: &mut impl Write, s: &SizeBreakdown) -> io::Result<()> {
    for v in [s.t, s.e, s.d, s.tflag, s.p, s.sv] {
        write_u64(w, v)?;
    }
    Ok(())
}

fn read_breakdown(r: &mut impl Read) -> io::Result<SizeBreakdown> {
    Ok(SizeBreakdown {
        t: read_u64(r)?,
        e: read_u64(r)?,
        d: read_u64(r)?,
        tflag: read_u64(r)?,
        p: read_u64(r)?,
        sv: read_u64(r)?,
    })
}

/// Serializes a compressed dataset into a writer.
pub fn save(cds: &CompressedDataset, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    write_f64(w, cds.params.eta_d)?;
    write_f64(w, cds.params.eta_p)?;
    write_u32(w, cds.params.n_pivots as u32)?;
    write_u64(w, cds.params.default_interval as u64)?;
    write_u32(w, cds.w_e)?;
    let name = cds.name.as_bytes();
    write_u32(w, name.len() as u32)?;
    w.write_all(name)?;
    write_breakdown(w, &cds.compressed)?;
    write_breakdown(w, &cds.raw)?;
    write_u64(w, cds.trajectories.len() as u64)?;
    for ct in &cds.trajectories {
        write_u64(w, ct.id)?;
        write_u32(w, ct.n_times)?;
        write_bits(w, &ct.t_bits)?;
        write_u32(w, ct.refs.len() as u32)?;
        for r in &ct.refs {
            write_u32(w, r.orig_idx)?;
            write_u32(w, r.sv.0)?;
            write_u32(w, r.n_entries)?;
            write_bits(w, &r.e_bits)?;
            write_bits(w, &r.tflag_bits)?;
            write_bits(w, &r.d_bits)?;
            write_u64(w, r.p_code)?;
        }
        write_u32(w, ct.nrefs.len() as u32)?;
        for n in &ct.nrefs {
            write_u32(w, n.orig_idx)?;
            write_u32(w, n.ref_idx)?;
            write_bits(w, &n.e_com)?;
            write_bits(w, &n.t_com)?;
            write_bits(w, &n.d_com)?;
            write_u64(w, n.p_code)?;
        }
    }
    Ok(())
}

/// Deserializes a compressed dataset from a reader.
pub fn load(r: &mut impl Read) -> Result<CompressedDataset, StorageError> {
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    if &magic[..4] != MAGIC || magic[4] != VERSION {
        return Err(StorageError::BadHeader);
    }
    let eta_d = read_f64(r)?;
    let eta_p = read_f64(r)?;
    let n_pivots = read_u32(r)? as usize;
    let default_interval = read_u64(r)? as i64;
    if !(eta_d > 0.0 && eta_d < 1.0 && eta_p > 0.0 && eta_p < 1.0) {
        return Err(StorageError::Corrupt("error bounds out of range"));
    }
    let params = CompressParams {
        eta_d,
        eta_p,
        n_pivots,
        default_interval,
    };
    let w_e = read_u32(r)?;
    if w_e == 0 || w_e > 32 {
        return Err(StorageError::Corrupt("edge width out of range"));
    }
    let name_len = read_u32(r)? as usize;
    if name_len > 4096 {
        return Err(StorageError::Corrupt("name too long"));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| StorageError::Corrupt("name utf8"))?;
    let compressed = read_breakdown(r)?;
    let raw = read_breakdown(r)?;
    let n_trajs = read_u64(r)? as usize;
    if n_trajs > (1 << 32) {
        return Err(StorageError::Corrupt("trajectory count"));
    }
    let mut trajectories = Vec::with_capacity(n_trajs.min(1 << 20));
    for _ in 0..n_trajs {
        let id = read_u64(r)?;
        let n_times = read_u32(r)?;
        let t_bits = read_bits(r)?;
        let n_refs = read_u32(r)? as usize;
        let mut refs = Vec::with_capacity(n_refs.min(1 << 16));
        for _ in 0..n_refs {
            refs.push(CompressedRef {
                orig_idx: read_u32(r)?,
                sv: VertexId(read_u32(r)?),
                n_entries: read_u32(r)?,
                e_bits: read_bits(r)?,
                tflag_bits: read_bits(r)?,
                d_bits: read_bits(r)?,
                p_code: read_u64(r)?,
            });
        }
        let n_nrefs = read_u32(r)? as usize;
        let mut nrefs = Vec::with_capacity(n_nrefs.min(1 << 16));
        for _ in 0..n_nrefs {
            let nref = CompressedNonRef {
                orig_idx: read_u32(r)?,
                ref_idx: read_u32(r)?,
                e_com: read_bits(r)?,
                t_com: read_bits(r)?,
                d_com: read_bits(r)?,
                p_code: read_u64(r)?,
            };
            if nref.ref_idx as usize >= refs.len() {
                return Err(StorageError::Corrupt("non-reference points past refs"));
            }
            nrefs.push(nref);
        }
        trajectories.push(CompressedTrajectory {
            id,
            n_times,
            t_bits,
            refs,
            nrefs,
        });
    }
    Ok(CompressedDataset {
        name,
        params,
        w_e,
        trajectories,
        compressed,
        raw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress_dataset;

    fn sample() -> (utcq_network::RoadNetwork, CompressedDataset) {
        let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 15, 31);
        let params = CompressParams::with_interval(ds.default_interval);
        let cds = compress_dataset(&net, &ds, &params).unwrap();
        (net, cds)
    }

    #[test]
    fn roundtrip_through_bytes() {
        let (net, cds) = sample();
        let mut bytes = Vec::new();
        save(&cds, &mut bytes).unwrap();
        let loaded = load(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.name, cds.name);
        assert_eq!(loaded.w_e, cds.w_e);
        assert_eq!(loaded.compressed, cds.compressed);
        assert_eq!(loaded.raw, cds.raw);
        assert_eq!(loaded.trajectories.len(), cds.trajectories.len());
        // Decompressing the loaded container matches decompressing the
        // original.
        let a = crate::decompress::decompress_dataset(&net, &cds).unwrap();
        let b = crate::decompress::decompress_dataset(&net, &loaded).unwrap();
        assert_eq!(a.trajectories, b.trajectories);
    }

    #[test]
    fn container_size_tracks_compressed_size() {
        let (_, cds) = sample();
        let mut bytes = Vec::new();
        save(&cds, &mut bytes).unwrap();
        // The container should be within ~2x of the pure payload bits
        // (framing adds per-stream lengths).
        let payload_bytes = cds.compressed.total() / 8;
        assert!(
            (bytes.len() as u64) < payload_bytes * 2 + 4096,
            "container {} vs payload {}",
            bytes.len(),
            payload_bytes
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Vec::new();
        save(&sample().1, &mut bytes).unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            load(&mut bytes.as_slice()),
            Err(StorageError::BadHeader)
        ));
    }

    #[test]
    fn truncation_rejected() {
        let mut bytes = Vec::new();
        save(&sample().1, &mut bytes).unwrap();
        for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(load(&mut bytes[..cut].as_ref()).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bitflips_do_not_panic() {
        let mut bytes = Vec::new();
        save(&sample().1, &mut bytes).unwrap();
        // Flip a sample of bits across the container; load must return
        // Ok or Err, never panic.
        for i in (0..bytes.len()).step_by(37) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let _ = load(&mut corrupt.as_slice());
        }
    }
}
