//! On-disk persistence of compressed datasets.
//!
//! Compact little-endian binary containers under the `UTCQ` magic. Three
//! format versions coexist:
//!
//! # Container v1 (legacy, still readable)
//!
//! Holds the compression parameters, every compressed trajectory's bit
//! streams, and the size accounting. The road network is *not* embedded —
//! v1 assumed the network was a shared static asset supplied out of band,
//! so reopening a v1 container requires the caller to provide the same
//! network again (see `Store::open_v1`).
//!
//! # Container v2 (self-contained)
//!
//! Embeds everything a query service needs, so `Store::open(path)` alone
//! yields a queryable store with zero side-channel arguments:
//!
//! ```text
//! "UTCQ"            4-byte magic
//! u8 = 2            format version
//! [network]         RoadNetwork (see utcq_network::serialize: counts,
//!                   coords, CSR offsets, targets, lengths)
//! [dataset]         identical to the v1 body:
//!     f64 ηD, f64 ηp, u32 n_pivots, u64 default_interval
//!     u32 w_e (outgoing-edge-number width)
//!     u32 name_len, name bytes (UTF-8)
//!     2 × SizeBreakdown (compressed, raw) — 6 × u64 each
//!     u64 trajectory count, then per trajectory:
//!         u64 id, u32 n_times, bits T
//!         u32 ref count,  per ref:  u32 orig_idx, u32 sv, u32 n_entries,
//!                                   bits E, bits T', bits D, u64 p_code
//!         u32 nref count, per nref: u32 orig_idx, u32 ref_idx,
//!                                   bits Com_E, Com_T, Com_D, u64 p_code
//! [stiu]            the StIU index:
//!     i64 partition_s, u32 grid_n (the grid itself is rebuilt from the
//!                                  embedded network + grid_n)
//!     u64 node count (== trajectory count), per node:
//!         u32 temporal count, per tuple: i64 start, u32 no, u32 pos
//!         u32 ref-tuple count, per tuple: u32 cell, u32 ref_idx,
//!             u8 has_fv, u32 fv, u32 fv_no, u32 d_pos,
//!             f64 p_total, f64 p_max
//!         u32 nref-tuple count, per tuple: u32 cell, u32 nref_idx,
//!             u32 rv, u32 rv_no, u32 ma_pos
//!     u64 interval count, per interval: i64 key, u32 len, len × u32
//! ```
//!
//! # Container v3 (sharded)
//!
//! A shard directory followed by one **embedded, fully self-contained v2
//! container per shard** — each blob parses standalone with [`load_v2`]:
//!
//! ```text
//! "UTCQ"            4-byte magic
//! u8 = 3            format version
//! u8 policy kind    POLICY_CUSTOM | POLICY_TIME | POLICY_REGION
//! i64 policy param  interval seconds / routing-grid dimension / 0
//! u32 shard count   1 ..= 65536
//! per shard:        u64 byte length, then that many bytes holding a
//!                   complete v2 container ("UTCQ" magic included)
//! ```
//!
//! `bits` streams are a `u32` bit length followed by the padded bytes.
//! [`load`] accepts v1 and v2 (returning the dataset only); [`load_v2`]
//! returns the full `(network, dataset, index)` triple; [`load_v3`]
//! returns the shard directory plus per-shard v2 blobs (and accepts a
//! plain v2 container as a single anonymous shard).

use std::io::{self, Read, Write};

use utcq_bitio::BitBuf;
use utcq_network::{CellId, RoadNetwork, VertexId};
use utcq_traj::size::SizeBreakdown;

use crate::compress::CompressedDataset;
use crate::compressed::{CompressedNonRef, CompressedRef, CompressedTrajectory};
use crate::params::CompressParams;
use crate::stiu::{NrefRegionTuple, RefRegionTuple, Stiu, StiuParams, TemporalTuple, TrajIndex};

const MAGIC: &[u8; 4] = b"UTCQ";
/// Legacy dataset-only container.
pub const VERSION_V1: u8 = 1;
/// Self-contained container embedding the network and StIU index.
pub const VERSION_V2: u8 = 2;
/// Sharded container: a shard directory followed by one embedded v2
/// container per shard.
pub const VERSION_V3: u8 = 3;

/// Shard-policy kind recorded in a v3 directory: the routing policy was
/// not one of the built-ins (metadata only — querying never routes).
pub const POLICY_CUSTOM: u8 = 0;
/// Shard-policy kind: time-interval routing (`param` = interval seconds).
pub const POLICY_TIME: u8 = 1;
/// Shard-policy kind: region routing (`param` = routing-grid dimension).
pub const POLICY_REGION: u8 = 2;

/// The fixed-size head of a v3 container: how the trajectories were
/// routed to shards. Pure metadata for reopening — query execution
/// discovers trajectory placement from the shard contents themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDirectory {
    /// One of [`POLICY_CUSTOM`], [`POLICY_TIME`], [`POLICY_REGION`].
    pub kind: u8,
    /// Policy parameter (interval seconds / grid dimension; `0` for
    /// custom policies).
    pub param: i64,
}

/// Errors while reading a container.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a UTCQ container or an unsupported version.
    BadHeader,
    /// A valid v1 container was given to a reader that needs v2
    /// (v1 has no embedded network).
    LegacyVersion,
    /// A sharded v3 container was given to a single-store reader.
    Sharded,
    /// Structurally invalid payload (corrupt lengths or padding).
    Corrupt(&'static str),
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadHeader => {
                write!(
                    f,
                    "not a UTCQ v{VERSION_V1}/v{VERSION_V2}/v{VERSION_V3} container"
                )
            }
            StorageError::LegacyVersion => {
                write!(f, "v{VERSION_V1} container where v{VERSION_V2} is required")
            }
            StorageError::Sharded => {
                write!(
                    f,
                    "sharded v{VERSION_V3} container where a single-store container is required"
                )
            }
            StorageError::Corrupt(what) => write!(f, "corrupt container: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

fn write_u8(w: &mut impl Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_i64(w: &mut impl Write, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0]) // bounds: read_exact filled the 1-byte buffer
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_i64(r: &mut impl Read) -> io::Result<i64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn write_bits(w: &mut impl Write, b: &BitBuf) -> io::Result<()> {
    write_u32(w, b.len_bits() as u32)?;
    w.write_all(b.as_bytes())
}

fn read_bits(r: &mut impl Read) -> Result<BitBuf, StorageError> {
    let len = read_u32(r)? as usize;
    if len > (1 << 30) {
        return Err(StorageError::Corrupt("bit stream longer than 2^30"));
    }
    let mut bytes = vec![0u8; len.div_ceil(8)];
    r.read_exact(&mut bytes)?;
    BitBuf::from_bytes(bytes, len).ok_or(StorageError::Corrupt("bit padding"))
}

fn write_breakdown(w: &mut impl Write, s: &SizeBreakdown) -> io::Result<()> {
    for v in [s.t, s.e, s.d, s.tflag, s.p, s.sv] {
        write_u64(w, v)?;
    }
    Ok(())
}

fn read_breakdown(r: &mut impl Read) -> io::Result<SizeBreakdown> {
    Ok(SizeBreakdown {
        t: read_u64(r)?,
        e: read_u64(r)?,
        d: read_u64(r)?,
        tflag: read_u64(r)?,
        p: read_u64(r)?,
        sv: read_u64(r)?,
    })
}

/// Writes the dataset body shared by both container versions.
fn write_dataset_body(cds: &CompressedDataset, w: &mut impl Write) -> io::Result<()> {
    write_f64(w, cds.params.eta_d)?;
    write_f64(w, cds.params.eta_p)?;
    write_u32(w, cds.params.n_pivots as u32)?;
    write_u64(w, cds.params.default_interval as u64)?;
    write_u32(w, cds.w_e)?;
    let name = cds.name.as_bytes();
    write_u32(w, name.len() as u32)?;
    w.write_all(name)?;
    write_breakdown(w, &cds.compressed)?;
    write_breakdown(w, &cds.raw)?;
    write_u64(w, cds.trajectories.len() as u64)?;
    for ct in &cds.trajectories {
        write_u64(w, ct.id)?;
        write_u32(w, ct.n_times)?;
        write_bits(w, &ct.t_bits)?;
        write_u32(w, ct.refs.len() as u32)?;
        for r in &ct.refs {
            write_u32(w, r.orig_idx)?;
            write_u32(w, r.sv.0)?;
            write_u32(w, r.n_entries)?;
            write_bits(w, &r.e_bits)?;
            write_bits(w, &r.tflag_bits)?;
            write_bits(w, &r.d_bits)?;
            write_u64(w, r.p_code)?;
        }
        write_u32(w, ct.nrefs.len() as u32)?;
        for n in &ct.nrefs {
            write_u32(w, n.orig_idx)?;
            write_u32(w, n.ref_idx)?;
            write_bits(w, &n.e_com)?;
            write_bits(w, &n.t_com)?;
            write_bits(w, &n.d_com)?;
            write_u64(w, n.p_code)?;
        }
    }
    Ok(())
}

/// Reads the dataset body shared by both container versions.
fn read_dataset_body(r: &mut impl Read) -> Result<CompressedDataset, StorageError> {
    let eta_d = read_f64(r)?;
    let eta_p = read_f64(r)?;
    let n_pivots = read_u32(r)? as usize;
    let default_interval = read_u64(r)? as i64;
    if !(eta_d > 0.0 && eta_d < 1.0 && eta_p > 0.0 && eta_p < 1.0) {
        return Err(StorageError::Corrupt("error bounds out of range"));
    }
    let params = CompressParams {
        eta_d,
        eta_p,
        n_pivots,
        default_interval,
    };
    let w_e = read_u32(r)?;
    if w_e == 0 || w_e > 32 {
        return Err(StorageError::Corrupt("edge width out of range"));
    }
    let name_len = read_u32(r)? as usize;
    if name_len > 4096 {
        return Err(StorageError::Corrupt("name too long"));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| StorageError::Corrupt("name utf8"))?;
    let compressed = read_breakdown(r)?;
    let raw = read_breakdown(r)?;
    let n_trajs = read_u64(r)? as usize;
    if n_trajs > (1 << 32) {
        return Err(StorageError::Corrupt("trajectory count"));
    }
    let mut trajectories = Vec::with_capacity(n_trajs.min(1 << 20));
    for _ in 0..n_trajs {
        let id = read_u64(r)?;
        let n_times = read_u32(r)?;
        let t_bits = read_bits(r)?;
        let n_refs = read_u32(r)? as usize;
        let mut refs = Vec::with_capacity(n_refs.min(1 << 16));
        for _ in 0..n_refs {
            refs.push(CompressedRef {
                orig_idx: read_u32(r)?,
                sv: VertexId(read_u32(r)?),
                n_entries: read_u32(r)?,
                e_bits: read_bits(r)?,
                tflag_bits: read_bits(r)?,
                d_bits: read_bits(r)?,
                p_code: read_u64(r)?,
            });
        }
        let n_nrefs = read_u32(r)? as usize;
        let mut nrefs = Vec::with_capacity(n_nrefs.min(1 << 16));
        for _ in 0..n_nrefs {
            let nref = CompressedNonRef {
                orig_idx: read_u32(r)?,
                ref_idx: read_u32(r)?,
                e_com: read_bits(r)?,
                t_com: read_bits(r)?,
                d_com: read_bits(r)?,
                p_code: read_u64(r)?,
            };
            if nref.ref_idx as usize >= refs.len() {
                return Err(StorageError::Corrupt("non-reference points past refs"));
            }
            nrefs.push(nref);
        }
        trajectories.push(CompressedTrajectory {
            id,
            n_times,
            t_bits,
            refs,
            nrefs,
        });
    }
    Ok(CompressedDataset {
        name,
        params,
        w_e,
        trajectories: crate::chunk::ChunkedVec::from_vec(trajectories),
        compressed,
        raw,
    })
}

fn write_stiu(stiu: &Stiu, w: &mut impl Write) -> io::Result<()> {
    write_i64(w, stiu.params.partition_s)?;
    write_u32(w, stiu.params.grid_n)?;
    write_u64(w, stiu.trajs.len() as u64)?;
    for node in &stiu.trajs {
        write_u32(w, node.temporal.len() as u32)?;
        for t in &node.temporal {
            write_i64(w, t.start)?;
            write_u32(w, t.no)?;
            write_u32(w, t.pos)?;
        }
        write_u32(w, node.ref_tuples.len() as u32)?;
        for t in &node.ref_tuples {
            write_u32(w, t.cell.0)?;
            write_u32(w, t.ref_idx)?;
            write_u8(w, t.fv.is_some() as u8)?;
            write_u32(w, t.fv.map_or(0, |v| v.0))?;
            write_u32(w, t.fv_no)?;
            write_u32(w, t.d_pos)?;
            write_f64(w, t.p_total)?;
            write_f64(w, t.p_max)?;
        }
        write_u32(w, node.nref_tuples.len() as u32)?;
        for t in &node.nref_tuples {
            write_u32(w, t.cell.0)?;
            write_u32(w, t.nref_idx)?;
            write_u32(w, t.rv.0)?;
            write_u32(w, t.rv_no)?;
            write_u32(w, t.ma_pos)?;
        }
    }
    // Deterministic container bytes: intervals in sorted order, each
    // with its postings merged across the in-memory segments back into
    // ascending-position order — byte-identical to the flat layout.
    let keys = stiu.interval_trajs.sorted_keys();
    write_u64(w, keys.len() as u64)?;
    for k in keys {
        write_i64(w, k)?;
        let v = stiu.interval_trajs.postings(k);
        write_u32(w, v.len() as u32)?;
        for &j in &v {
            write_u32(w, j)?;
        }
    }
    Ok(())
}

fn read_stiu(r: &mut impl Read, net: &RoadNetwork) -> Result<Stiu, StorageError> {
    let partition_s = read_i64(r)?;
    if partition_s <= 0 {
        return Err(StorageError::Corrupt("non-positive time partition"));
    }
    let grid_n = read_u32(r)?;
    if grid_n == 0 || grid_n > (1 << 14) {
        return Err(StorageError::Corrupt("grid dimension out of range"));
    }
    let params = StiuParams {
        partition_s,
        grid_n,
    };
    let mut stiu = Stiu::new(net, params);
    let n_nodes = read_u64(r)? as usize;
    if n_nodes > (1 << 32) {
        return Err(StorageError::Corrupt("index node count"));
    }
    let n_cells = stiu.grid.cell_count() as u32;
    let n_vertices = net.vertex_count() as u32;
    for _ in 0..n_nodes {
        let mut node = TrajIndex::default();
        let n_temporal = read_u32(r)? as usize;
        if n_temporal > (1 << 24) {
            return Err(StorageError::Corrupt("temporal tuple count"));
        }
        for _ in 0..n_temporal {
            node.temporal.push(TemporalTuple {
                start: read_i64(r)?,
                no: read_u32(r)?,
                pos: read_u32(r)?,
            });
        }
        let n_refs = read_u32(r)? as usize;
        if n_refs > (1 << 24) {
            return Err(StorageError::Corrupt("ref tuple count"));
        }
        for _ in 0..n_refs {
            let cell = read_u32(r)?;
            let ref_idx = read_u32(r)?;
            let has_fv = read_u8(r)?;
            let fv = read_u32(r)?;
            let tuple = RefRegionTuple {
                cell: CellId(cell),
                ref_idx,
                fv: (has_fv != 0).then_some(VertexId(fv)),
                fv_no: read_u32(r)?,
                d_pos: read_u32(r)?,
                p_total: read_f64(r)?,
                p_max: read_f64(r)?,
            };
            if cell >= n_cells {
                return Err(StorageError::Corrupt("ref tuple cell out of range"));
            }
            if has_fv != 0 && fv >= n_vertices {
                return Err(StorageError::Corrupt("ref tuple vertex out of range"));
            }
            if !tuple.p_total.is_finite() || !tuple.p_max.is_finite() {
                return Err(StorageError::Corrupt("non-finite probability bound"));
            }
            node.ref_tuples.push(tuple);
        }
        let n_nrefs = read_u32(r)? as usize;
        if n_nrefs > (1 << 24) {
            return Err(StorageError::Corrupt("nref tuple count"));
        }
        for _ in 0..n_nrefs {
            let cell = read_u32(r)?;
            let nref_idx = read_u32(r)?;
            let rv = read_u32(r)?;
            let tuple = NrefRegionTuple {
                cell: CellId(cell),
                nref_idx,
                rv: VertexId(rv),
                rv_no: read_u32(r)?,
                ma_pos: read_u32(r)?,
            };
            if cell >= n_cells || rv >= n_vertices {
                return Err(StorageError::Corrupt("nref tuple out of range"));
            }
            node.nref_tuples.push(tuple);
        }
        stiu.trajs.push(node);
    }
    let n_intervals = read_u64(r)? as usize;
    if n_intervals > (1 << 32) {
        return Err(StorageError::Corrupt("interval count"));
    }
    let mut merged: std::collections::HashMap<i64, Vec<u32>> =
        std::collections::HashMap::with_capacity(n_intervals.min(1 << 20));
    for _ in 0..n_intervals {
        let k = read_i64(r)?;
        let len = read_u32(r)? as usize;
        if len > n_nodes {
            return Err(StorageError::Corrupt("interval posting list too long"));
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            let j = read_u32(r)?;
            if j as usize >= n_nodes {
                return Err(StorageError::Corrupt("interval posting out of range"));
            }
            v.push(j);
        }
        if merged.insert(k, v).is_some() {
            return Err(StorageError::Corrupt("duplicate interval key"));
        }
    }
    // Re-segment per trajectory chunk, matching a live-grown layout.
    stiu.interval_trajs = crate::chunk::IntervalMap::from_merged(merged, n_nodes);
    Ok(stiu)
}

/// Serializes a compressed dataset into a writer (legacy v1 container).
pub fn save(cds: &CompressedDataset, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u8(w, VERSION_V1)?;
    write_dataset_body(cds, w)
}

/// Serializes a self-contained v2 container: network + dataset + index.
pub fn save_v2(
    net: &RoadNetwork,
    cds: &CompressedDataset,
    stiu: &Stiu,
    w: &mut impl Write,
) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u8(w, VERSION_V2)?;
    net.write_to(w)?;
    write_dataset_body(cds, w)?;
    write_stiu(stiu, w)
}

/// Serializes a sharded v3 container: the shard directory followed by
/// one length-prefixed, fully self-contained v2 container per shard
/// (each blob parses standalone with [`load_v2`], so shards can be
/// extracted, inspected or re-sharded without understanding v3).
pub fn save_v3(dir: ShardDirectory, shards: &[Vec<u8>], w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u8(w, VERSION_V3)?;
    write_u8(w, dir.kind)?;
    write_i64(w, dir.param)?;
    write_u32(w, shards.len() as u32)?;
    for blob in shards {
        write_u64(w, blob.len() as u64)?;
        w.write_all(blob)?;
    }
    Ok(())
}

/// Deserializes a sharded container into its directory and per-shard v2
/// container bytes. Accepts a plain v2 container too, returned as a
/// single shard with no directory — so a sharded reader opens both
/// transparently. v1 still fails with [`StorageError::LegacyVersion`].
pub fn load_v3(r: &mut impl Read) -> Result<(Option<ShardDirectory>, Vec<Vec<u8>>), StorageError> {
    match read_header(r)? {
        VERSION_V1 => Err(StorageError::LegacyVersion),
        VERSION_V2 => {
            // Re-frame the rest of the stream as one standalone shard.
            let mut blob = Vec::from(*MAGIC);
            blob.push(VERSION_V2);
            r.read_to_end(&mut blob)?;
            Ok((None, vec![blob]))
        }
        _ => {
            let kind = read_u8(r)?;
            if kind > POLICY_REGION {
                return Err(StorageError::Corrupt("unknown shard policy kind"));
            }
            let param = read_i64(r)?;
            let n_shards = read_u32(r)? as usize;
            if n_shards == 0 || n_shards > (1 << 16) {
                return Err(StorageError::Corrupt("shard count out of range"));
            }
            let mut shards = Vec::with_capacity(n_shards);
            for _ in 0..n_shards {
                let len = read_u64(r)?;
                if !(5..=(1u64 << 40)).contains(&len) {
                    return Err(StorageError::Corrupt("shard blob length out of range"));
                }
                // Read through a `take` so the allocation grows with the
                // bytes that actually arrive — a crafted length field
                // must not provoke a giant up-front allocation.
                let mut blob = Vec::new();
                r.by_ref().take(len).read_to_end(&mut blob)?;
                if blob.len() as u64 != len {
                    return Err(StorageError::Corrupt("shard blob truncated"));
                }
                // bounds: len >= 5 enforced above, and blob.len() == len
                if &blob[..4] != MAGIC || blob[4] != VERSION_V2 {
                    return Err(StorageError::Corrupt("shard blob is not a v2 container"));
                }
                shards.push(blob);
            }
            Ok((Some(ShardDirectory { kind, param }), shards))
        }
    }
}

/// Reads the magic and version byte.
fn read_header(r: &mut impl Read) -> Result<u8, StorageError> {
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    // bounds: magic is a [u8; 5] filled by read_exact
    if &magic[..4] != MAGIC {
        return Err(StorageError::BadHeader);
    }
    // bounds: magic is a [u8; 5], index 4 is in range
    match magic[4] {
        v @ (VERSION_V1 | VERSION_V2 | VERSION_V3) => Ok(v),
        _ => Err(StorageError::BadHeader),
    }
}

/// Deserializes the compressed dataset from either container version.
///
/// For v2 containers the embedded network is parsed (the dataset body
/// sits after it) but the trailing StIU index is not read at all —
/// dataset-only consumers (`info`, `verify`) neither pay for it nor
/// fail on index-section corruption.
pub fn load(r: &mut impl Read) -> Result<CompressedDataset, StorageError> {
    match read_header(r)? {
        VERSION_V1 => read_dataset_body(r),
        VERSION_V2 => {
            let _net =
                RoadNetwork::read_from(r).map_err(|_| StorageError::Corrupt("embedded network"))?;
            read_dataset_body(r)
        }
        _ => Err(StorageError::Sharded),
    }
}

/// Deserializes a self-contained v2 container.
///
/// Fails with [`StorageError::LegacyVersion`] on v1 containers — those
/// need the caller to supply the network (`Store::open_v1`).
pub fn load_v2(r: &mut impl Read) -> Result<(RoadNetwork, CompressedDataset, Stiu), StorageError> {
    match read_header(r)? {
        VERSION_V1 => Err(StorageError::LegacyVersion),
        VERSION_V3 => Err(StorageError::Sharded),
        _ => {
            let net =
                RoadNetwork::read_from(r).map_err(|_| StorageError::Corrupt("embedded network"))?;
            let cds = read_dataset_body(r)?;
            let stiu = read_stiu(r, &net)?;
            if stiu.trajs.len() != cds.trajectories.len() {
                return Err(StorageError::Corrupt("index/dataset trajectory counts"));
            }
            if net.max_out_degree() > 0 {
                let expect = crate::compressed::edge_number_width(net.max_out_degree());
                if expect != cds.w_e {
                    return Err(StorageError::Corrupt("edge width vs embedded network"));
                }
            }
            Ok((net, cds, stiu))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress_dataset;

    fn sample() -> (utcq_network::RoadNetwork, CompressedDataset) {
        let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 15, 31);
        let params = CompressParams::with_interval(ds.default_interval);
        let cds = compress_dataset(&net, &ds, &params).unwrap();
        (net, cds)
    }

    fn sample_with_stiu() -> (utcq_network::RoadNetwork, CompressedDataset, Stiu) {
        let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 15, 31);
        let params = CompressParams::with_interval(ds.default_interval);
        let cds = compress_dataset(&net, &ds, &params).unwrap();
        let stiu = crate::stiu::build(&net, &ds, &cds, StiuParams::default());
        (net, cds, stiu)
    }

    #[test]
    fn roundtrip_through_bytes() {
        let (net, cds) = sample();
        let mut bytes = Vec::new();
        save(&cds, &mut bytes).unwrap();
        let loaded = load(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.name, cds.name);
        assert_eq!(loaded.w_e, cds.w_e);
        assert_eq!(loaded.compressed, cds.compressed);
        assert_eq!(loaded.raw, cds.raw);
        assert_eq!(loaded.trajectories.len(), cds.trajectories.len());
        // Decompressing the loaded container matches decompressing the
        // original.
        let a = crate::decompress::decompress_dataset(&net, &cds).unwrap();
        let b = crate::decompress::decompress_dataset(&net, &loaded).unwrap();
        assert_eq!(a.trajectories, b.trajectories);
    }

    #[test]
    fn v2_roundtrip_preserves_all_parts() {
        let (net, cds, stiu) = sample_with_stiu();
        let mut bytes = Vec::new();
        save_v2(&net, &cds, &stiu, &mut bytes).unwrap();
        let (net2, cds2, stiu2) = load_v2(&mut bytes.as_slice()).unwrap();
        assert_eq!(net2.vertex_count(), net.vertex_count());
        assert_eq!(net2.edge_count(), net.edge_count());
        assert_eq!(cds2.compressed, cds.compressed);
        assert_eq!(cds2.trajectories.len(), cds.trajectories.len());
        assert_eq!(stiu2.trajs.len(), stiu.trajs.len());
        assert_eq!(stiu2.interval_trajs.len(), stiu.interval_trajs.len());
        for (a, b) in stiu.trajs.iter().zip(&stiu2.trajs) {
            assert_eq!(a.temporal, b.temporal);
            assert_eq!(a.ref_tuples.len(), b.ref_tuples.len());
            assert_eq!(a.nref_tuples.len(), b.nref_tuples.len());
        }
        // The generic loader also accepts v2, dataset-only.
        let just_cds = load(&mut bytes.as_slice()).unwrap();
        assert_eq!(just_cds.compressed, cds.compressed);
    }

    #[test]
    fn v1_rejected_by_v2_loader() {
        let (_, cds) = sample();
        let mut bytes = Vec::new();
        save(&cds, &mut bytes).unwrap();
        // A valid v1 file is reported as *legacy*, not as garbage.
        assert!(matches!(
            load_v2(&mut bytes.as_slice()),
            Err(StorageError::LegacyVersion)
        ));
    }

    #[test]
    fn dataset_load_survives_index_corruption() {
        // The StIU section trails the container; load() must not touch
        // it, so damage there cannot block dataset-only consumers.
        let (net, cds, stiu) = sample_with_stiu();
        let mut bytes = Vec::new();
        save_v2(&net, &cds, &stiu, &mut bytes).unwrap();
        let tail = bytes.len() - 8;
        bytes[tail..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(
            load_v2(&mut bytes.as_slice()).is_err(),
            "index read must fail"
        );
        let loaded = load(&mut bytes.as_slice()).expect("dataset body is intact");
        assert_eq!(loaded.compressed, cds.compressed);
    }

    fn v2_blob() -> Vec<u8> {
        let (net, cds, stiu) = sample_with_stiu();
        let mut bytes = Vec::new();
        save_v2(&net, &cds, &stiu, &mut bytes).unwrap();
        bytes
    }

    #[test]
    fn v3_roundtrip_preserves_directory_and_blobs() {
        let blob = v2_blob();
        let dir = ShardDirectory {
            kind: POLICY_TIME,
            param: 3600,
        };
        let mut bytes = Vec::new();
        save_v3(dir, &[blob.clone(), blob.clone()], &mut bytes).unwrap();
        let (dir2, blobs) = load_v3(&mut bytes.as_slice()).unwrap();
        assert_eq!(dir2, Some(dir));
        assert_eq!(blobs.len(), 2);
        assert_eq!(blobs[0], blob);
        // Each blob is a standalone v2 container.
        let (_, cds, _) = load_v2(&mut blobs[1].as_slice()).unwrap();
        assert!(!cds.trajectories.is_empty());
    }

    #[test]
    fn v3_reader_accepts_plain_v2_as_single_shard() {
        let blob = v2_blob();
        let (dir, blobs) = load_v3(&mut blob.as_slice()).unwrap();
        assert_eq!(dir, None);
        assert_eq!(blobs.len(), 1);
        assert_eq!(blobs[0], blob);
    }

    #[test]
    fn v3_rejected_by_single_store_loaders() {
        let blob = v2_blob();
        let mut bytes = Vec::new();
        save_v3(
            ShardDirectory {
                kind: POLICY_REGION,
                param: 8,
            },
            &[blob],
            &mut bytes,
        )
        .unwrap();
        assert!(matches!(
            load(&mut bytes.as_slice()),
            Err(StorageError::Sharded)
        ));
        assert!(matches!(
            load_v2(&mut bytes.as_slice()),
            Err(StorageError::Sharded)
        ));
        // And v1 is still legacy, not sharded, through the v3 reader.
        let (_, cds) = sample();
        let mut v1 = Vec::new();
        save(&cds, &mut v1).unwrap();
        assert!(matches!(
            load_v3(&mut v1.as_slice()),
            Err(StorageError::LegacyVersion)
        ));
    }

    #[test]
    fn v3_corruption_is_rejected_not_panicking() {
        let blob = v2_blob();
        let mut bytes = Vec::new();
        save_v3(
            ShardDirectory {
                kind: POLICY_TIME,
                param: 3600,
            },
            &[blob],
            &mut bytes,
        )
        .unwrap();
        // Truncations.
        for cut in [6, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(load_v3(&mut bytes[..cut].as_ref()).is_err(), "cut={cut}");
        }
        // Bad policy kind.
        let mut bad = bytes.clone();
        bad[5] = 9;
        assert!(matches!(
            load_v3(&mut bad.as_slice()),
            Err(StorageError::Corrupt(_))
        ));
        // Zero shards.
        let mut none = Vec::new();
        save_v3(
            ShardDirectory {
                kind: POLICY_CUSTOM,
                param: 0,
            },
            &[],
            &mut none,
        )
        .unwrap();
        assert!(matches!(
            load_v3(&mut none.as_slice()),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn container_size_tracks_compressed_size() {
        let (_, cds) = sample();
        let mut bytes = Vec::new();
        save(&cds, &mut bytes).unwrap();
        // The container should be within ~2x of the pure payload bits
        // (framing adds per-stream lengths).
        let payload_bytes = cds.compressed.total() / 8;
        assert!(
            (bytes.len() as u64) < payload_bytes * 2 + 4096,
            "container {} vs payload {}",
            bytes.len(),
            payload_bytes
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Vec::new();
        save(&sample().1, &mut bytes).unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            load(&mut bytes.as_slice()),
            Err(StorageError::BadHeader)
        ));
        // Unknown future version is also a header error.
        let mut bytes = Vec::new();
        save(&sample().1, &mut bytes).unwrap();
        bytes[4] = 9;
        assert!(matches!(
            load(&mut bytes.as_slice()),
            Err(StorageError::BadHeader)
        ));
    }

    #[test]
    fn truncation_rejected() {
        let mut bytes = Vec::new();
        save(&sample().1, &mut bytes).unwrap();
        for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(load(&mut bytes[..cut].as_ref()).is_err(), "cut={cut}");
        }
        // Same for the v2 container.
        let (net, cds, stiu) = sample_with_stiu();
        let mut bytes = Vec::new();
        save_v2(&net, &cds, &stiu, &mut bytes).unwrap();
        for cut in [6, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(load_v2(&mut bytes[..cut].as_ref()).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bitflips_do_not_panic() {
        let mut bytes = Vec::new();
        save(&sample().1, &mut bytes).unwrap();
        // Flip a sample of bits across the container; load must return
        // Ok or Err, never panic.
        for i in (0..bytes.len()).step_by(37) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let _ = load(&mut corrupt.as_slice());
        }
        let (net, cds, stiu) = sample_with_stiu();
        let mut bytes = Vec::new();
        save_v2(&net, &cds, &stiu, &mut bytes).unwrap();
        for i in (0..bytes.len()).step_by(53) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let _ = load_v2(&mut corrupt.as_slice());
        }
    }
}
