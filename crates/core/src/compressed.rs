//! Compressed containers and their bit layouts.
//!
//! Per uncertain trajectory, UTCQ stores one SIAR-encoded time stream plus
//! per-instance payloads split by role:
//!
//! * a **reference** keeps its start vertex, fixed-width edge entries
//!   (entry `i` starts at bit `i·w_e`, which is what makes the StIU
//!   `fv.no` pointers work), the trimmed time-flag bits verbatim, one PDDP
//!   code per relative distance (code `i` at bit `i·w_d` — the `d.pos`
//!   pointers), and a PDDP probability code;
//! * a **non-reference** keeps only factor streams (`Com_E`, `Com_T'`,
//!   `Com_D`) against its reference, plus its probability code.
//!
//! `orig_idx` preserves the original instance ordering for exact
//! round-trip testing; it is reconstruction metadata, not counted in the
//! compressed size (instances form a set, Definition 5).

use utcq_bitio::pddp::PddpCodec;
use utcq_bitio::{width_for_max, BitBuf, BitWriter, CodecError};
use utcq_network::VertexId;

use crate::factor;

/// A compressed reference instance.
#[derive(Debug, Clone)]
pub struct CompressedRef {
    /// Position of this instance in the original instance list.
    pub orig_idx: u32,
    /// Start vertex (kept verbatim; 32 bits).
    pub sv: VertexId,
    /// Number of `E` entries.
    pub n_entries: u32,
    /// Fixed-width outgoing-edge numbers, entry `i` at bit `i·w_e`.
    pub e_bits: BitBuf,
    /// Trimmed time flags (`n_entries − 2` bits), verbatim.
    pub tflag_bits: BitBuf,
    /// PDDP distance codes, code `i` at bit `i·w_d`.
    pub d_bits: BitBuf,
    /// PDDP probability code.
    pub p_code: u64,
}

/// A compressed non-reference instance.
#[derive(Debug, Clone)]
pub struct CompressedNonRef {
    /// Position of this instance in the original instance list.
    pub orig_idx: u32,
    /// Index into [`CompressedTrajectory::refs`] of the owning reference.
    pub ref_idx: u32,
    /// Encoded `Com_E` (header + factors).
    pub e_com: BitBuf,
    /// Encoded `Com_T'`.
    pub t_com: BitBuf,
    /// Encoded `Com_D`.
    pub d_com: BitBuf,
    /// PDDP probability code.
    pub p_code: u64,
}

/// One compressed uncertain trajectory.
#[derive(Debug, Clone)]
pub struct CompressedTrajectory {
    /// Original trajectory id.
    pub id: u64,
    /// Number of shared timestamps.
    pub n_times: u32,
    /// SIAR + improved-Exp-Golomb time stream.
    pub t_bits: BitBuf,
    /// Reference instances.
    pub refs: Vec<CompressedRef>,
    /// Non-reference instances.
    pub nrefs: Vec<CompressedNonRef>,
}

impl CompressedTrajectory {
    /// Total number of instances.
    pub fn instance_count(&self) -> usize {
        self.refs.len() + self.nrefs.len()
    }
}

/// Encodes fixed-width edge entries.
pub fn encode_entries(entries: &[u32], w_e: u32) -> Result<BitBuf, CodecError> {
    let mut w = BitWriter::with_capacity(entries.len() * w_e as usize);
    for &e in entries {
        w.write_bits(u64::from(e), w_e)?;
    }
    Ok(w.finish())
}

/// Decodes all fixed-width edge entries of a reference.
pub fn decode_entries(buf: &BitBuf, n: usize, w_e: u32) -> Result<Vec<u32>, CodecError> {
    let mut r = buf.reader();
    (0..n).map(|_| Ok(r.read_bits(w_e)? as u32)).collect()
}

/// Decodes edge entries starting at entry index `from` (partial
/// decompression along the `fv.no` pointers).
pub fn decode_entries_from(
    buf: &BitBuf,
    from: usize,
    n: usize,
    w_e: u32,
) -> Result<Vec<u32>, CodecError> {
    let mut r = buf.reader_at(from * w_e as usize);
    (from..n).map(|_| Ok(r.read_bits(w_e)? as u32)).collect()
}

/// Packs a bool slice into a bit buffer.
pub fn encode_flags(flags: &[bool]) -> BitBuf {
    BitBuf::from_bits(flags)
}

/// Reconstructs the *full* time-flag bit-string from its trimmed form by
/// re-adding the always-1 first and last bits (§4.1).
pub fn untrim_flags(trimmed: &[bool], n_entries: usize) -> Vec<bool> {
    debug_assert!(n_entries >= 2, "an instance spans at least two entries");
    let mut full = Vec::with_capacity(n_entries);
    full.push(true);
    full.extend_from_slice(trimmed);
    full.push(true);
    full
}

/// Encodes PDDP distance codes.
pub fn encode_d_codes(codes: &[u64], codec: &PddpCodec) -> Result<BitBuf, CodecError> {
    let mut w = BitWriter::with_capacity(codes.len() * codec.width() as usize);
    for &c in codes {
        w.write_bits(c, codec.width())?;
    }
    Ok(w.finish())
}

/// Decodes all PDDP distance codes of a reference.
pub fn decode_d_codes(buf: &BitBuf, n: usize, codec: &PddpCodec) -> Result<Vec<u64>, CodecError> {
    let mut r = buf.reader();
    (0..n).map(|_| r.read_bits(codec.width())).collect()
}

/// Decodes one PDDP distance code at index `i` (random access along the
/// `d.pos` pointers).
pub fn decode_d_code_at(buf: &BitBuf, i: usize, codec: &PddpCodec) -> Result<u64, CodecError> {
    let mut r = buf.reader_at(i * codec.width() as usize);
    r.read_bits(codec.width())
}

/// Fully decoded (but still quantized) view of a reference, reused when
/// decoding its non-references.
#[derive(Debug, Clone)]
pub struct DecodedRef {
    /// Outgoing-edge entries.
    pub entries: Vec<u32>,
    /// Trimmed time flags.
    pub trimmed_flags: Vec<bool>,
    /// PDDP distance codes.
    pub d_codes: Vec<u64>,
}

impl DecodedRef {
    /// Estimated heap footprint, used for cache byte accounting.
    pub fn heap_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<u32>()
            + self.trimmed_flags.len()
            + self.d_codes.len() * std::mem::size_of::<u64>()
    }
}

impl CompressedRef {
    /// Decodes the reference's streams.
    pub fn decode(
        &self,
        w_e: u32,
        n_locs: usize,
        d_codec: &PddpCodec,
    ) -> Result<DecodedRef, CodecError> {
        Ok(DecodedRef {
            entries: decode_entries(&self.e_bits, self.n_entries as usize, w_e)?,
            trimmed_flags: self.tflag_bits.to_bits(),
            d_codes: decode_d_codes(&self.d_bits, n_locs, d_codec)?,
        })
    }
}

impl CompressedNonRef {
    /// Decodes a non-reference against its (already decoded) reference.
    pub fn decode(
        &self,
        dref: &DecodedRef,
        w_e: u32,
        n_locs: usize,
        d_codec: &PddpCodec,
    ) -> Result<DecodedRef, CodecError> {
        let entries = factor::decode_e(&mut self.e_com.reader(), &dref.entries, w_e)?;
        let nref_flag_len = entries.len().saturating_sub(2);
        let tcom = factor::decode_t(
            &mut self.t_com.reader(),
            dref.trimmed_flags.len(),
            nref_flag_len,
        )?;
        let trimmed_flags = factor::apply_t(&tcom, &dref.trimmed_flags);
        let patches = factor::decode_d(&mut self.d_com.reader(), n_locs, d_codec.width())?;
        let d_codes = factor::apply_d(&patches, &dref.d_codes);
        Ok(DecodedRef {
            entries,
            trimmed_flags,
            d_codes,
        })
    }
}

/// Fixed width of outgoing-edge numbers for a network with max out-degree
/// `o` (one extra value for the `0` repeat marker).
pub fn edge_number_width(max_out_degree: u32) -> u32 {
    width_for_max(u64::from(max_out_degree))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_roundtrip_and_random_access() {
        let entries = vec![1, 2, 1, 2, 2, 0, 4, 1, 0];
        let w_e = edge_number_width(4);
        assert_eq!(w_e, 3);
        let buf = encode_entries(&entries, w_e).unwrap();
        assert_eq!(buf.len_bits(), 27);
        assert_eq!(decode_entries(&buf, 9, w_e).unwrap(), entries);
        assert_eq!(decode_entries_from(&buf, 6, 9, w_e).unwrap(), vec![4, 1, 0]);
    }

    #[test]
    fn flags_untrim() {
        let trimmed = vec![false, true, false];
        assert_eq!(
            untrim_flags(&trimmed, 5),
            vec![true, false, true, false, true]
        );
        assert_eq!(untrim_flags(&[], 2), vec![true, true]);
    }

    #[test]
    fn d_codes_random_access() {
        let codec = PddpCodec::from_error_bound(1.0 / 128.0);
        let codes: Vec<u64> = vec![112, 32, 64, 112, 64, 0, 112];
        let buf = encode_d_codes(&codes, &codec).unwrap();
        assert_eq!(decode_d_codes(&buf, 7, &codec).unwrap(), codes);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(decode_d_code_at(&buf, i, &codec).unwrap(), c);
        }
    }

    #[test]
    fn edge_width_includes_repeat_marker() {
        assert_eq!(edge_number_width(1), 1);
        assert_eq!(edge_number_width(2), 2);
        assert_eq!(edge_number_width(4), 3);
        assert_eq!(edge_number_width(7), 3);
        assert_eq!(edge_number_width(8), 4);
    }
}
