//! Full decompression back to uncertain trajectories.
//!
//! Decompression is exact except for the PDDP-quantized relative distances
//! and probabilities, whose error stays within `ηD` / `ηp` — the paper's
//! only lossy component.

use utcq_bitio::pddp::PddpCodec;
use utcq_bitio::CodecError;
use utcq_network::RoadNetwork;
use utcq_traj::{Instance, TedView, UncertainTrajectory};

use crate::compress::CompressedDataset;
use crate::compressed::{untrim_flags, CompressedTrajectory, DecodedRef};
use crate::params::CompressParams;
use crate::siar;

/// Errors during decompression.
#[derive(Debug)]
pub enum DecompressError {
    /// A bit-level decode failed.
    Codec(CodecError),
    /// The decoded view did not resolve against the road network.
    View(utcq_traj::TedViewError),
}

impl From<CodecError> for DecompressError {
    fn from(e: CodecError) -> Self {
        DecompressError::Codec(e)
    }
}

impl From<utcq_traj::TedViewError> for DecompressError {
    fn from(e: utcq_traj::TedViewError) -> Self {
        DecompressError::View(e)
    }
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Codec(e) => write!(f, "codec error: {e}"),
            DecompressError::View(e) => write!(f, "view error: {e}"),
        }
    }
}

impl std::error::Error for DecompressError {}

fn view_from_decoded(
    sv: utcq_network::VertexId,
    dec: &DecodedRef,
    d_codec: &PddpCodec,
    prob: f64,
) -> TedView {
    TedView {
        sv,
        entries: dec.entries.clone(),
        flags: untrim_flags(&dec.trimmed_flags, dec.entries.len()),
        rds: dec.d_codes.iter().map(|&c| d_codec.dequantize(c)).collect(),
        prob,
    }
}

/// Decompresses one trajectory, restoring original instance order.
pub fn decompress_trajectory(
    net: &RoadNetwork,
    ct: &CompressedTrajectory,
    w_e: u32,
    params: &CompressParams,
) -> Result<UncertainTrajectory, DecompressError> {
    let d_codec = params.d_codec();
    let p_codec = params.p_codec();
    let n_locs = ct.n_times as usize;
    let times = siar::decode(&ct.t_bits, n_locs, params.default_interval)?;

    let mut instances: Vec<Option<Instance>> = vec![None; ct.instance_count()];
    let mut decoded_refs = Vec::with_capacity(ct.refs.len());
    for cref in &ct.refs {
        let dec = cref.decode(w_e, n_locs, &d_codec)?;
        let view = view_from_decoded(cref.sv, &dec, &d_codec, p_codec.dequantize(cref.p_code));
        instances[cref.orig_idx as usize] = Some(view.to_instance(net)?);
        decoded_refs.push(dec);
    }
    for cnref in &ct.nrefs {
        let cref = &ct.refs[cnref.ref_idx as usize];
        let dref = &decoded_refs[cnref.ref_idx as usize];
        let dec = cnref.decode(dref, w_e, n_locs, &d_codec)?;
        let view = view_from_decoded(cref.sv, &dec, &d_codec, p_codec.dequantize(cnref.p_code));
        instances[cnref.orig_idx as usize] = Some(view.to_instance(net)?);
    }
    Ok(UncertainTrajectory {
        id: ct.id,
        times,
        instances: instances
            .into_iter()
            .map(|i| i.expect("every slot filled"))
            .collect(),
    })
}

/// Decompresses a whole dataset.
pub fn decompress_dataset(
    net: &RoadNetwork,
    cds: &CompressedDataset,
) -> Result<utcq_traj::Dataset, DecompressError> {
    let trajectories = cds
        .trajectories
        .iter()
        .map(|ct| decompress_trajectory(net, ct, cds.w_e, &cds.params))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(utcq_traj::Dataset {
        name: cds.name.clone(),
        default_interval: cds.params.default_interval,
        trajectories,
    })
}

/// Asserts two trajectories are equal up to PDDP quantization: identical
/// structure (times, paths, flags) with distances within `eta_d` and
/// probabilities within `eta_p`. Returns a description of the first
/// mismatch.
pub fn check_lossy_roundtrip(
    a: &UncertainTrajectory,
    b: &UncertainTrajectory,
    eta_d: f64,
    eta_p: f64,
) -> Result<(), String> {
    if a.times != b.times {
        return Err("time sequences differ".into());
    }
    if a.instances.len() != b.instances.len() {
        return Err("instance counts differ".into());
    }
    for (w, (x, y)) in a.instances.iter().zip(&b.instances).enumerate() {
        if x.path != y.path {
            return Err(format!("instance {w}: paths differ"));
        }
        if (x.prob - y.prob).abs() > eta_p {
            return Err(format!(
                "instance {w}: probability {} vs {} exceeds eta_p",
                x.prob, y.prob
            ));
        }
        if x.positions.len() != y.positions.len() {
            return Err(format!("instance {w}: position counts differ"));
        }
        for (i, (p, q)) in x.positions.iter().zip(&y.positions).enumerate() {
            if p.path_idx != q.path_idx {
                return Err(format!("instance {w} position {i}: edges differ"));
            }
            if (p.rd - q.rd).abs() > eta_d {
                return Err(format!(
                    "instance {w} position {i}: rd {} vs {} exceeds eta_d",
                    p.rd, q.rd
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress_dataset, compress_trajectory};
    use utcq_traj::paper_fixture;

    #[test]
    fn paper_roundtrip() {
        let fx = paper_fixture::build();
        let params = CompressParams {
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            ..CompressParams::default()
        };
        let (ct, _) = compress_trajectory(&fx.example.net, &fx.tu, &params).unwrap();
        let w_e = crate::compressed::edge_number_width(fx.example.net.max_out_degree());
        let back = decompress_trajectory(&fx.example.net, &ct, w_e, &params).unwrap();
        check_lossy_roundtrip(&fx.tu, &back, params.eta_d, params.eta_p).unwrap();
        // Times and paths are exactly lossless.
        assert_eq!(back.times, fx.tu.times);
        for (a, b) in back.instances.iter().zip(&fx.tu.instances) {
            assert_eq!(a.path, b.path);
        }
        // Table 3's distances are dyadic at ηD = 1/128, so even the lossy
        // component round-trips exactly here.
        for (a, b) in back.instances.iter().zip(&fx.tu.instances) {
            assert_eq!(a.positions, b.positions);
        }
    }

    #[test]
    fn synthetic_dataset_roundtrip() {
        let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 25, 11);
        let params = CompressParams::with_interval(ds.default_interval);
        let cds = compress_dataset(&net, &ds, &params).unwrap();
        let back = decompress_dataset(&net, &cds).unwrap();
        assert_eq!(back.trajectories.len(), ds.trajectories.len());
        for (a, b) in ds.trajectories.iter().zip(&back.trajectories) {
            check_lossy_roundtrip(a, b, params.eta_d, params.eta_p).unwrap();
        }
        // Probabilities stay within the accumulated quantization bound
        // (exact 1.0 is impossible after PDDP, cf. the paper's Fig. 11).
        for tu in &back.trajectories {
            let sum: f64 = tu.instances.iter().map(|i| i.prob).sum();
            let bound = tu.instance_count() as f64 * params.eta_p;
            assert!((sum - 1.0).abs() <= bound, "sum {sum} bound {bound}");
        }
    }

    #[test]
    fn roundtrip_is_stable_under_recompression() {
        // compress(decompress(compress(x))) must produce identical bits
        // (PDDP quantization is a fixed point).
        let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 8, 13);
        let params = CompressParams::with_interval(ds.default_interval);
        let c1 = compress_dataset(&net, &ds, &params).unwrap();
        let d1 = decompress_dataset(&net, &c1).unwrap();
        let c2 = compress_dataset(&net, &d1, &params).unwrap();
        let d2 = decompress_dataset(&net, &c2).unwrap();
        for (a, b) in d1.trajectories.iter().zip(&d2.trajectories) {
            assert_eq!(a, b);
        }
    }
}
