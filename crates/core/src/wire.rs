//! The serve wire protocol: newline-delimited JSON over a byte stream.
//!
//! One request per line, one response line per request — the protocol
//! [`crate::serve`] speaks over TCP and the CLI's offline `client` mode
//! executes directly against an opened container. Everything is
//! hand-rolled on `std` (the workspace builds offline, so no serde/HTTP
//! dependencies): a [`Json`] value type with a recursive-descent parser
//! for requests, and string-building serializers for responses.
//!
//! The full format — request/response shapes, cursor semantics, error
//! codes — is documented in `PROTOCOL.md` at the repository root; this
//! module is its reference implementation. The load-bearing invariant:
//! **[`handle_line`] is the only executor**. The TCP server and the
//! offline client both call it, so a served answer and an offline answer
//! over the same container are byte-identical by construction, and the
//! serve-smoke CI job diffs the two outputs to prove the transport adds
//! nothing.
//!
//! Cursors travel as decimal strings (`"cursor":"281474976710657"`):
//! they are opaque `u64`s minted by [`Page::next_cursor`], and a JSON
//! number would round through `f64` and corrupt any cursor past 2⁵³ —
//! sharded where/when cursors carry the owning shard in their high 16
//! bits (see `crate::shard`), so they routinely exceed that. Integral
//! JSON numbers are still accepted on input for hand-typed sessions.

use crate::cache::CacheStats;
use crate::error::Error;
use crate::opened::{InfoReport, Opened};
use crate::query::{Page, PageRequest, QueryTarget, WhenHit, WhereHit, DEFAULT_PAGE_LIMIT};
use crate::store::IngestReport;
use crate::wal::{CheckpointReport, Record, TailRead};
use utcq_network::{EdgeId, Rect};
use utcq_traj::{Dataset, Instance, PathPosition, UncertainTrajectory};

/// Longest accepted request line. Enforced identically by every
/// executor surface — [`handle_line`] rejects longer lines with
/// `bad_request` (so the offline client matches), and the TCP server
/// additionally bounds its reads so an unterminated line cannot buffer
/// without limit.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Most batches one `tail` reply returns when the request carries no
/// `max` field. Keeps a reply bounded no matter how far behind the
/// follower is; the follower simply asks again from the next epoch.
pub const DEFAULT_TAIL_MAX: usize = 64;

/// A parsed JSON value — the subset of shapes the protocol uses.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs (the protocol
    /// never needs hashed lookup, and ordered pairs keep serialization
    /// deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, rejecting trailing garbage.
    ///
    /// ```
    /// use utcq_core::wire::Json;
    /// let v = Json::parse(r#"{"op":"ping","id":7}"#).unwrap();
    /// assert_eq!(v.get("op").and_then(Json::as_str), Some("ping"));
    /// assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
    /// ```
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing characters at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer (rejects
    /// fractions, negatives, and magnitudes past 2⁵³ where `f64` loses
    /// exactness).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The numeric payload as an exact integer (rejects fractions and
    /// magnitudes past 2⁵³).
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
            Some(n as i64)
        } else {
            None
        }
    }

    /// Serializes this value back to JSON text (used to echo request
    /// ids; integral numbers print without a decimal point).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Nesting depth cap for the hand-rolled recursive-descent parser.
/// Without it, a line of `[[[[...` recurses once per bracket and
/// overflows the thread stack — an abort, not a catchable error.
const MAX_JSON_DEPTH: usize = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect_byte(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }

    fn nested(&mut self, f: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        if self.depth >= MAX_JSON_DEPTH {
            return Err(format!("nesting deeper than {MAX_JSON_DEPTH} levels"));
        }
        self.depth += 1;
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        // bounds: self.i <= b.len() always (advanced only past read bytes)
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.b.get(self.i).copied();
                    self.i += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            // Surrogate pairs are not needed by the
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                Some(_) => {
                    // Consume the whole run of plain bytes up to the next
                    // quote or backslash in one slice — O(n) overall. The
                    // run starts and ends at ASCII delimiters, so it sits
                    // on char boundaries of the (already valid) input.
                    let start = self.i;
                    while let Some(&b) = self.b.get(self.i) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.i += 1;
                    }
                    // bounds: start..i is a window of scanned bytes
                    let chunk =
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        // bounds: start..i is a window of scanned bytes
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

/// Writes a JSON string literal with the required escapes.
fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` as a JSON number: Rust's shortest round-trip
/// `Display` form (deterministic, so served and offline outputs agree
/// byte for byte); non-finite values become `null`.
fn write_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// One protocol request, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `where(traj, t, α)`, paginated.
    Where {
        /// Trajectory id.
        traj: u64,
        /// Query time (seconds).
        t: i64,
        /// Probability threshold.
        alpha: f64,
        /// Page limit + resume cursor.
        page: PageRequest,
    },
    /// `when(traj, ⟨edge, rd⟩, α)`, paginated.
    When {
        /// Trajectory id.
        traj: u64,
        /// Edge id of the query location.
        edge: EdgeId,
        /// Relative distance along the edge in `[0, 1]`.
        rd: f64,
        /// Probability threshold.
        alpha: f64,
        /// Page limit + resume cursor.
        page: PageRequest,
    },
    /// `range(RE, tq, α)`, paginated (keyset cursor).
    Range {
        /// Query rectangle.
        re: Rect,
        /// Query time (seconds).
        tq: i64,
        /// Probability threshold.
        alpha: f64,
        /// Page limit + resume cursor.
        page: PageRequest,
    },
    /// `ingest(trajectories)`: append a batch to the live store. Only
    /// honored by writable executors (`utcq serve --writable`,
    /// `utcq client --writable`); read-only surfaces answer with the
    /// `read_only` error code.
    Ingest {
        /// The batch, already decoded into model trajectories.
        trajectories: Vec<UncertainTrajectory>,
        /// Optional `interval` field; validated against the store's
        /// compression interval when present (absent = adopt the
        /// store's).
        interval: Option<i64>,
        /// Optional dataset label for the batch (adopted only if the
        /// store has none yet, matching builder semantics).
        name: String,
    },
    /// `tail(from)`: stream accepted batches with epochs strictly
    /// greater than `from` (the epoch the caller already has) from the
    /// in-memory WAL feed. Read-only surfaces answer it (followers
    /// connect without `--writable`); containers without an attached WAL
    /// answer with the `no_wal` error code, and a `from` so old the
    /// bounded feed no longer covers `from + 1` answers `tail_gap`.
    Tail {
        /// The epoch the caller is already at; batches after it are
        /// returned.
        from: u64,
        /// Most batches to return in one reply.
        max: usize,
    },
    /// `checkpoint`: persist the current snapshot crash-safely and
    /// truncate the WAL. Writable surfaces only.
    Checkpoint,
    /// Container description (the [`InfoReport`]).
    Info,
    /// Decode-cache counters.
    CacheStats,
    /// Liveness probe.
    Ping,
    /// Graceful server shutdown.
    Shutdown,
}

/// A request that failed to decode: the error response to send, plus
/// the echoed id when one was readable.
#[derive(Debug)]
pub struct RequestError {
    /// The request's `id` field, if the line parsed far enough to read
    /// one.
    pub id: Option<Json>,
    /// Protocol error code (`bad_request`, `unknown_op`,
    /// `invalid_cursor`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

/// A decoded request plus its echo id.
#[derive(Debug)]
pub struct ParsedRequest {
    /// The request's `id` field, echoed verbatim in the response.
    pub id: Option<Json>,
    /// The operation to execute.
    pub request: Request,
}

fn field<'a>(obj: &'a Json, id: &Option<Json>, key: &str) -> Result<&'a Json, Box<RequestError>> {
    obj.get(key).ok_or_else(|| {
        Box::new(RequestError {
            id: id.clone(),
            code: "bad_request",
            message: format!("missing field '{key}'"),
        })
    })
}

fn bad(id: &Option<Json>, message: String) -> Box<RequestError> {
    Box::new(RequestError {
        id: id.clone(),
        code: "bad_request",
        message,
    })
}

fn u64_field(obj: &Json, id: &Option<Json>, key: &str) -> Result<u64, Box<RequestError>> {
    field(obj, id, key)?
        .as_u64()
        .ok_or_else(|| bad(id, format!("field '{key}' must be a non-negative integer")))
}

fn i64_field(obj: &Json, id: &Option<Json>, key: &str) -> Result<i64, Box<RequestError>> {
    field(obj, id, key)?
        .as_i64()
        .ok_or_else(|| bad(id, format!("field '{key}' must be an integer")))
}

fn f64_field(obj: &Json, id: &Option<Json>, key: &str) -> Result<f64, Box<RequestError>> {
    field(obj, id, key)?
        .as_f64()
        .ok_or_else(|| bad(id, format!("field '{key}' must be a number")))
}

/// `alpha` defaults to 0 (return everything) when absent.
fn alpha_field(obj: &Json, id: &Option<Json>) -> Result<f64, Box<RequestError>> {
    match obj.get("alpha") {
        None => Ok(0.0),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| bad(id, "field 'alpha' must be a number".to_string())),
    }
}

/// `limit` (default [`DEFAULT_PAGE_LIMIT`]) + `cursor` (default: first
/// page). Cursors are decimal strings; integral numbers are accepted
/// for hand-typed sessions, but anything else is an invalid cursor.
fn page_fields(obj: &Json, id: &Option<Json>) -> Result<PageRequest, Box<RequestError>> {
    let limit = match obj.get("limit") {
        None => DEFAULT_PAGE_LIMIT,
        Some(v) => v.as_u64().ok_or_else(|| {
            bad(
                id,
                "field 'limit' must be a non-negative integer".to_string(),
            )
        })? as usize,
    };
    let cursor = match obj.get("cursor") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let parsed = match v {
                Json::Str(s) => s.parse::<u64>().ok(),
                n @ Json::Num(_) => n.as_u64(),
                _ => None,
            };
            Some(parsed.ok_or_else(|| {
                Box::new(RequestError {
                    id: id.clone(),
                    code: "invalid_cursor",
                    message: "field 'cursor' must be a decimal u64 string".to_string(),
                })
            })?)
        }
    };
    Ok(PageRequest { limit, cursor })
}

/// Decodes one trajectory object of an `ingest` request:
/// `{"id":N,"times":[…],"instances":[{"prob":P,"path":[…],
/// "positions":[[path_idx,rd],…]},…]}`.
fn parse_trajectory(
    v: &Json,
    id: &Option<Json>,
    at: usize,
) -> Result<UncertainTrajectory, Box<RequestError>> {
    let ctx = |what: &str| format!("trajectories[{at}]: {what}");
    let traj_id = field(v, id, "id")?
        .as_u64()
        .ok_or_else(|| bad(id, ctx("field 'id' must be a non-negative integer")))?;
    let Some(Json::Arr(times_v)) = v.get("times") else {
        return Err(bad(id, ctx("field 'times' must be an array of integers")));
    };
    let times = times_v
        .iter()
        .map(Json::as_i64)
        .collect::<Option<Vec<i64>>>()
        .ok_or_else(|| bad(id, ctx("field 'times' must be an array of integers")))?;
    let Some(Json::Arr(instances_v)) = v.get("instances") else {
        return Err(bad(id, ctx("field 'instances' must be an array")));
    };
    let mut instances = Vec::with_capacity(instances_v.len());
    for (w, inst) in instances_v.iter().enumerate() {
        let ictx = |what: &str| format!("trajectories[{at}].instances[{w}]: {what}");
        let prob = field(inst, id, "prob").map_err(|_| bad(id, ictx("missing field 'prob'")))?;
        let prob = prob
            .as_f64()
            .ok_or_else(|| bad(id, ictx("field 'prob' must be a number")))?;
        let Some(Json::Arr(path_v)) = inst.get("path") else {
            return Err(bad(id, ictx("field 'path' must be an array of edge ids")));
        };
        let path = path_v
            .iter()
            .map(|e| e.as_u64().and_then(|n| u32::try_from(n).ok()))
            .collect::<Option<Vec<u32>>>()
            .ok_or_else(|| bad(id, ictx("field 'path' must be an array of edge ids")))?
            .into_iter()
            .map(EdgeId)
            .collect();
        let Some(Json::Arr(pos_v)) = inst.get("positions") else {
            return Err(bad(id, ictx("field 'positions' must be an array of pairs")));
        };
        let mut positions = Vec::with_capacity(pos_v.len());
        for p in pos_v {
            let pair = match p {
                Json::Arr(pair) if pair.len() == 2 => pair,
                _ => return Err(bad(id, ictx("each position must be a [path_idx, rd] pair"))),
            };
            // bounds: pair.len() == 2 matched above
            let path_idx = pair[0]
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad(id, ictx("position path_idx must fit in 32 bits")))?;
            // bounds: pair.len() == 2 matched above
            let rd = pair[1]
                .as_f64()
                .ok_or_else(|| bad(id, ictx("position rd must be a number")))?;
            positions.push(PathPosition { path_idx, rd });
        }
        instances.push(Instance {
            path,
            positions,
            prob,
        });
    }
    Ok(UncertainTrajectory {
        id: traj_id,
        times,
        instances,
    })
}

/// Decodes one request line. Errors carry the echo id (when readable)
/// and the protocol error code, ready for [`handle_line`] to serialize.
pub fn parse_request(line: &str) -> Result<ParsedRequest, Box<RequestError>> {
    let v = Json::parse(line).map_err(|message| {
        Box::new(RequestError {
            id: None,
            code: "bad_request",
            message: format!("malformed JSON: {message}"),
        })
    })?;
    if !matches!(v, Json::Obj(_)) {
        return Err(Box::new(RequestError {
            id: None,
            code: "bad_request",
            message: "request must be a JSON object".to_string(),
        }));
    }
    let id = v.get("id").cloned();
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(&id, "missing string field 'op'".to_string()))?;
    let request = match op {
        "where" => Request::Where {
            traj: u64_field(&v, &id, "traj")?,
            t: i64_field(&v, &id, "t")?,
            alpha: alpha_field(&v, &id)?,
            page: page_fields(&v, &id)?,
        },
        "when" => Request::When {
            traj: u64_field(&v, &id, "traj")?,
            edge: EdgeId(
                u64_field(&v, &id, "edge")?
                    .try_into()
                    .map_err(|_| bad(&id, "field 'edge' must fit in 32 bits".to_string()))?,
            ),
            rd: f64_field(&v, &id, "rd")?,
            alpha: alpha_field(&v, &id)?,
            page: page_fields(&v, &id)?,
        },
        "range" => Request::Range {
            re: Rect::new(
                f64_field(&v, &id, "min_x")?,
                f64_field(&v, &id, "min_y")?,
                f64_field(&v, &id, "max_x")?,
                f64_field(&v, &id, "max_y")?,
            ),
            tq: i64_field(&v, &id, "tq")?,
            alpha: alpha_field(&v, &id)?,
            page: page_fields(&v, &id)?,
        },
        "ingest" => {
            let Some(Json::Arr(items)) = v.get("trajectories") else {
                return Err(bad(
                    &id,
                    "field 'trajectories' must be an array".to_string(),
                ));
            };
            let trajectories = items
                .iter()
                .enumerate()
                .map(|(at, t)| parse_trajectory(t, &id, at))
                .collect::<Result<Vec<_>, _>>()?;
            let interval =
                match v.get("interval") {
                    None => None,
                    Some(n) => Some(n.as_i64().ok_or_else(|| {
                        bad(&id, "field 'interval' must be an integer".to_string())
                    })?),
                };
            let name = v
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            Request::Ingest {
                trajectories,
                interval,
                name,
            }
        }
        "tail" => Request::Tail {
            from: u64_field(&v, &id, "from")?,
            max: match v.get("max") {
                None => DEFAULT_TAIL_MAX,
                Some(n) => n.as_u64().ok_or_else(|| {
                    bad(
                        &id,
                        "field 'max' must be a non-negative integer".to_string(),
                    )
                })? as usize,
            },
        },
        "checkpoint" => Request::Checkpoint,
        "info" => Request::Info,
        "cache_stats" => Request::CacheStats,
        "ping" => Request::Ping,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(Box::new(RequestError {
                id,
                code: "unknown_op",
                message: format!("unknown op '{other}'"),
            }))
        }
    };
    Ok(ParsedRequest { id, request })
}

/// The protocol error code for a core [`Error`] — one stable snake_case
/// token per variant (documented in `PROTOCOL.md`).
pub fn error_code(e: &Error) -> &'static str {
    match e {
        Error::Codec(_) => "codec",
        Error::Decompress(_) => "decompress",
        Error::Storage(_) => "storage",
        Error::Io(_) => "io",
        Error::DuplicateTrajectory(_) => "duplicate_trajectory",
        Error::IntervalMismatch { .. } => "interval_mismatch",
        Error::NetworkMismatch { .. } => "network_mismatch",
        Error::CorruptStore(_) => "corrupt_store",
        Error::NeedsNetwork => "needs_network",
        Error::ShardedContainer => "sharded_container",
        Error::InvalidCursor => "invalid_cursor",
        Error::ShardConfig(_) => "shard_config",
    }
}

/// Opens a response object and writes the echoed id + `"ok"` field.
fn begin(id: Option<&Json>, ok: bool) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        id.write(&mut out);
        out.push(',');
    }
    out.push_str(if ok { "\"ok\":true" } else { "\"ok\":false" });
    out
}

/// Closes a paginated response: `"next_cursor"` (decimal string or
/// null) and `"has_more"`.
fn finish_page<T>(out: &mut String, page: &Page<T>) {
    use std::fmt::Write as _;
    match page.next_cursor {
        Some(c) => {
            let _ = write!(out, ",\"next_cursor\":\"{c}\"");
        }
        None => out.push_str(",\"next_cursor\":null"),
    }
    let _ = write!(out, ",\"has_more\":{}}}", page.has_more);
}

fn respond_where(id: Option<&Json>, page: &Page<WhereHit>) -> String {
    use std::fmt::Write as _;
    let mut out = begin(id, true);
    out.push_str(",\"op\":\"where\",\"items\":[");
    for (i, h) in page.items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"instance\":{},\"prob\":", h.instance);
        write_f64(&mut out, h.prob);
        let _ = write!(out, ",\"edge\":{},\"ndist\":", h.loc.edge.0);
        write_f64(&mut out, h.loc.ndist);
        out.push('}');
    }
    out.push(']');
    finish_page(&mut out, page);
    out
}

fn respond_when(id: Option<&Json>, page: &Page<WhenHit>) -> String {
    use std::fmt::Write as _;
    let mut out = begin(id, true);
    out.push_str(",\"op\":\"when\",\"items\":[");
    for (i, h) in page.items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"instance\":{},\"prob\":", h.instance);
        write_f64(&mut out, h.prob);
        out.push_str(",\"time\":");
        write_f64(&mut out, h.time);
        out.push('}');
    }
    out.push(']');
    finish_page(&mut out, page);
    out
}

fn respond_range(id: Option<&Json>, page: &Page<u64>) -> String {
    use std::fmt::Write as _;
    let mut out = begin(id, true);
    out.push_str(",\"op\":\"range\",\"items\":[");
    for (i, traj_id) in page.items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{traj_id}");
    }
    out.push(']');
    finish_page(&mut out, page);
    out
}

fn respond_info(id: Option<&Json>, info: &InfoReport) -> String {
    use std::fmt::Write as _;
    let mut out = begin(id, true);
    out.push_str(",\"op\":\"info\",\"info\":{\"shape\":");
    write_str(&mut out, info.shape());
    out.push_str(",\"name\":");
    write_str(&mut out, &info.name);
    let _ = write!(
        out,
        ",\"trajectories\":{},\"instances\":{}",
        info.trajectories, info.instances
    );
    out.push_str(",\"eta_d\":");
    write_f64(&mut out, info.eta_d);
    out.push_str(",\"eta_p\":");
    write_f64(&mut out, info.eta_p);
    let _ = write!(
        out,
        ",\"pivots\":{},\"raw_kib\":{},\"compressed_kib\":{}",
        info.n_pivots, info.raw_kib, info.compressed_kib
    );
    out.push_str(",\"ratio\":");
    write_f64(&mut out, info.ratio);
    if let Some(sh) = &info.sharding {
        out.push_str(",\"policy\":");
        write_str(&mut out, &sh.policy);
        out.push_str(",\"shards\":[");
        for (i, s) in sh.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"trajectories\":{},\"ratio\":", s.trajectories);
            write_f64(&mut out, s.ratio);
            out.push('}');
        }
        out.push(']');
    }
    out.push_str("}}");
    out
}

fn respond_cache(id: Option<&Json>, stats: &CacheStats) -> String {
    use std::fmt::Write as _;
    let mut out = begin(id, true);
    let _ = write!(
        out,
        ",\"op\":\"cache_stats\",\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\
         \"negative_hits\":{},\"entries\":{},\"negative_entries\":{},\"bytes\":{},\
         \"budget_bytes\":{},\"hit_rate\":",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.negative_hits,
        stats.entries,
        stats.negative_entries,
        stats.bytes,
        stats.budget_bytes
    );
    write_f64(&mut out, stats.hit_rate());
    out.push_str("}}");
    out
}

fn respond_ingest(id: Option<&Json>, report: &IngestReport) -> String {
    use std::fmt::Write as _;
    let mut out = begin(id, true);
    let _ = write!(
        out,
        ",\"op\":\"ingest\",\"ingested\":{},\"total\":{},\"epoch\":{}}}",
        report.ingested, report.total, report.epoch
    );
    out
}

/// The `ingest` success shape plus `"deduped":true` — answered when a
/// retried batch is recognized in the WAL feed instead of re-applied.
fn respond_ingest_deduped(id: Option<&Json>, ingested: usize, total: usize, epoch: u64) -> String {
    use std::fmt::Write as _;
    let mut out = begin(id, true);
    let _ = write!(
        out,
        ",\"op\":\"ingest\",\"ingested\":{ingested},\"total\":{total},\"epoch\":{epoch},\"deduped\":true}}"
    );
    out
}

/// Serializes one trajectory in the exact shape [`parse_trajectory`]
/// accepts, so a `tail` reply can be fed straight back into `ingest` —
/// and, because [`write_f64`] prints the shortest round-tripping form,
/// a follower applying it reproduces the leader's floats bit-for-bit.
fn write_trajectory(out: &mut String, tu: &UncertainTrajectory) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"id\":{},\"times\":[", tu.id);
    for (i, t) in tu.times.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{t}");
    }
    out.push_str("],\"instances\":[");
    for (i, inst) in tu.instances.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"prob\":");
        write_f64(out, inst.prob);
        out.push_str(",\"path\":[");
        for (j, e) in inst.path.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", e.0);
        }
        out.push_str("],\"positions\":[");
        for (j, p) in inst.positions.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},", p.path_idx);
            write_f64(out, p.rd);
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

fn respond_tail(id: Option<&Json>, records: &[Record], current: u64) -> String {
    use std::fmt::Write as _;
    let mut out = begin(id, true);
    let _ = write!(out, ",\"op\":\"tail\",\"epoch\":{current},\"batches\":[");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"epoch\":{},\"name\":", rec.epoch);
        write_str(&mut out, &rec.name);
        let _ = write!(
            out,
            ",\"interval\":{},\"trajectories\":[",
            rec.default_interval
        );
        for (j, tu) in rec.trajectories.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_trajectory(&mut out, tu);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn respond_checkpoint(id: Option<&Json>, report: &CheckpointReport) -> String {
    use std::fmt::Write as _;
    let mut out = begin(id, true);
    let _ = write!(
        out,
        ",\"op\":\"checkpoint\",\"epoch\":{},\"log_bytes\":{}}}",
        report.epoch, report.log_bytes
    );
    out
}

fn respond_simple(id: Option<&Json>, op: &str) -> String {
    let mut out = begin(id, true);
    out.push_str(",\"op\":");
    write_str(&mut out, op);
    out.push('}');
    out
}

/// Serializes an error response (`ok:false` + code + message).
pub fn respond_error(id: Option<&Json>, code: &str, message: &str) -> String {
    let mut out = begin(id, false);
    out.push_str(",\"error\":{\"code\":");
    write_str(&mut out, code);
    out.push_str(",\"message\":");
    write_str(&mut out, message);
    out.push_str("}}");
    out
}

/// Decodes a `tail` reply on the follower side: the accepted batches
/// (leader epoch + batch dataset, oldest first) and the leader's
/// current epoch. An `ok:false` reply becomes `Err("code: message")` so
/// the follower can distinguish `tail_gap` (must re-sync) from
/// transient failures.
pub fn parse_tail_reply(line: &str) -> Result<(Vec<(u64, Dataset)>, u64), String> {
    let v = Json::parse(line).map_err(|e| format!("malformed tail reply: {e}"))?;
    if !matches!(v.get("ok"), Some(Json::Bool(true))) {
        let code = v
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("unknown");
        let message = v
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("tail request failed");
        return Err(format!("{code}: {message}"));
    }
    let current = v
        .get("epoch")
        .and_then(Json::as_u64)
        .ok_or("tail reply is missing 'epoch'")?;
    let Some(Json::Arr(batches_v)) = v.get("batches") else {
        return Err("tail reply is missing 'batches'".to_string());
    };
    let mut batches = Vec::with_capacity(batches_v.len());
    for b in batches_v {
        let epoch = b
            .get("epoch")
            .and_then(Json::as_u64)
            .ok_or("tail batch is missing 'epoch'")?;
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or("tail batch is missing 'name'")?
            .to_string();
        let default_interval = b
            .get("interval")
            .and_then(Json::as_i64)
            .ok_or("tail batch is missing 'interval'")?;
        let Some(Json::Arr(items)) = b.get("trajectories") else {
            return Err("tail batch is missing 'trajectories'".to_string());
        };
        let trajectories = items
            .iter()
            .enumerate()
            .map(|(at, t)| parse_trajectory(t, &None, at).map_err(|e| e.message))
            .collect::<Result<Vec<_>, _>>()?;
        batches.push((
            epoch,
            Dataset {
                name,
                default_interval,
                trajectories,
            },
        ));
    }
    Ok((batches, current))
}

/// One executed request: the response line (no trailing newline) and
/// whether the request asked the server to shut down.
#[derive(Debug)]
pub struct Reply {
    /// The serialized response object.
    pub line: String,
    /// `true` after a `shutdown` request was acknowledged.
    pub shutdown: bool,
}

/// Executes one request line against an opened container and serializes
/// the response — the single code path behind both the TCP server and
/// the CLI's offline `client` mode, which is what makes served and
/// offline answers byte-identical.
///
/// ```
/// use std::sync::Arc;
/// use utcq_core::{CompressParams, Opened, Store, StiuParams};
/// # fn main() -> Result<(), utcq_core::Error> {
/// let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 3, 7);
/// let store = Store::build(
///     Arc::new(net),
///     &ds,
///     CompressParams::with_interval(ds.default_interval),
///     StiuParams::default(),
/// )?;
/// let opened = Opened::Single(Box::new(store));
/// let reply = utcq_core::wire::handle_line(&opened, r#"{"op":"ping","id":1}"#);
/// assert_eq!(reply.line, r#"{"id":1,"ok":true,"op":"ping"}"#);
/// assert!(!reply.shutdown);
/// # Ok(()) }
/// ```
pub fn handle_line(opened: &Opened, line: &str) -> Reply {
    execute(opened, false, line)
}

/// [`handle_line`] with the `ingest` op enabled — what `utcq serve
/// --writable` and `utcq client --writable` run. Batches are validated
/// against the container's road network, then serialized through the
/// store's writer lock; concurrent queries keep answering from their
/// pinned snapshots throughout.
pub fn handle_line_writable(opened: &Opened, line: &str) -> Reply {
    execute(opened, true, line)
}

/// The canonical reply to a request line that exceeds
/// [`MAX_REQUEST_BYTES`] — what [`handle_line`] produces before even
/// parsing, and what the event-loop server emits for a line whose
/// newline never arrived within the cap (so both surfaces reject
/// over-long input byte-identically).
pub fn oversized_reply() -> Reply {
    Reply {
        line: respond_error(None, "bad_request", "request line exceeds 1 MiB"),
        shutdown: false,
    }
}

fn execute(opened: &Opened, writable: bool, line: &str) -> Reply {
    if line.len() > MAX_REQUEST_BYTES {
        return oversized_reply();
    }
    let parsed = match parse_request(line) {
        Ok(p) => p,
        Err(e) => {
            return Reply {
                line: respond_error(e.id.as_ref(), e.code, &e.message),
                shutdown: false,
            }
        }
    };
    let id = parsed.id.as_ref();
    let fail = |e: Error| respond_error(id, error_code(&e), &e.to_string());
    let (line, shutdown) = match parsed.request {
        Request::Where {
            traj,
            t,
            alpha,
            page,
        } => (
            match opened.where_query(traj, t, alpha, page) {
                Ok(p) => respond_where(id, &p),
                Err(e) => fail(e),
            },
            false,
        ),
        Request::When {
            traj,
            edge,
            rd,
            alpha,
            page,
        } => (
            match opened.when_query(traj, edge, rd, alpha, page) {
                Ok(p) => respond_when(id, &p),
                Err(e) => fail(e),
            },
            false,
        ),
        Request::Range {
            re,
            tq,
            alpha,
            page,
        } => (
            match opened.range_query(&re, tq, alpha, page) {
                Ok(p) => respond_range(id, &p),
                Err(e) => fail(e),
            },
            false,
        ),
        Request::Ingest {
            trajectories,
            interval,
            name,
        } => (
            if !writable {
                respond_error(
                    id,
                    "read_only",
                    "this surface is read-only; restart the server with --writable",
                )
            } else {
                run_ingest(opened, trajectories, interval, name, id)
            },
            false,
        ),
        Request::Tail { from, max } => (
            match opened.wal_tail(from, max) {
                None => respond_error(
                    id,
                    "no_wal",
                    "this container has no write-ahead log attached; start the leader with --wal",
                ),
                Some(TailRead::Gap { base }) => respond_error(
                    id,
                    "tail_gap",
                    &format!(
                        "cannot resume after epoch {from}: the feed only reaches back to \
                         epoch {base}; re-sync from a fresh container copy"
                    ),
                ),
                Some(TailRead::Records { records, current }) => respond_tail(id, &records, current),
            },
            false,
        ),
        Request::Checkpoint => (
            if !writable {
                respond_error(
                    id,
                    "read_only",
                    "this surface is read-only; restart the server with --writable",
                )
            } else {
                match opened.checkpoint() {
                    Ok(Some(report)) => respond_checkpoint(id, &report),
                    Ok(None) => respond_error(
                        id,
                        "no_wal",
                        "this container has no write-ahead log with a checkpoint target; \
                         start the server with --wal",
                    ),
                    Err(e) => fail(e),
                }
            },
            false,
        ),
        Request::Info => (respond_info(id, &opened.info()), false),
        Request::CacheStats => (respond_cache(id, &opened.cache_stats()), false),
        Request::Ping => (respond_simple(id, "ping"), false),
        Request::Shutdown => (respond_simple(id, "shutdown"), true),
    };
    Reply { line, shutdown }
}

/// Validates and applies one `ingest` batch: structural validation
/// against the road network first (malformed trajectories are
/// `bad_request`, nothing is published), then the live-store publish
/// (store-level failures map through [`error_code`]).
fn run_ingest(
    opened: &Opened,
    trajectories: Vec<UncertainTrajectory>,
    interval: Option<i64>,
    name: String,
    id: Option<&Json>,
) -> String {
    let net = opened.network();
    let edge_count = net.edge_count() as u32;
    for (at, tu) in trajectories.iter().enumerate() {
        // Bounds come first: the structural validator assumes edge ids
        // resolve, so a hostile id must be rejected before it.
        for inst in &tu.instances {
            if let Some(e) = inst.path.iter().find(|e| e.0 >= edge_count) {
                return respond_error(
                    id,
                    "bad_request",
                    &format!(
                        "trajectories[{at}] is invalid: edge {} does not exist (network has {edge_count} edges)",
                        e.0
                    ),
                );
            }
        }
        if let Err(detail) = tu.validate(net) {
            return respond_error(
                id,
                "bad_request",
                &format!("trajectories[{at}] is invalid: {detail}"),
            );
        }
    }
    let batch = Dataset {
        name,
        default_interval: interval.unwrap_or_else(|| opened.default_interval()),
        trajectories,
    };
    match opened.ingest(&batch) {
        Ok(report) => respond_ingest(id, &report),
        // A duplicate batch may be a client retrying after a lost ack:
        // if the WAL feed holds a record with exactly these
        // trajectories, the batch already published — answer success
        // with its recorded epoch so the retry is idempotent instead of
        // fatal.
        Err(Error::DuplicateTrajectory(d)) => match opened.wal_dedup(&batch.trajectories) {
            Some((epoch, ingested)) => {
                let total = opened.snapshots().iter().map(|s| s.len()).sum::<usize>();
                respond_ingest_deduped(id, ingested, total, epoch)
            }
            None => {
                let e = Error::DuplicateTrajectory(d);
                respond_error(id, error_code(&e), &e.to_string())
            }
        },
        Err(e) => respond_error(id, error_code(&e), &e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CompressParams;
    use crate::stiu::StiuParams;
    use crate::store::Store;
    use std::sync::Arc;
    use utcq_traj::{paper_fixture, Dataset};

    fn paper_opened() -> Opened {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        let store = Store::build(
            Arc::new(fx.example.net.clone()),
            &ds,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
            StiuParams {
                partition_s: 900,
                grid_n: 4,
            },
        )
        .unwrap();
        Opened::Single(Box::new(store))
    }

    #[test]
    fn json_parses_and_reserializes() {
        let v =
            Json::parse(r#"{"a":[1,2.5,-3],"b":"x\ny","c":true,"d":null,"e":{"f":1e3}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)])
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(
            v.get("e").unwrap().get("f").and_then(Json::as_f64),
            Some(1000.0)
        );
        let mut out = String::new();
        v.write(&mut out);
        // Integral floats reserialize without a decimal point.
        assert_eq!(
            out,
            r#"{"a":[1,2.5,-3],"b":"x\ny","c":true,"d":null,"e":{"f":1000}}"#
        );
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse(r#"{"a":1} trailing"#).is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn integer_accessors_reject_lossy_values() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
        assert_eq!(Json::Num(-2.0).as_i64(), Some(-2));
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }

    #[test]
    fn requests_parse() {
        let p = parse_request(
            r#"{"id":"a","op":"where","traj":1,"t":-5,"alpha":0.25,"limit":2,"cursor":"9"}"#,
        )
        .unwrap();
        assert_eq!(p.id, Some(Json::Str("a".into())));
        assert_eq!(
            p.request,
            Request::Where {
                traj: 1,
                t: -5,
                alpha: 0.25,
                page: PageRequest::after(9, 2),
            }
        );
        let p = parse_request(r#"{"op":"when","traj":1,"edge":3,"rd":0.75}"#).unwrap();
        assert_eq!(
            p.request,
            Request::When {
                traj: 1,
                edge: EdgeId(3),
                rd: 0.75,
                alpha: 0.0,
                page: PageRequest::default(),
            }
        );
        let p =
            parse_request(r#"{"op":"range","min_x":0,"min_y":-1,"max_x":10,"max_y":1,"tq":100}"#)
                .unwrap();
        assert!(matches!(p.request, Request::Range { tq: 100, .. }));
        for (op, want) in [
            ("info", Request::Info),
            ("cache_stats", Request::CacheStats),
            ("ping", Request::Ping),
            ("shutdown", Request::Shutdown),
        ] {
            assert_eq!(
                parse_request(&format!(r#"{{"op":"{op}"}}"#))
                    .unwrap()
                    .request,
                want
            );
        }
    }

    #[test]
    fn request_errors_carry_codes_and_ids() {
        let e = parse_request("nonsense").unwrap_err();
        assert_eq!(e.code, "bad_request");
        let e = parse_request(r#"{"id":7,"op":"warp"}"#).unwrap_err();
        assert_eq!(e.code, "unknown_op");
        assert_eq!(e.id, Some(Json::Num(7.0)));
        let e = parse_request(r#"{"op":"where","t":1}"#).unwrap_err();
        assert!(e.message.contains("traj"), "{}", e.message);
        let e = parse_request(r#"{"op":"where","traj":1,"t":1,"cursor":"xyz"}"#).unwrap_err();
        assert_eq!(e.code, "invalid_cursor");
        // Numeric cursors are accepted when integral.
        let p = parse_request(r#"{"op":"where","traj":1,"t":1,"cursor":4}"#).unwrap();
        assert!(matches!(
            p.request,
            Request::Where {
                page: PageRequest {
                    cursor: Some(4),
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(error_code(&Error::InvalidCursor), "invalid_cursor");
        assert_eq!(error_code(&Error::NeedsNetwork), "needs_network");
        assert_eq!(error_code(&Error::CorruptStore("x")), "corrupt_store");
        assert_eq!(error_code(&Error::ShardedContainer), "sharded_container");
    }

    /// The fuzzer's contract, pinned as unit tests: adversarial request
    /// shapes fail closed with the stable codes of `PROTOCOL.md`, and
    /// never panic.
    #[test]
    fn adversarial_requests_fail_closed() {
        let opened = paper_opened();

        // Decimal cursor strings parse across the full u64 range, past
        // i64::MAX …
        for c in ["9223372036854775808", "18446744073709551615"] {
            let p = parse_request(&format!(
                r#"{{"op":"where","traj":1,"t":1,"cursor":"{c}"}}"#
            ))
            .unwrap();
            assert!(
                matches!(
                    p.request,
                    Request::Where {
                        page: PageRequest {
                            cursor: Some(_),
                            ..
                        },
                        ..
                    }
                ),
                "cursor {c} must parse"
            );
        }
        // … but past u64::MAX, negative, or non-decimal is refused with
        // the cursor-specific code.
        for c in ["18446744073709551616", "-1", "0x10", "", "1.5"] {
            let e = parse_request(&format!(
                r#"{{"op":"where","traj":1,"t":1,"cursor":"{c}"}}"#
            ))
            .unwrap_err();
            assert_eq!(e.code, "invalid_cursor", "cursor {c:?}");
        }
        // A parseable cursor past the end of the result set terminates
        // pagination cleanly on a single store: empty page, no panic.
        let reply = handle_line(
            &opened,
            r#"{"op":"where","traj":1,"t":600,"alpha":0.25,"cursor":"9223372036854775808"}"#,
        );
        assert!(
            reply.line.contains(r#""items":[]"#) && reply.line.contains(r#""has_more":false"#),
            "{}",
            reply.line
        );

        // Duplicate keys: the first binding wins, deterministically.
        let p = parse_request(r#"{"op":"info","op":"warp"}"#).unwrap();
        assert!(matches!(p.request, Request::Info));
        // Unknown keys (arbitrarily nested) are ignored.
        let reply = handle_line(
            &opened,
            r#"{"op":"info","future_field":{"deep":[1,[2],{"a":null}]},"x":null}"#,
        );
        assert!(reply.line.contains(r#""ok":true"#), "{}", reply.line);

        // Nesting past the parser's depth cap is an error, not a stack
        // overflow; through the executor it is a bad_request.
        let deep = format!("{}1{}", "[".repeat(4096), "]".repeat(4096));
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.contains("nesting"), "{e}");
        let reply = handle_line(&opened, &deep);
        assert!(
            reply.line.contains(r#""code":"bad_request""#),
            "{}",
            reply.line
        );

        // Out-of-range numeric literals degrade to errors, not panics.
        let e = parse_request(r#"{"op":"where","traj":1,"t":1e999}"#).unwrap_err();
        assert_eq!(e.code, "bad_request");
        let e = parse_request(r#"{"op":"where","traj":-3,"t":1}"#).unwrap_err();
        assert_eq!(e.code, "bad_request");
    }

    #[test]
    fn handle_line_answers_the_paper_queries() {
        let opened = paper_opened();
        let t = paper_fixture::hms(5, 21, 25);
        let reply = handle_line(
            &opened,
            &format!(r#"{{"id":1,"op":"where","traj":1,"t":{t},"alpha":0.25}}"#),
        );
        assert!(!reply.shutdown);
        assert!(reply
            .line
            .starts_with(r#"{"id":1,"ok":true,"op":"where","items":[{"instance":0,"#));
        assert!(reply
            .line
            .ends_with(r#""next_cursor":null,"has_more":false}"#));

        // Pagination mints a cursor string; resuming with it walks on.
        let t0 = paper_fixture::hms(5, 5, 0);
        let first = handle_line(
            &opened,
            &format!(r#"{{"op":"where","traj":1,"t":{t0},"alpha":0,"limit":2}}"#),
        );
        assert!(
            first.line.contains(r#""next_cursor":"2""#),
            "{}",
            first.line
        );
        assert!(first.line.contains(r#""has_more":true"#));
        let rest = handle_line(
            &opened,
            &format!(r#"{{"op":"where","traj":1,"t":{t0},"alpha":0,"limit":2,"cursor":"2"}}"#),
        );
        assert!(rest.line.contains(r#""has_more":false"#), "{}", rest.line);

        let info = handle_line(&opened, r#"{"op":"info"}"#);
        assert!(info.line.contains(r#""shape":"single""#), "{}", info.line);
        assert!(info.line.contains(r#""name":"paper""#));
        let cache = handle_line(&opened, r#"{"op":"cache_stats"}"#);
        assert!(cache.line.contains(r#""cache":{"hits":"#), "{}", cache.line);

        let shutdown = handle_line(&opened, r#"{"op":"shutdown"}"#);
        assert!(shutdown.shutdown);
        assert_eq!(shutdown.line, r#"{"ok":true,"op":"shutdown"}"#);

        let err = handle_line(&opened, "not json at all");
        assert!(err.line.contains(r#""ok":false"#));
        assert!(err.line.contains(r#""code":"bad_request""#));
    }

    /// Adversarial `alpha` values on the range wire path: boundary
    /// values keep plain comparison semantics (no clamping, no
    /// rejection), and every non-numeric shape is a `bad_request` with
    /// the stable message — exactly what PROTOCOL.md pins.
    #[test]
    fn adversarial_alpha_values_pin_wire_behavior() {
        let opened = paper_opened();
        let fx = paper_fixture::build();
        let b = fx.example.net.bounding_rect();
        let tq = paper_fixture::hms(5, 21, 25);
        let req = |alpha: &str| {
            format!(
                r#"{{"op":"range","min_x":{},"min_y":{},"max_x":{},"max_y":{},"tq":{tq}{alpha}}}"#,
                b.min_x, b.min_y, b.max_x, b.max_y
            )
        };

        // α = 0 matches the fixture trajectory; an absent α is the
        // same request, byte for byte.
        let zero = handle_line(&opened, &req(r#","alpha":0"#));
        assert!(zero.line.contains(r#""items":[1]"#), "{}", zero.line);
        let absent = handle_line(&opened, &req(""));
        assert_eq!(zero.line, absent.line, "absent alpha defaults to 0");

        // α = 1 still answers ok; its items are a subset of α = 0's
        // (here: the certain fixture trajectory still qualifies).
        let one = handle_line(&opened, &req(r#","alpha":1"#));
        assert!(one.line.contains(r#""ok":true"#), "{}", one.line);

        // Out-of-range numerics keep comparison semantics: α < 0
        // filters nothing extra, α > 1 can never be reached.
        let neg = handle_line(&opened, &req(r#","alpha":-1"#));
        assert_eq!(zero.line, neg.line, "negative alpha behaves like 0");
        let two = handle_line(&opened, &req(r#","alpha":2"#));
        assert!(two.line.contains(r#""items":[]"#), "{}", two.line);
        // An overflowing literal (infinity) is the extreme of α > 1…
        let inf = handle_line(&opened, &req(r#","alpha":1e999"#));
        assert!(inf.line.contains(r#""items":[]"#), "{}", inf.line);
        // …and negative infinity the extreme of α < 0.
        let ninf = handle_line(&opened, &req(r#","alpha":-1e999"#));
        assert_eq!(zero.line, ninf.line, "-inf alpha behaves like 0");

        // Every non-numeric alpha shape: stable bad_request + message.
        for bad in [
            r#","alpha":"0.5""#,
            r#","alpha":true"#,
            r#","alpha":null"#,
            r#","alpha":[0.5]"#,
            r#","alpha":{"v":0.5}"#,
            r#","alpha":"NaN""#,
        ] {
            let reply = handle_line(&opened, &req(bad));
            assert!(
                reply.line.contains(r#""code":"bad_request""#),
                "{bad}: {}",
                reply.line
            );
            assert!(
                reply.line.contains("field 'alpha' must be a number"),
                "{bad}: {}",
                reply.line
            );
        }
        // The same contract holds on where/when.
        for op in [
            r#"{"op":"where","traj":1,"t":0,"alpha":"x"}"#,
            r#"{"op":"when","traj":1,"edge":0,"rd":0.5,"alpha":[]}"#,
        ] {
            let e = parse_request(op).unwrap_err();
            assert_eq!(e.code, "bad_request");
            assert!(e.message.contains("'alpha'"), "{}", e.message);
        }
    }

    #[test]
    fn ingest_parses_validates_and_gates_on_writability() {
        let opened = paper_opened();
        // Parse errors surface as bad_request with a field path.
        let e = parse_request(r#"{"op":"ingest"}"#).unwrap_err();
        assert_eq!(e.code, "bad_request");
        let e = parse_request(r#"{"op":"ingest","trajectories":[{"id":9}]}"#).unwrap_err();
        assert!(e.message.contains("trajectories[0]"), "{}", e.message);

        // A structurally valid line against a read-only executor.
        let line = r#"{"id":1,"op":"ingest","trajectories":[]}"#;
        let reply = handle_line(&opened, line);
        assert!(
            reply.line.contains(r#""code":"read_only""#),
            "{}",
            reply.line
        );

        // The writable executor accepts it (an empty batch publishes
        // nothing and reports the current epoch).
        let reply = handle_line_writable(&opened, line);
        assert_eq!(
            reply.line,
            r#"{"id":1,"ok":true,"op":"ingest","ingested":0,"total":1,"epoch":0}"#
        );

        // Network-invalid trajectories are rejected before any publish.
        let bad = r#"{"op":"ingest","trajectories":[{"id":9,"times":[1,2],"instances":[{"prob":1.0,"path":[999999],"positions":[[0,0.5],[0,0.6]]}]}]}"#;
        let reply = handle_line_writable(&opened, bad);
        assert!(
            reply.line.contains(r#""code":"bad_request""#),
            "{}",
            reply.line
        );
        assert_eq!(opened.len(), 1, "invalid batches publish nothing");
    }

    #[test]
    fn ingest_applies_through_the_writable_executor() {
        let opened = paper_opened();
        // Re-ingest the paper trajectory under a fresh id, shifted out
        // of the original span.
        let fx = paper_fixture::build();
        let mut tu = fx.tu.clone();
        tu.id = 9;
        for t in &mut tu.times {
            *t += 100_000;
        }
        use std::fmt::Write as _;
        let mut traj = String::new();
        let _ = write!(traj, r#"{{"id":9,"times":["#);
        for (i, t) in tu.times.iter().enumerate() {
            if i > 0 {
                traj.push(',');
            }
            let _ = write!(traj, "{t}");
        }
        traj.push_str("],\"instances\":[");
        for (w, inst) in tu.instances.iter().enumerate() {
            if w > 0 {
                traj.push(',');
            }
            let _ = write!(traj, r#"{{"prob":{},"path":["#, inst.prob);
            for (i, e) in inst.path.iter().enumerate() {
                if i > 0 {
                    traj.push(',');
                }
                let _ = write!(traj, "{}", e.0);
            }
            traj.push_str("],\"positions\":[");
            for (i, p) in inst.positions.iter().enumerate() {
                if i > 0 {
                    traj.push(',');
                }
                let _ = write!(traj, "[{},{}]", p.path_idx, p.rd);
            }
            traj.push_str("]}");
        }
        traj.push_str("]}");
        let line = format!(r#"{{"id":2,"op":"ingest","trajectories":[{traj}]}}"#);
        let reply = handle_line_writable(&opened, &line);
        assert_eq!(
            reply.line,
            r#"{"id":2,"ok":true,"op":"ingest","ingested":1,"total":2,"epoch":1}"#
        );
        // The new trajectory answers queries; duplicates map to the
        // store's error code.
        let t = tu.times[0];
        let q = handle_line_writable(
            &opened,
            &format!(r#"{{"op":"where","traj":9,"t":{t},"alpha":0}}"#),
        );
        assert!(q.line.contains(r#""items":[{"#), "{}", q.line);
        let dup = handle_line_writable(&opened, &line);
        assert!(
            dup.line.contains(r#""code":"duplicate_trajectory""#),
            "{}",
            dup.line
        );
    }

    #[test]
    fn oversized_lines_are_rejected_before_parsing() {
        let opened = paper_opened();
        let big = format!(
            r#"{{"op":"ping","pad":"{}"}}"#,
            "x".repeat(MAX_REQUEST_BYTES)
        );
        let reply = handle_line(&opened, &big);
        assert!(
            reply.line.contains(r#""code":"bad_request""#),
            "{}",
            reply.line
        );
        assert!(reply.line.contains("1 MiB"));
        assert!(!reply.shutdown);
        // A long-but-legal string still parses (and in linear time — the
        // string scanner consumes plain-byte runs as slices).
        let ok = format!(r#"{{"op":"ping","pad":"{}"}}"#, "y".repeat(100_000));
        assert!(handle_line(&opened, &ok).line.contains(r#""ok":true"#));
    }

    fn durable_paper_opened(name: &str) -> Opened {
        let dir = std::env::temp_dir().join(format!("utcq-wire-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mk tmp dir");
        let path = dir.join("log.wal");
        let _ = std::fs::remove_file(&path);
        let opened = paper_opened();
        opened
            .attach_wal(crate::wal::WalConfig::new(path))
            .expect("attach wal");
        opened
    }

    /// A fresh-id ingest line derived from the paper trajectory.
    fn shifted_ingest_line(req_id: u64) -> String {
        let fx = paper_fixture::build();
        let mut tu = fx.tu.clone();
        tu.id = 9;
        for t in &mut tu.times {
            *t += 100_000;
        }
        let mut traj = String::new();
        write_trajectory(&mut traj, &tu);
        format!(r#"{{"id":{req_id},"op":"ingest","trajectories":[{traj}]}}"#)
    }

    #[test]
    fn tail_and_checkpoint_require_a_wal() {
        let opened = paper_opened();
        let reply = handle_line(&opened, r#"{"op":"tail","from":1}"#);
        assert!(reply.line.contains(r#""code":"no_wal""#), "{}", reply.line);
        let reply = handle_line_writable(&opened, r#"{"op":"checkpoint"}"#);
        assert!(reply.line.contains(r#""code":"no_wal""#), "{}", reply.line);
        // checkpoint is writable-gated before the wal check.
        let reply = handle_line(&opened, r#"{"op":"checkpoint"}"#);
        assert!(
            reply.line.contains(r#""code":"read_only""#),
            "{}",
            reply.line
        );
        // tail requires 'from'.
        let e = parse_request(r#"{"op":"tail"}"#).unwrap_err();
        assert_eq!(e.code, "bad_request");
    }

    #[test]
    fn tail_streams_accepted_batches_and_parses_back() {
        let opened = durable_paper_opened("tail");
        let reply = handle_line_writable(&opened, &shifted_ingest_line(1));
        assert!(reply.line.contains(r#""epoch":1"#), "{}", reply.line);

        // tail is answered by the read-only executor (followers don't
        // need --writable). `from` is the epoch the caller already
        // has — a fresh follower sends 0.
        let reply = handle_line(&opened, r#"{"op":"tail","from":0}"#);
        let (batches, current) = parse_tail_reply(&reply.line).expect("parse tail");
        assert_eq!(current, 1);
        assert_eq!(batches.len(), 1);
        let (epoch, ds) = &batches[0];
        assert_eq!(*epoch, 1);
        assert_eq!(ds.trajectories.len(), 1);
        assert_eq!(ds.trajectories[0].id, 9);

        // The replayed batch matches the model trajectory bit-for-bit.
        let fx = paper_fixture::build();
        let mut want = fx.tu.clone();
        want.id = 9;
        for t in &mut want.times {
            *t += 100_000;
        }
        assert_eq!(ds.trajectories[0], want);

        // Caught up: from at the head returns an empty page.
        let reply = handle_line(&opened, r#"{"op":"tail","from":1}"#);
        let (batches, current) = parse_tail_reply(&reply.line).expect("parse tail");
        assert!(batches.is_empty());
        assert_eq!(current, 1);
    }

    #[test]
    fn checkpoint_reports_and_duplicate_retries_dedup() {
        let opened = durable_paper_opened("ckpt");
        let line = shifted_ingest_line(1);
        let first = handle_line_writable(&opened, &line);
        assert!(first.line.contains(r#""ok":true"#), "{}", first.line);

        // Retrying the identical batch (a client that lost the ack)
        // answers success with the recorded epoch, flagged as deduped.
        let retry = handle_line_writable(&opened, &line);
        assert_eq!(
            retry.line,
            r#"{"id":1,"ok":true,"op":"ingest","ingested":1,"total":2,"epoch":1,"deduped":true}"#
        );

        // A genuine duplicate (different batch shape, same id) still
        // fails with duplicate_trajectory.
        let fx = paper_fixture::build();
        let mut tu = fx.tu.clone();
        tu.id = 9;
        for t in &mut tu.times {
            *t += 200_000;
        }
        let mut traj = String::new();
        write_trajectory(&mut traj, &tu);
        let other = format!(r#"{{"op":"ingest","trajectories":[{traj}]}}"#);
        let reply = handle_line_writable(&opened, &other);
        assert!(
            reply.line.contains(r#""code":"duplicate_trajectory""#),
            "{}",
            reply.line
        );

        // The attach used WalConfig::new (no checkpoint_to), so the
        // checkpoint op reports no_wal; a target-configured checkpoint
        // is exercised end-to-end in tests/durability.rs.
        let reply = handle_line_writable(&opened, r#"{"op":"checkpoint"}"#);
        assert!(reply.line.contains(r#""code":"no_wal""#), "{}", reply.line);
    }

    #[test]
    fn deterministic_serialization() {
        let opened = paper_opened();
        let t = paper_fixture::hms(5, 21, 25);
        let req = format!(r#"{{"op":"where","traj":1,"t":{t},"alpha":0.25}}"#);
        let a = handle_line(&opened, &req).line;
        opened.clear_cache();
        let b = handle_line(&opened, &req).line;
        assert_eq!(a, b, "cached and cold answers must serialize identically");
    }
}
