//! Fixed-width membership bitmaps for sealed interval segments.
//!
//! A sealed [`crate::chunk::IntervalMap`] segment covers exactly
//! [`crate::chunk::CHUNK`] trajectory positions, so per-interval
//! membership fits a fixed 1024-bit block: one [`SegmentBitmap`] per
//! `(segment, interval)` pair. Compared to the `Vec<u32>` posting lists
//! they replace, the blocks answer membership in O(1), merge with
//! word-wide OR/AND instead of sort-merge, and enumerate positions in
//! ascending order via trailing-zero scans — the properties the range
//! candidate generator relies on.
//!
//! Bitmaps are an in-memory acceleration structure only: serialization
//! re-derives flat posting lists through
//! [`crate::chunk::IntervalMap::postings`], so containers stay
//! byte-identical to the pre-bitmap format.

/// Bits per bitmap — one per position of a sealed chunk.
pub const SEG_BITS: usize = crate::chunk::CHUNK;

/// `u64` words per bitmap.
pub const SEG_WORDS: usize = SEG_BITS / 64;

/// A fixed 1024-bit membership block over one sealed segment's local
/// positions `0..SEG_BITS`.
#[derive(Clone, PartialEq, Eq)]
pub struct SegmentBitmap {
    words: [u64; SEG_WORDS],
}

impl SegmentBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self {
            words: [0; SEG_WORDS],
        }
    }

    /// Sets local position `pos`. Positions at or past [`SEG_BITS`] are
    /// ignored — sealed segments never produce them.
    pub fn set(&mut self, pos: u32) {
        if let Some(w) = self.words.get_mut(pos as usize / 64) {
            *w |= 1u64 << (pos % 64);
        }
    }

    /// Whether local position `pos` is set.
    pub fn contains(&self, pos: u32) -> bool {
        self.words
            .get(pos as usize / 64)
            .is_some_and(|w| w & (1u64 << (pos % 64)) != 0)
    }

    /// Word-wide OR: membership of either bitmap.
    pub fn union_with(&mut self, other: &Self) {
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }

    /// Word-wide AND: membership of both bitmaps.
    pub fn intersect_with(&mut self, other: &Self) {
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
    }

    /// Whether any position is set in both bitmaps — a 16-word AND
    /// scan, the batch engine's candidate-skip test.
    pub fn intersects(&self, other: &Self) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(w, o)| w & o != 0)
    }

    /// Number of set positions.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no position is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Appends `base + pos` for every set position, ascending — the
    /// global-position expansion used by
    /// [`crate::chunk::IntervalMap::postings`].
    pub fn push_positions(&self, base: u32, out: &mut Vec<u32>) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros();
                out.push(base + (wi as u32) * 64 + bit);
                w &= w - 1; // clear the lowest set bit
            }
        }
    }

    /// The set positions offset by `base`, ascending.
    pub fn positions(&self, base: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count());
        self.push_positions(base, &mut out);
        out
    }

    /// Shallow heap-independent size, for copy accounting.
    pub const fn byte_size() -> usize {
        std::mem::size_of::<[u64; SEG_WORDS]>()
    }
}

impl Default for SegmentBitmap {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SegmentBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentBitmap")
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_and_positions_round_trip() {
        let mut b = SegmentBitmap::new();
        let set = [0u32, 1, 63, 64, 100, 1022, 1023];
        for &p in &set {
            b.set(p);
        }
        assert_eq!(b.count(), set.len());
        for p in 0..SEG_BITS as u32 {
            assert_eq!(b.contains(p), set.contains(&p), "position {p}");
        }
        assert_eq!(b.positions(0), set);
        assert_eq!(
            b.positions(2048),
            set.iter().map(|p| p + 2048).collect::<Vec<_>>()
        );
    }

    #[test]
    fn out_of_range_positions_are_ignored() {
        let mut b = SegmentBitmap::new();
        b.set(SEG_BITS as u32);
        b.set(u32::MAX);
        assert!(b.is_empty());
        assert!(!b.contains(SEG_BITS as u32));
        assert!(!b.contains(u32::MAX));
    }

    #[test]
    fn union_and_intersection_match_set_semantics() {
        let mut a = SegmentBitmap::new();
        let mut b = SegmentBitmap::new();
        for p in (0..1024).step_by(3) {
            a.set(p);
        }
        for p in (0..1024).step_by(5) {
            b.set(p);
        }
        let mut or = a.clone();
        or.union_with(&b);
        let mut and = a.clone();
        and.intersect_with(&b);
        for p in 0..1024u32 {
            assert_eq!(or.contains(p), p % 3 == 0 || p % 5 == 0, "or {p}");
            assert_eq!(and.contains(p), p % 15 == 0, "and {p}");
        }
        assert_eq!(and.count(), (0..1024).filter(|p| p % 15 == 0).count());
        assert!(a.intersects(&b), "multiples of 15 are shared");
        let mut c = SegmentBitmap::new();
        c.set(1); // not a multiple of 3
        assert!(!a.intersects(&c));
        assert!(!SegmentBitmap::new().intersects(&a));
    }

    #[test]
    fn empty_bitmap_reports_empty() {
        let b = SegmentBitmap::new();
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert_eq!(b.positions(0), Vec::<u32>::new());
    }
}
