//! Per-connection state machine for the event-loop server.
//!
//! Each accepted socket becomes a [`Conn`]: a nonblocking stream plus
//! a read buffer (unparsed bytes), a write buffer (responses queued in
//! request order) and a handful of state bits. The readiness loop in
//! [`crate::serve`] owns every `Conn`; nothing here blocks, so an idle
//! connection costs the buffers below and a file descriptor — not a
//! thread.
//!
//! # Framing
//!
//! [`Conn::pump`] reads whatever the socket has and cuts it into
//! [`Frame`]s, mirroring the blocking server's `read_line` semantics
//! exactly — that parity is what keeps served answers byte-identical
//! to the offline executor:
//!
//! * lines are split on `\n`, trailing `\r`/`\n` stripped, blank lines
//!   skipped without a response;
//! * a line is handed to the executor as soon as its newline arrives —
//!   or at EOF for an unterminated final line, like `BufRead::lines`;
//! * invalid UTF-8 poisons the connection: queued responses still
//!   flush, nothing after the bad bytes is answered;
//! * a line that outgrows [`wire::MAX_REQUEST_BYTES`] without a newline
//!   yields [`Frame::Oversized`] (answered with the executor's own
//!   `bad_request` line, in order) and the remainder is discarded up to
//!   the next newline, never more than [`DRAIN_BUDGET_BYTES`].
//!
//! # Backpressure
//!
//! Responses append to the write buffer and flush opportunistically.
//! When a slow reader lets the backlog pass [`WRITE_HIGH_WATERMARK`],
//! the connection stops *reading* (its `desired_interest` drops the
//! readable bit) until the backlog drains below
//! [`WRITE_LOW_WATERMARK`] — pipelined producers are throttled by TCP
//! flow control instead of growing server memory.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::{AsRawFd, RawFd};

use crate::poll;
use crate::wire;

/// How many bytes of an over-long request line the server will discard
/// looking for its newline before giving up and closing the connection.
pub const DRAIN_BUDGET_BYTES: u64 = 64 * wire::MAX_REQUEST_BYTES as u64;

/// Write backlog (bytes queued but not yet accepted by the socket) at
/// which a connection stops reading new requests.
pub const WRITE_HIGH_WATERMARK: usize = 256 * 1024;

/// Write backlog below which a paused connection resumes reading.
pub const WRITE_LOW_WATERMARK: usize = 64 * 1024;

/// Most bytes a single [`Conn::pump`] call will pull off one socket —
/// a fairness bound so one firehose connection cannot starve the rest
/// of the loop. Level-triggered readiness re-reports the remainder.
const PUMP_BUDGET_BYTES: usize = 256 * 1024;

/// Read chunk size; also the granularity of the pump budget.
const READ_CHUNK: usize = 64 * 1024;

/// Buffered-line length at which an unterminated request is declared
/// over-long: the cap plus room for `\r\n` plus one sentinel byte —
/// the same `take(MAX + 3)` bound the blocking server used, so the
/// executor sees an identically sized rejection on both designs.
const OVERFLOW_BYTES: usize = wire::MAX_REQUEST_BYTES + 3;

/// One parsed request unit, in arrival order.
pub enum Frame {
    /// A complete request line (terminator stripped, not blank).
    Line(String),
    /// A line that exceeded [`wire::MAX_REQUEST_BYTES`]; the executor's
    /// canonical `bad_request` reply is owed in this slot.
    Oversized,
}

/// One live connection owned by the readiness loop. See the
/// [module docs](self) for the framing and backpressure rules.
pub struct Conn {
    stream: TcpStream,
    token: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Exactly one burst of frames may be executing on the worker pool;
    /// while it is, the loop neither reads nor dispatches for this
    /// connection (which is what keeps responses in request order).
    in_flight: bool,
    read_closed: bool,
    fatal: bool,
    paused: bool,
    /// Remaining discard budget while resynchronizing past an
    /// over-long line; `0` means not draining.
    drain_left: u64,
    /// The interest bits currently registered with the poller — cached
    /// so the loop only issues `epoll_ctl` on a real change.
    pub(crate) registered: u32,
}

impl Conn {
    /// Adopts an accepted stream: switches it nonblocking and disables
    /// Nagle (responses are already coalesced per burst; delaying them
    /// further only hurts tail latency).
    pub fn new(stream: TcpStream, token: u64) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            token,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            in_flight: false,
            read_closed: false,
            fatal: false,
            paused: false,
            drain_left: 0,
            registered: 0,
        })
    }

    /// The token this connection is registered under.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The underlying socket fd, for poller registration.
    pub fn raw_fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// The underlying stream (the serve registry clones it so shutdown
    /// can half-close reads from another thread).
    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Whether a burst is currently executing on the worker pool.
    pub fn is_in_flight(&self) -> bool {
        self.in_flight
    }

    /// Marks a burst dispatched (`true`) or completed (`false`).
    pub fn set_in_flight(&mut self, v: bool) {
        self.in_flight = v;
    }

    /// Marks the connection unrecoverable; it reports [`finished`]
    /// immediately and is dropped without further I/O.
    ///
    /// [`finished`]: Conn::finished
    pub fn mark_fatal(&mut self) {
        self.fatal = true;
    }

    /// Half-closes the read side: no further requests are parsed (any
    /// buffered, not-yet-dispatched input is discarded — the same fate
    /// undelivered pipelined requests met under the blocking server),
    /// while queued responses still flush. Used at shutdown and after
    /// a `shutdown` acknowledgement.
    pub fn half_close_read(&mut self) {
        self.read_closed = true;
        self.read_buf.clear();
        self.drain_left = 0;
        let _ = self.stream.shutdown(Shutdown::Read);
    }

    /// Protocol violation (bad UTF-8, drain budget exhausted): stop
    /// reading, let queued responses flush, then close.
    fn poison(&mut self) {
        self.half_close_read();
    }

    /// Bytes queued but not yet accepted by the socket.
    pub fn write_backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// True when the loop can drop this connection: it is either
    /// unrecoverable, or fully drained (read side closed, no burst in
    /// flight, every queued response byte accepted by the socket).
    pub fn finished(&self) -> bool {
        self.fatal || (self.read_closed && !self.in_flight && self.write_backlog() == 0)
    }

    /// The readiness bits this connection currently wants, applying the
    /// backpressure hysteresis: readable unless a burst is in flight or
    /// the write backlog is past the high watermark (draining an
    /// over-long line keeps reading — those bytes are discarded, not
    /// buffered); writable while any response bytes are queued.
    pub fn desired_interest(&mut self) -> u32 {
        let backlog = self.write_backlog();
        if backlog > WRITE_HIGH_WATERMARK {
            self.paused = true;
        } else if self.paused && backlog <= WRITE_LOW_WATERMARK {
            self.paused = false;
        }
        if self.fatal {
            return 0;
        }
        let mut want = 0;
        if !self.read_closed && (self.drain_left > 0 || (!self.in_flight && !self.paused)) {
            want |= poll::IN;
        }
        if backlog > 0 {
            want |= poll::OUT;
        }
        want
    }

    /// Reads whatever the socket has (bounded by the pump budget) and
    /// appends completed [`Frame`]s in arrival order. Never blocks;
    /// EOF, errors and protocol violations update the connection state
    /// instead of being returned.
    pub fn pump(&mut self, frames: &mut Vec<Frame>) {
        let mut budget = PUMP_BUDGET_BYTES;
        let mut chunk = [0u8; READ_CHUNK];
        while budget > 0 && !self.fatal && !self.read_closed {
            match (&self.stream).read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    // An unterminated final line still executes, like
                    // `BufRead::lines` would have delivered it.
                    self.parse(frames, true);
                    return;
                }
                Ok(n) => {
                    // bounds: `Read::read` returns at most `chunk.len()`.
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    budget = budget.saturating_sub(n);
                    self.parse(frames, false);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fatal = true;
                    return;
                }
            }
        }
    }

    /// Cuts `read_buf` into frames; `at_eof` additionally flushes an
    /// unterminated trailing line. Consumes from the front with a local
    /// cursor and compacts once, so a buffer full of small lines stays
    /// linear.
    fn parse(&mut self, frames: &mut Vec<Frame>, at_eof: bool) {
        let mut head = 0;
        loop {
            // bounds: `head` only advances past consumed bytes, ≤ len.
            let rest = &self.read_buf[head..];
            if self.drain_left > 0 {
                match rest.iter().position(|&b| b == b'\n') {
                    Some(pos) if (pos as u64) < self.drain_left => {
                        head += pos + 1;
                        self.drain_left = 0;
                        continue;
                    }
                    Some(_) => {
                        // Newline exists but past the budget: give up.
                        self.poison();
                        return;
                    }
                    None => {
                        let n = rest.len() as u64;
                        if n >= self.drain_left {
                            self.poison();
                            return;
                        }
                        self.drain_left -= n;
                        self.read_buf.clear();
                        return;
                    }
                }
            }
            match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    // bounds: `position` returned an index < rest.len().
                    let line = &rest[..pos];
                    match frame_of(line) {
                        Ok(Some(f)) => frames.push(f),
                        Ok(None) => {} // blank line: no response
                        Err(()) => {
                            self.poison();
                            return;
                        }
                    }
                    head += pos + 1;
                }
                None => {
                    if rest.len() >= OVERFLOW_BYTES {
                        // Same shape the blocking server produced: the
                        // first `take(MAX + 3)` bytes must be text (a
                        // non-UTF-8 chunk tore the connection there
                        // too), then one bad_request reply and a
                        // bounded resynchronizing discard.
                        // bounds: rest.len() >= OVERFLOW_BYTES checked.
                        if std::str::from_utf8(&rest[..OVERFLOW_BYTES]).is_err() {
                            self.poison();
                            return;
                        }
                        frames.push(Frame::Oversized);
                        head += OVERFLOW_BYTES;
                        self.drain_left = DRAIN_BUDGET_BYTES;
                        continue;
                    }
                    if at_eof && !rest.is_empty() {
                        match frame_of(rest) {
                            Ok(Some(f)) => frames.push(f),
                            Ok(None) => {}
                            Err(()) => {
                                self.poison();
                                return;
                            }
                        }
                        self.read_buf.clear();
                        return;
                    }
                    break;
                }
            }
        }
        if head > 0 {
            self.read_buf.drain(..head);
        }
    }

    /// Queues response bytes (already newline-terminated, in request
    /// order) behind whatever is still unflushed.
    pub fn queue_response(&mut self, bytes: &[u8]) {
        if self.fatal {
            return;
        }
        if self.write_pos > 0 {
            // Compact consumed front matter before growing the buffer.
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        self.write_buf.extend_from_slice(bytes);
    }

    /// Writes queued bytes until the socket stops accepting them — one
    /// coalesced flush per burst in the common case. Never blocks.
    pub fn flush(&mut self) {
        while !self.fatal && self.write_pos < self.write_buf.len() {
            // bounds: write_pos < len per the loop condition.
            match (&self.stream).write(&self.write_buf[self.write_pos..]) {
                Ok(0) => self.fatal = true,
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => self.fatal = true,
            }
        }
        if self.write_pos > 0 && self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
    }
}

/// Classifies one raw line: `Ok(None)` for blank, `Err` for bytes the
/// blocking server's `read_line` would have failed on (invalid UTF-8).
/// Trailing `\r`/`\n` are stripped exactly like the offline client's
/// `lines()` iterator strips them.
fn frame_of(raw: &[u8]) -> Result<Option<Frame>, ()> {
    let Ok(s) = std::str::from_utf8(raw) else {
        return Err(());
    };
    let s = s.trim_end_matches(['\r', '\n']);
    if s.trim().is_empty() {
        return Ok(None);
    }
    Ok(Some(Frame::Line(s.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        (client, Conn::new(served, 9).unwrap())
    }

    fn lines_of(frames: &[Frame]) -> Vec<String> {
        frames
            .iter()
            .map(|f| match f {
                Frame::Line(s) => s.clone(),
                Frame::Oversized => "<oversized>".to_string(),
            })
            .collect()
    }

    #[test]
    fn frames_lines_skips_blanks_and_trims_crlf() {
        let (client, mut conn) = pair();
        (&client)
            .write_all(b"{\"op\":\"ping\"}\r\n\n   \n{\"op\":\"info\"}\npartial")
            .unwrap();
        // Give loopback delivery a moment, then pump.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut frames = Vec::new();
        conn.pump(&mut frames);
        assert_eq!(
            lines_of(&frames),
            ["{\"op\":\"ping\"}", "{\"op\":\"info\"}"]
        );
        assert!(!conn.finished());

        // The unterminated tail executes once the peer closes.
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut frames = Vec::new();
        conn.pump(&mut frames);
        assert_eq!(lines_of(&frames), ["partial"]);
        assert!(conn.finished());
    }

    #[test]
    fn oversized_line_yields_marker_and_resynchronizes() {
        let (client, mut conn) = pair();
        // Long enough past the cap that a pump is guaranteed to see
        // OVERFLOW_BYTES of buffered line with the newline still far
        // away — the deterministic marker-and-drain path. (A line whose
        // newline lands in the same read window frames as a normal
        // over-long Line instead; the executor rejects both with the
        // identical bad_request bytes.)
        let big = vec![b'x'; OVERFLOW_BYTES + 300 * 1024];
        let c = client.try_clone().unwrap();
        let w = std::thread::spawn(move || {
            (&c).write_all(&big).unwrap();
            (&c).write_all(b"\n{\"op\":\"ping\"}\n").unwrap();
        });
        let mut frames = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while lines_of(&frames) != ["<oversized>", "{\"op\":\"ping\"}"]
            && std::time::Instant::now() < deadline
        {
            conn.pump(&mut frames);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        w.join().unwrap();
        assert_eq!(lines_of(&frames), ["<oversized>", "{\"op\":\"ping\"}"]);
        assert!(
            !conn.finished(),
            "connection must survive an oversized line"
        );
    }

    #[test]
    fn invalid_utf8_poisons_after_earlier_lines() {
        let (client, mut conn) = pair();
        (&client)
            .write_all(b"{\"op\":\"ping\"}\n\xff\xfe\n")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut frames = Vec::new();
        conn.pump(&mut frames);
        // The good line before the garbage still came through.
        assert_eq!(lines_of(&frames), ["{\"op\":\"ping\"}"]);
        // Nothing in flight, nothing queued: the poisoned conn is done.
        assert!(conn.finished());
    }

    #[test]
    fn backpressure_pauses_reads_until_backlog_drains() {
        let (_client, mut conn) = pair();
        conn.queue_response(&vec![b'a'; WRITE_HIGH_WATERMARK + 1]);
        // Backlog above the high watermark: reads pause, writes wanted.
        let want = conn.desired_interest();
        assert_eq!(want & poll::IN, 0);
        assert_ne!(want & poll::OUT, 0);
        // Draining below the low watermark resumes reads. Simulate the
        // drain by flushing into the (empty) socket buffer.
        conn.flush();
        let want = conn.desired_interest();
        assert_ne!(want & poll::IN, 0);
    }

    #[test]
    fn in_flight_masks_reads_and_finished_waits_for_it() {
        let (client, mut conn) = pair();
        conn.set_in_flight(true);
        assert_eq!(conn.desired_interest() & poll::IN, 0);
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut frames = Vec::new();
        conn.pump(&mut frames);
        assert!(!conn.finished(), "in-flight burst must complete first");
        conn.set_in_flight(false);
        assert!(conn.finished());
    }
}
