//! Flag arrays and original arrays (§5.1).
//!
//! Queries constantly need "how many mapped locations precede entry `g`"
//! — that count indexes the `D` stream and the time sequence. For a
//! reference this is a prefix-sum over its trimmed flag bits (the *flag
//! array* `ω`). For a non-reference the paper's *original array* `γ` is
//! computed by **partial decompression**: walking the `Com_T'` factor
//! list and reusing `ω` of the reference (Formulas 4–6), never
//! materializing the non-reference's bit-string.

use crate::factor::TCom;

/// Prefix-sum of ones over a reference's *trimmed* flags:
/// `ones_before(g)` = number of set bits among `trimmed[0..g]`.
#[derive(Debug, Clone)]
pub struct FlagArray {
    prefix: Vec<u32>,
}

impl FlagArray {
    /// Builds the array from trimmed flags.
    pub fn new(trimmed: &[bool]) -> Self {
        let mut prefix = Vec::with_capacity(trimmed.len() + 1);
        prefix.push(0);
        let mut acc = 0u32;
        for &b in trimmed {
            acc += u32::from(b);
            prefix.push(acc);
        }
        Self { prefix }
    }

    /// Number of set bits among the first `g` trimmed bits.
    #[inline]
    pub fn ones_before(&self, g: usize) -> u32 {
        self.prefix[g]
    }

    /// Total number of set trimmed bits.
    #[inline]
    pub fn total(&self) -> u32 {
        *self.prefix.last().unwrap()
    }

    /// Length of the underlying trimmed bit-string.
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// True if the underlying bit-string is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Number of ones among the first `g` bits of a reference's *full*
/// flag string (`full = [1] ++ trimmed ++ [1]`, length `n_entries`).
pub fn ref_ones_before_full(omega: &FlagArray, n_entries: usize, g: usize) -> u32 {
    debug_assert!(g <= n_entries);
    if g == 0 {
        return 0;
    }
    if g == n_entries {
        return omega.total() + 2;
    }
    1 + omega.ones_before(g - 1)
}

/// Number of ones among the first `g` bits of a *non-reference's* full
/// flag string, computed from its `Com_T'` against the reference's flag
/// array — the partial decompression of §5.1.
///
/// `nref_entries` is the non-reference's entry count (so its full flag
/// string has that many bits).
pub fn nref_ones_before_full(
    tcom: &TCom,
    ref_trimmed: &[bool],
    omega: &FlagArray,
    nref_entries: usize,
    g: usize,
) -> u32 {
    debug_assert!(g <= nref_entries);
    if g == 0 {
        return 0;
    }
    let trimmed_len = nref_entries.saturating_sub(2);
    // Ones among trimmed[0..k] for k = min(g−1, trimmed_len), plus the
    // leading 1, plus the trailing 1 when g covers it.
    let k = (g - 1).min(trimmed_len);
    let trailing = u32::from(g == nref_entries);
    let ones_trimmed = match tcom {
        TCom::Identical => omega.ones_before(k),
        TCom::Raw(bits) => bits[..k].iter().map(|&b| u32::from(b)).sum(),
        TCom::Factors { factors, last_m } => {
            let mut acc = 0u32;
            let mut pos = 0usize;
            for (h, f) in factors.iter().enumerate() {
                let (s, l) = (f.s as usize, f.l as usize);
                let is_last = h == factors.len() - 1;
                // Bits this factor contributes: the copy plus a mismatch
                // bit (implicit for non-last factors, explicit for the
                // last when present).
                let m_bit: Option<bool> = if is_last {
                    *last_m
                } else {
                    Some(!ref_trimmed[s + l])
                };
                let cover = l + usize::from(m_bit.is_some());
                if pos + cover <= k {
                    acc += omega.ones_before(s + l) - omega.ones_before(s);
                    acc += u32::from(m_bit == Some(true));
                    pos += cover;
                    if pos == k {
                        break;
                    }
                } else {
                    // k falls inside this factor.
                    let x = k - pos;
                    if x <= l {
                        acc += omega.ones_before(s + x) - omega.ones_before(s);
                    } else {
                        acc += omega.ones_before(s + l) - omega.ones_before(s);
                        acc += u32::from(m_bit == Some(true));
                    }
                    pos = k;
                    break;
                }
            }
            debug_assert_eq!(pos, k, "factors cover fewer bits than requested");
            acc
        }
    };
    1 + ones_trimmed + trailing
}

/// Index of the `(i+1)`-th set bit in a full flag string described by a
/// monotone `ones_before` oracle (binary search) — the entry index of
/// sample `i`.
pub fn select_one(mut ones_before: impl FnMut(usize) -> u32, n_entries: usize, i: u32) -> usize {
    // Smallest g with ones_before(g + 1) >= i + 1.
    let (mut lo, mut hi) = (0usize, n_entries - 1);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if ones_before(mid + 1) > i {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::factorize_t;

    fn bits(v: &[u8]) -> Vec<bool> {
        v.iter().map(|&b| b == 1).collect()
    }

    fn naive_ones_before(full: &[bool], g: usize) -> u32 {
        full[..g].iter().map(|&b| u32::from(b)).sum()
    }

    fn full_of(trimmed: &[bool]) -> Vec<bool> {
        let mut f = vec![true];
        f.extend_from_slice(trimmed);
        f.push(true);
        f
    }

    #[test]
    fn flag_array_prefix_sums() {
        let trimmed = bits(&[0, 1, 0, 1, 1, 1, 1]);
        let omega = FlagArray::new(&trimmed);
        assert_eq!(omega.ones_before(0), 0);
        assert_eq!(omega.ones_before(2), 1);
        assert_eq!(omega.ones_before(7), 5);
        assert_eq!(omega.total(), 5);
        assert_eq!(omega.len(), 7);
    }

    #[test]
    fn ref_full_counts_match_naive() {
        let trimmed = bits(&[0, 1, 0, 1, 1, 1, 1]);
        let omega = FlagArray::new(&trimmed);
        let full = full_of(&trimmed);
        for g in 0..=full.len() {
            assert_eq!(
                ref_ones_before_full(&omega, full.len(), g),
                naive_ones_before(&full, g),
                "g={g}"
            );
        }
    }

    #[test]
    fn nref_partial_counts_match_naive() {
        // All pairings of the paper's flag strings plus tricky shapes.
        let refs = [
            bits(&[0, 1, 0, 1, 1, 1, 1]),
            bits(&[1, 1, 1, 1]),
            bits(&[0, 0]),
            vec![],
        ];
        let nrefs = [
            bits(&[1, 0, 0, 1, 1, 1, 1]),
            bits(&[0, 1, 0, 1, 1, 1, 1]),
            bits(&[1, 0, 1, 0, 1]),
            bits(&[0]),
            vec![],
            bits(&[1, 1, 0, 0, 0, 0, 1, 1]),
        ];
        for r in &refs {
            let omega = FlagArray::new(r);
            for n in &nrefs {
                let tcom = factorize_t(n, r);
                let full = full_of(n);
                for g in 0..=full.len() {
                    assert_eq!(
                        nref_ones_before_full(&tcom, r, &omega, full.len(), g),
                        naive_ones_before(&full, g),
                        "ref={r:?} nref={n:?} g={g}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_one_finds_sample_entries() {
        // Full flags of the running example: 1,0,1,0,1,1,1,1,1 — samples
        // at entries 0, 2, 4, 5, 6, 7, 8.
        let trimmed = bits(&[0, 1, 0, 1, 1, 1, 1]);
        let omega = FlagArray::new(&trimmed);
        let n = 9;
        let expect = [0usize, 2, 4, 5, 6, 7, 8];
        for (i, &g) in expect.iter().enumerate() {
            let got = select_one(|x| ref_ones_before_full(&omega, n, x), n, i as u32);
            assert_eq!(got, g, "sample {i}");
        }
    }

    #[test]
    fn select_one_on_nref_via_partial_gamma() {
        let r = bits(&[0, 1, 0, 1, 1, 1, 1]);
        let n = bits(&[1, 0, 0, 1, 1, 1, 1]); // Tu¹₂ trimmed
        let omega = FlagArray::new(&r);
        let tcom = factorize_t(&n, &r);
        let full = full_of(&n);
        let n_entries = full.len();
        let mut want = Vec::new();
        for (g, &b) in full.iter().enumerate() {
            if b {
                want.push(g);
            }
        }
        for (i, &g) in want.iter().enumerate() {
            let got = select_one(
                |x| nref_ones_before_full(&tcom, &r, &omega, n_entries, x),
                n_entries,
                i as u32,
            );
            assert_eq!(got, g, "sample {i}");
        }
    }
}
