//! StIU: the Spatio-temporal Information based Uncertain Trajectory Index
//! (§5.2).
//!
//! Two parts per compressed trajectory:
//!
//! * a **temporal index**: the day is partitioned into equal intervals;
//!   each interval containing at least one timestamp stores a tuple
//!   `(t.start, t.no, t.pos)` — the earliest timestamp in the interval,
//!   its index, and the bit position of the following deviation code in
//!   the compressed time stream, so time decoding can resume mid-stream;
//! * a **spatial index**: the plane is partitioned into an `n × n` grid;
//!   each instance gets one tuple per region it traverses (first
//!   traversal). Reference tuples carry the *final vertex* (the vertex
//!   traversed immediately before entering the region), its entry index,
//!   the matching `D̂` position, and the probability aggregates
//!   `p_total` / `p_max` over the reference's group that power the
//!   filtering lemmas. Non-reference tuples carry the resume vertex, its
//!   entry index, and the bit position of the covering `Com_E` factor.

use utcq_bitio::golomb;
use utcq_network::{CellId, Grid, RoadNetwork, VertexId};
use utcq_traj::{Dataset, Instance, TedView, UncertainTrajectory};

use crate::chunk::{ChunkedVec, IntervalMap};
use crate::compress::CompressedDataset;
use crate::compressed::CompressedTrajectory;
use crate::factor::{self, EFactor};
use crate::siar;

/// Index construction parameters (the paper's Fig. 9 sweeps both).
#[derive(Debug, Clone, Copy)]
pub struct StiuParams {
    /// Time partition duration in seconds (paper default 15 min in the
    /// examples; Fig. 9 sweeps 10–60 min).
    pub partition_s: i64,
    /// Grid dimension `n` (n² cells; Fig. 9 sweeps 8–128).
    pub grid_n: u32,
}

impl Default for StiuParams {
    fn default() -> Self {
        Self {
            partition_s: 900,
            grid_n: 32,
        }
    }
}

/// Temporal tuple `(t.start, t.no, t.pos)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalTuple {
    /// Earliest timestamp of the trajectory inside the interval.
    pub start: i64,
    /// Index of `start` in the time sequence.
    pub no: u32,
    /// Bit position of the next deviation code in `t_bits` (= end of the
    /// stream for the final sample).
    pub pos: u32,
}

/// Spatial tuple of a reference for one region.
#[derive(Debug, Clone, Copy)]
pub struct RefRegionTuple {
    /// The region.
    pub cell: CellId,
    /// Index into [`CompressedTrajectory::refs`].
    pub ref_idx: u32,
    /// Final vertex w.r.t. the region; `None` encodes the paper's `∞`
    /// (the reference itself never enters the region, only members of its
    /// `Rrs` do).
    pub fv: Option<VertexId>,
    /// Entry index of `fv`'s edge in `E(Ref)`.
    pub fv_no: u32,
    /// Bit position of the `d.no`-th distance code in `D̂(Ref)`.
    pub d_pos: u32,
    /// Sum of probabilities of group members traversing the region.
    pub p_total: f64,
    /// Maximum probability among *non-reference* group members
    /// traversing the region (0 when none does) — Lemma 1's filter.
    pub p_max: f64,
}

/// Spatial tuple of a non-reference for one region.
#[derive(Debug, Clone, Copy)]
pub struct NrefRegionTuple {
    /// The region.
    pub cell: CellId,
    /// Index into [`CompressedTrajectory::nrefs`].
    pub nref_idx: u32,
    /// Resume vertex (the vertex traversed immediately before the
    /// region).
    pub rv: VertexId,
    /// Entry index of `rv`'s edge in `E(Nref)`.
    pub rv_no: u32,
    /// Bit position of the covering factor in `Com_E`.
    pub ma_pos: u32,
}

/// Per-trajectory index node.
#[derive(Debug, Clone, Default)]
pub struct TrajIndex {
    /// Temporal tuples sorted by `start`.
    pub temporal: Vec<TemporalTuple>,
    /// Reference region tuples.
    pub ref_tuples: Vec<RefRegionTuple>,
    /// Non-reference region tuples.
    pub nref_tuples: Vec<NrefRegionTuple>,
}

impl TrajIndex {
    /// The temporal tuple with the largest `start ≤ t`, if any.
    pub fn temporal_at(&self, t: i64) -> Option<&TemporalTuple> {
        let i = self.temporal.partition_point(|tt| tt.start <= t);
        if i == 0 {
            None
        } else {
            Some(&self.temporal[i - 1])
        }
    }

    /// Reference tuples for a region.
    pub fn refs_in(&self, cell: CellId) -> impl Iterator<Item = &RefRegionTuple> {
        self.ref_tuples.iter().filter(move |t| t.cell == cell)
    }

    /// Non-reference tuples for a region.
    pub fn nrefs_in(&self, cell: CellId) -> impl Iterator<Item = &NrefRegionTuple> {
        self.nref_tuples.iter().filter(move |t| t.cell == cell)
    }
}

/// The full index.
#[derive(Debug, Clone)]
pub struct Stiu {
    /// Construction parameters.
    pub params: StiuParams,
    /// The spatial grid.
    pub grid: Grid,
    /// One node per compressed trajectory (same order), chunked so a
    /// live publish shares sealed chunks by pointer (see
    /// [`crate::chunk`]).
    pub trajs: ChunkedVec<TrajIndex>,
    /// Interval index → trajectory indices with samples in the
    /// interval, segmented per trajectory chunk so a batch extends the
    /// tail segment without rewriting the postings of untouched
    /// intervals.
    pub interval_trajs: IntervalMap,
}

impl Stiu {
    /// Index size in bits, split into (spatial, temporal) — the paper's
    /// `s-size` / `t-size` of Fig. 9. Field widths: 17-bit start, 12-bit
    /// sample index, 24-bit stream position, 32-bit vertex id, and `ηp`
    /// widths for the probability aggregates.
    pub fn size_bits(&self, p_width: u32) -> (u64, u64) {
        let mut s = 0u64;
        let mut t = 0u64;
        for node in &self.trajs {
            t += node.temporal.len() as u64 * (17 + 12 + 24);
            s += node.ref_tuples.len() as u64 * (32 + 12 + 24 + 2 * u64::from(p_width));
            s += node.nref_tuples.len() as u64 * (32 + 12 + 24);
        }
        (s, t)
    }

    /// Trajectories with a temporal tuple in `t`'s interval, ascending
    /// by position (merged across the interval map's segments).
    pub fn trajs_in_interval(&self, t: i64) -> Vec<u32> {
        self.interval_trajs
            .postings(t.div_euclid(self.params.partition_s))
    }
}

/// One region traversal of an instance, in chronological order.
#[derive(Debug, Clone, Copy)]
pub struct RegionVisit {
    /// The region.
    pub cell: CellId,
    /// Vertex traversed immediately before entering (final vertex).
    pub fv: VertexId,
    /// Entry index of the edge on which the region is entered.
    pub entry_idx: u32,
    /// Number of mapped locations strictly before that entry.
    pub d_no: u32,
}

/// Enumerates the regions an instance traverses (first traversal each),
/// with the metadata the spatial tuples need. The instance occupies its
/// path only between the first and last sample.
pub fn region_visits(
    net: &RoadNetwork,
    inst: &Instance,
    view: &TedView,
    grid: &Grid,
) -> Vec<RegionVisit> {
    // entry index of each path edge (skipping `0` repeat markers).
    let mut edge_entries = Vec::with_capacity(inst.path.len());
    for (g, &e) in view.entries.iter().enumerate() {
        if e != 0 {
            edge_entries.push(g as u32);
        }
    }
    debug_assert_eq!(edge_entries.len(), inst.path.len());
    // ones in full flags before each entry index.
    let mut ones_before = Vec::with_capacity(view.entries.len() + 1);
    ones_before.push(0u32);
    let mut acc = 0u32;
    for &f in &view.flags {
        acc += u32::from(f);
        ones_before.push(acc);
    }

    let first = inst.location(net, 0);
    let last = inst.location(net, inst.positions.len() - 1);
    let first_pt = net.point_on_edge(first.edge, first.ndist);
    let last_pt = net.point_on_edge(last.edge, last.ndist);

    let mut seen = std::collections::HashSet::new();
    let mut visits = Vec::new();
    for (j, &e) in inst.path.iter().enumerate() {
        let mut a = net.coord(net.edge_from(e));
        let mut b = net.coord(net.edge_to(e));
        if j == 0 {
            a = first_pt;
        }
        if j == inst.path.len() - 1 {
            b = last_pt;
        }
        let bbox = utcq_network::Rect::point(a).union(utcq_network::Rect::point(b));
        let mut cells: Vec<(f64, CellId)> = grid
            .cells_overlapping(&bbox)
            .into_iter()
            .filter(|&c| grid.cell_rect(c).intersects_segment(a, b))
            .map(|c| {
                let ctr = grid.cell_rect(c).center();
                // Order by projection along the direction of travel.
                let t = (ctr.x - a.x) * (b.x - a.x) + (ctr.y - a.y) * (b.y - a.y);
                (t, c)
            })
            .collect();
        cells.sort_by(|x, y| x.0.total_cmp(&y.0));
        for (_, cell) in cells {
            if seen.insert(cell) {
                let g = edge_entries[j];
                visits.push(RegionVisit {
                    cell,
                    fv: net.edge_from(e),
                    entry_idx: g,
                    d_no: ones_before[g as usize],
                });
            }
        }
    }
    visits
}

/// Bit offset of the `Com_E` factor producing entry `entry_idx`, plus the
/// entry index at which that factor starts.
fn factor_offset(
    factors: &[EFactor],
    ref_len: usize,
    nref_len: usize,
    m_width: u32,
    entry_idx: u32,
) -> (u32, u32) {
    let ws = utcq_bitio::width_for_max(ref_len as u64) as usize;
    let wl = ws;
    let mut bit =
        golomb::unsigned_len(factors.len() as u64) + golomb::unsigned_len(nref_len as u64);
    let mut produced = 0u32;
    for (i, f) in factors.iter().enumerate() {
        let (size, count) = match *f {
            EFactor::Copy { l, .. } => (ws + wl + m_width as usize, l + 1),
            EFactor::Tail { l, .. } => (ws + wl, l),
            EFactor::Novel { .. } => (ws + m_width as usize, 1),
        };
        if entry_idx < produced + count || i == factors.len() - 1 {
            return (bit as u32, produced);
        }
        bit += size;
        produced += count;
    }
    (bit as u32, produced)
}

impl Stiu {
    /// An empty index over a network: the grid is fixed up front (it
    /// depends only on the network bounds and `grid_n`), trajectories are
    /// appended with [`Stiu::push`].
    pub fn new(net: &RoadNetwork, params: StiuParams) -> Self {
        Stiu {
            params,
            grid: Grid::over_network(net, params.grid_n),
            trajs: ChunkedVec::new(),
            interval_trajs: IntervalMap::new(),
        }
    }

    /// Appends the index node for one newly compressed trajectory and
    /// merges its temporal postings into the interval map in place — the
    /// incremental-ingest path: nothing previously indexed is touched.
    ///
    /// The trajectory's position must equal `self.trajs.len()` in the
    /// owning [`CompressedDataset`]'s trajectory vector.
    pub fn push(
        &mut self,
        net: &RoadNetwork,
        tu: &UncertainTrajectory,
        ct: &CompressedTrajectory,
        cparams: &crate::params::CompressParams,
    ) {
        let j = self.trajs.len() as u32;
        let node = build_traj(
            net,
            tu,
            ct,
            &self.grid,
            self.params.partition_s,
            &cparams.p_codec(),
            cparams.d_codec().width(),
        );
        // Register the trajectory in every interval its span overlaps —
        // including sample-free gap intervals, which it may still cross.
        let first = tu.times[0].div_euclid(self.params.partition_s);
        let last = tu.times[tu.times.len() - 1].div_euclid(self.params.partition_s);
        self.interval_trajs.register(j, first, last);
        self.trajs.push(node);
    }
}

/// Builds the index from the original dataset and its compressed form.
///
/// The paper constructs the index *during* compression; we take both
/// views to keep the phases separable for benchmarking. Equivalent to
/// [`Stiu::new`] followed by one [`Stiu::push`] per trajectory.
pub fn build(net: &RoadNetwork, ds: &Dataset, cds: &CompressedDataset, params: StiuParams) -> Stiu {
    let mut stiu = Stiu::new(net, params);
    for (tu, ct) in ds.trajectories.iter().zip(&cds.trajectories) {
        stiu.push(net, tu, ct, &cds.params);
    }
    stiu
}

fn build_traj(
    net: &RoadNetwork,
    tu: &UncertainTrajectory,
    ct: &CompressedTrajectory,
    grid: &Grid,
    partition_s: i64,
    p_codec: &utcq_bitio::pddp::PddpCodec,
    d_width: u32,
) -> TrajIndex {
    let mut node = TrajIndex::default();

    // Temporal tuples: one per interval containing at least one sample.
    let positions =
        siar::deviation_positions(&ct.t_bits, tu.times.len()).expect("own encoding decodes");
    let mut last_interval = i64::MIN;
    for (i, &t) in tu.times.iter().enumerate() {
        let interval = t.div_euclid(partition_s);
        if interval != last_interval {
            last_interval = interval;
            let pos = positions.get(i).copied().unwrap_or(ct.t_bits.len_bits());
            node.temporal.push(TemporalTuple {
                start: t,
                no: i as u32,
                pos: pos as u32,
            });
        }
    }

    // Per-instance region visits.
    let views: Vec<TedView> = tu
        .instances
        .iter()
        .map(|inst| TedView::from_instance(net, inst))
        .collect();
    let visits: Vec<Vec<RegionVisit>> = tu
        .instances
        .iter()
        .zip(&views)
        .map(|(inst, view)| region_visits(net, inst, view, grid))
        .collect();

    // Group = reference + its non-references.
    for (ref_idx, cref) in ct.refs.iter().enumerate() {
        let ref_orig = cref.orig_idx as usize;
        let members: Vec<usize> = std::iter::once(ref_orig)
            .chain(
                ct.nrefs
                    .iter()
                    .filter(|n| n.ref_idx as usize == ref_idx)
                    .map(|n| n.orig_idx as usize),
            )
            .collect();
        // Union of regions visited by the group.
        let mut cells: Vec<CellId> = members
            .iter()
            .flat_map(|&m| visits[m].iter().map(|v| v.cell))
            .collect();
        cells.sort();
        cells.dedup();
        for cell in cells {
            let mut p_total = 0.0;
            let mut p_max = 0.0f64;
            for &m in &members {
                if visits[m].iter().any(|v| v.cell == cell) {
                    let p = p_codec.dequantize(quantized_prob(ct, m));
                    p_total += p;
                    if m != ref_orig {
                        p_max = p_max.max(p);
                    }
                }
            }
            let ref_visit = visits[ref_orig].iter().find(|v| v.cell == cell);
            node.ref_tuples.push(match ref_visit {
                Some(v) => RefRegionTuple {
                    cell,
                    ref_idx: ref_idx as u32,
                    fv: Some(v.fv),
                    fv_no: v.entry_idx,
                    d_pos: v.d_no * d_width,
                    p_total,
                    p_max,
                },
                None => RefRegionTuple {
                    cell,
                    ref_idx: ref_idx as u32,
                    fv: None,
                    fv_no: 0,
                    d_pos: 0,
                    p_total,
                    p_max,
                },
            });
        }
    }

    // Non-reference tuples.
    for (nref_idx, cnref) in ct.nrefs.iter().enumerate() {
        let orig = cnref.orig_idx as usize;
        let ref_view = &views[ct.refs[cnref.ref_idx as usize].orig_idx as usize];
        let factors = factor::factorize_e(&views[orig].entries, &ref_view.entries);
        for v in &visits[orig] {
            let (ma_pos, _) = factor_offset(
                &factors,
                ref_view.entries.len(),
                views[orig].entries.len(),
                crate::compressed::edge_number_width(net.max_out_degree()),
                v.entry_idx,
            );
            node.nref_tuples.push(NrefRegionTuple {
                cell: v.cell,
                nref_idx: nref_idx as u32,
                rv: v.fv,
                rv_no: v.entry_idx,
                ma_pos,
            });
        }
    }
    node
}

fn quantized_prob(ct: &CompressedTrajectory, orig_idx: usize) -> u64 {
    ct.refs
        .iter()
        .find(|r| r.orig_idx as usize == orig_idx)
        .map(|r| r.p_code)
        .or_else(|| {
            ct.nrefs
                .iter()
                .find(|n| n.orig_idx as usize == orig_idx)
                .map(|n| n.p_code)
        })
        .expect("instance exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress_dataset;
    use crate::params::CompressParams;
    use utcq_traj::paper_fixture;

    fn paper_store() -> (utcq_network::RoadNetwork, Dataset, CompressedDataset) {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu],
        };
        let params = CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL);
        let cds = compress_dataset(&fx.example.net, &ds, &params).unwrap();
        (fx.example.net, ds, cds)
    }

    #[test]
    fn temporal_tuples_partition_correctly() {
        let (net, ds, cds) = paper_store();
        // 15-minute partitions: samples 5:03–5:27 span [5:00,5:15) and
        // [5:15,5:30) → two tuples.
        let stiu = build(
            &net,
            &ds,
            &cds,
            StiuParams {
                partition_s: 900,
                grid_n: 8,
            },
        );
        let node = &stiu.trajs[0];
        assert_eq!(node.temporal.len(), 2);
        assert_eq!(node.temporal[0].start, paper_fixture::hms(5, 3, 25));
        assert_eq!(node.temporal[0].no, 0);
        assert_eq!(node.temporal[1].start, paper_fixture::hms(5, 15, 26));
        assert_eq!(node.temporal[1].no, 3);
        // Lookup semantics.
        assert_eq!(
            node.temporal_at(paper_fixture::hms(5, 10, 0)).unwrap().no,
            0
        );
        assert_eq!(
            node.temporal_at(paper_fixture::hms(5, 20, 0)).unwrap().no,
            3
        );
        assert!(node.temporal_at(paper_fixture::hms(4, 0, 0)).is_none());
    }

    #[test]
    fn spatial_tuples_cover_visited_cells() {
        let (net, ds, cds) = paper_store();
        let stiu = build(
            &net,
            &ds,
            &cds,
            StiuParams {
                partition_s: 900,
                grid_n: 4,
            },
        );
        let node = &stiu.trajs[0];
        assert!(!node.ref_tuples.is_empty());
        // Every instance's first region contains its first sample.
        let grid = &stiu.grid;
        let inst = &ds.trajectories[0].instances[0];
        let l0 = inst.location(&net, 0);
        let cell0 = grid.cell_of(net.point_on_edge(l0.edge, l0.ndist));
        assert!(node.ref_tuples.iter().any(|t| t.cell == cell0));
        // p_total in the first cell covers all three instances (they share
        // the first edge).
        let t0 = node.ref_tuples.iter().find(|t| t.cell == cell0).unwrap();
        assert!((t0.p_total - 1.0).abs() < 0.01, "p_total={}", t0.p_total);
        assert!(t0.p_max >= 0.19 && t0.p_max < 0.25, "p_max={}", t0.p_max);
        assert_eq!(t0.fv_no, 0);
    }

    #[test]
    fn interval_map_lists_trajectories() {
        let (net, ds, cds) = paper_store();
        let stiu = build(
            &net,
            &ds,
            &cds,
            StiuParams {
                partition_s: 900,
                grid_n: 8,
            },
        );
        assert_eq!(stiu.trajs_in_interval(paper_fixture::hms(5, 5, 0)), &[0]);
        assert_eq!(stiu.trajs_in_interval(paper_fixture::hms(5, 20, 0)), &[0]);
        assert!(stiu
            .trajs_in_interval(paper_fixture::hms(9, 0, 0))
            .is_empty());
    }

    #[test]
    fn index_size_scales_with_partitions() {
        let (net, ds, cds) = paper_store();
        let coarse = build(
            &net,
            &ds,
            &cds,
            StiuParams {
                partition_s: 3600,
                grid_n: 8,
            },
        );
        let fine = build(
            &net,
            &ds,
            &cds,
            StiuParams {
                partition_s: 600,
                grid_n: 8,
            },
        );
        let (s_c, t_c) = coarse.size_bits(9);
        let (s_f, t_f) = fine.size_bits(9);
        assert_eq!(s_c, s_f, "spatial size independent of time partition");
        assert!(t_f >= t_c, "finer partitions add temporal tuples");

        let few = build(
            &net,
            &ds,
            &cds,
            StiuParams {
                partition_s: 900,
                grid_n: 2,
            },
        );
        let many = build(
            &net,
            &ds,
            &cds,
            StiuParams {
                partition_s: 900,
                grid_n: 32,
            },
        );
        let (s_few, _) = few.size_bits(9);
        let (s_many, _) = many.size_bits(9);
        assert!(s_many >= s_few, "finer grids add spatial tuples");
    }

    #[test]
    fn nref_tuples_reference_valid_positions() {
        let (net, ds, cds) = paper_store();
        let stiu = build(
            &net,
            &ds,
            &cds,
            StiuParams {
                partition_s: 900,
                grid_n: 4,
            },
        );
        let node = &stiu.trajs[0];
        assert!(!node.nref_tuples.is_empty());
        for t in &node.nref_tuples {
            let cnref = &cds.trajectories[0].nrefs[t.nref_idx as usize];
            assert!((t.ma_pos as usize) < cnref.e_com.len_bits() || cnref.e_com.is_empty());
        }
    }
}
