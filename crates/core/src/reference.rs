//! Reference selection: the score function (Eq. 3) and the greedy
//! Algorithm 1.
//!
//! For each uncertain trajectory, a score matrix
//! `SM[w][v] = SF(Tuʲw, Tuʲv) = Tuʲw.p · maxᵢ FJD(Tuʲw → Tuʲv, pivᵢ)`
//! estimates how well instance `w` would represent instance `v`
//! (scores are only computed when the two instances share a start vertex,
//! and `SF(w, w) = 0`). The greedy algorithm repeatedly commits the
//! highest-scoring pair under the paper's two constraints: each
//! non-reference has exactly one reference, and compression is
//! single-order (a reference is never itself represented).

use utcq_network::VertexId;

use crate::pivot::{fjd_pair_with, select_pivots};

/// The role of an instance after reference selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The instance is stored directly (possibly with an empty `Rrs`).
    Reference,
    /// The instance is represented against reference instance `of`
    /// (an index into the same instance list).
    NonReference {
        /// Index of the owning reference.
        of: usize,
    },
}

/// Builds the score matrix `SM` for one uncertain trajectory.
///
/// `seqs[w]` is `E(Tuʲw)`, `svs[w]` its start vertex, `probs[w]` its
/// probability.
pub fn score_matrix(
    seqs: &[Vec<u32>],
    svs: &[VertexId],
    probs: &[f64],
    n_pivots: usize,
) -> Vec<Vec<f64>> {
    let n = seqs.len();
    let mut sm = vec![vec![0.0f64; n]; n];
    if n < 2 {
        return sm;
    }
    let (_, reps) = select_pivots(seqs, n_pivots);
    let mut scratch = crate::pivot::FjdScratch::default();
    for w in 0..n {
        for v in w + 1..n {
            if svs[w] != svs[v] {
                continue;
            }
            let (mut best_wv, mut best_vw) = (0.0f64, 0.0f64);
            for rep in &reps {
                let (wv, vw) = fjd_pair_with(&rep[w], &rep[v], &mut scratch);
                best_wv = best_wv.max(wv);
                best_vw = best_vw.max(vw);
            }
            sm[w][v] = probs[w] * best_wv;
            sm[v][w] = probs[v] * best_vw;
        }
    }
    sm
}

/// Algorithm 1: greedy reference selection from a score matrix.
///
/// Returns one [`Role`] per instance. Instances never chosen as a
/// reference or non-reference become standalone references (lines 10–13 of
/// the paper's pseudocode).
pub fn select_references(sm: &[Vec<f64>]) -> Vec<Role> {
    let n = sm.len();
    let mut roles: Vec<Option<Role>> = vec![None; n];
    // col_dead[x]: x can no longer become a non-reference
    // (it is already a reference or a non-reference).
    let mut col_dead = vec![false; n];
    // row_dead[x]: x can no longer represent anyone (it is a non-reference).
    let mut row_dead = vec![false; n];

    // Pre-sort positive cells by score descending (the paper's suggested
    // optimization over repeated max scans).
    let mut cells: Vec<(f64, usize, usize)> = Vec::new();
    for (w, row) in sm.iter().enumerate() {
        for (v, &score) in row.iter().enumerate() {
            if w != v && score > 0.0 {
                cells.push((score, w, v));
            }
        }
    }
    cells.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    for (_, w, v) in cells {
        if row_dead[w] || col_dead[v] {
            continue;
        }
        if roles[w].is_none() {
            roles[w] = Some(Role::Reference);
            col_dead[w] = true; // a reference is never represented
        } else if roles[w] != Some(Role::Reference) {
            continue;
        }
        roles[v] = Some(Role::NonReference { of: w });
        col_dead[v] = true;
        row_dead[v] = true;
    }

    // Survivors with a live diagonal become standalone references.
    roles
        .into_iter()
        .map(|r| r.unwrap_or(Role::Reference))
        .collect()
}

/// Convenience: full pipeline from instance data to roles.
pub fn assign_roles(
    seqs: &[Vec<u32>],
    svs: &[VertexId],
    probs: &[f64],
    n_pivots: usize,
) -> Vec<Role> {
    select_references(&score_matrix(seqs, svs, probs, n_pivots))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn paper_inputs() -> (Vec<Vec<u32>>, Vec<VertexId>, Vec<f64>) {
        (
            vec![
                vec![1, 2, 1, 2, 2, 0, 4, 1, 0],
                vec![1, 1, 1, 2, 2, 0, 4, 1, 0],
                vec![1, 2, 1, 2, 2, 0, 4, 1, 2],
            ],
            vec![VertexId(0); 3],
            vec![0.75, 0.2, 0.05],
        )
    }

    #[test]
    fn example2_outcome() {
        // Example 2's conclusion: Tu¹₁ is the single reference with
        // Rrs = {Tu¹₂, Tu¹₃}.
        let (seqs, svs, probs) = paper_inputs();
        let roles = assign_roles(&seqs, &svs, &probs, 1);
        assert_eq!(roles[0], Role::Reference);
        assert_eq!(roles[1], Role::NonReference { of: 0 });
        assert_eq!(roles[2], Role::NonReference { of: 0 });
    }

    #[test]
    fn score_matrix_properties() {
        let (seqs, svs, probs) = paper_inputs();
        let sm = score_matrix(&seqs, &svs, &probs, 1);
        for (w, row) in sm.iter().enumerate() {
            assert_eq!(row[w], 0.0, "diagonal must be zero");
        }
        // Higher-probability instances score higher as representers of the
        // same target.
        assert!(sm[0][2] > sm[2][0]);
    }

    #[test]
    fn different_start_vertices_never_pair() {
        let (seqs, _, probs) = paper_inputs();
        let svs = vec![VertexId(0), VertexId(1), VertexId(2)];
        let roles = assign_roles(&seqs, &svs, &probs, 1);
        assert!(roles.iter().all(|r| *r == Role::Reference));
    }

    #[test]
    fn single_instance_is_reference() {
        let roles = assign_roles(&[vec![1, 2, 3]], &[VertexId(0)], &[1.0], 1);
        assert_eq!(roles, vec![Role::Reference]);
    }

    #[test]
    fn references_are_never_nonreferences() {
        // Synthetic matrix engineered so the greedy choice chains:
        // 0 represents 1 well, 1 represents 2 well — but once 1 is a
        // non-reference it cannot also be a reference.
        let sm = vec![
            vec![0.0, 0.9, 0.1],
            vec![0.0, 0.0, 0.8],
            vec![0.0, 0.0, 0.0],
        ];
        let roles = select_references(&sm);
        assert_eq!(roles[0], Role::Reference);
        assert_eq!(roles[1], Role::NonReference { of: 0 });
        // 2 cannot be represented by the dead row 1; the only other
        // positive cell is (0,2)=0.1.
        assert_eq!(roles[2], Role::NonReference { of: 0 });
    }

    #[test]
    fn zero_matrix_yields_all_references() {
        let sm = vec![vec![0.0; 4]; 4];
        let roles = select_references(&sm);
        assert!(roles.iter().all(|r| *r == Role::Reference));
    }

    #[test]
    fn one_reference_many_nonreferences() {
        // Instance 0 dominates everyone.
        let n = 6;
        let mut sm = vec![vec![0.0; n]; n];
        for v in 1..n {
            sm[0][v] = 1.0 - v as f64 * 0.01;
            sm[v][0] = 0.2;
        }
        let roles = select_references(&sm);
        assert_eq!(roles[0], Role::Reference);
        for v in 1..n {
            assert_eq!(roles[v], Role::NonReference { of: 0 });
        }
    }

    #[test]
    fn every_nonreference_points_to_a_reference() {
        // Random-ish dense matrix: the structural invariant must hold.
        let n = 8;
        let mut sm = vec![vec![0.0; n]; n];
        let mut x = 37u64;
        for w in 0..n {
            for v in 0..n {
                if w != v {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    sm[w][v] = (x >> 11) as f64 / (1u64 << 53) as f64;
                }
            }
        }
        let roles = select_references(&sm);
        for r in &roles {
            if let Role::NonReference { of } = r {
                assert_eq!(roles[*of], Role::Reference);
            }
        }
    }
}
