//! The UTCQ compressor (§4): improved TED representation, reference
//! selection, referential representation, and binary encoding.

use utcq_bitio::{golomb, BitWriter, CodecError};
use utcq_network::RoadNetwork;
use utcq_traj::size::SizeBreakdown;
use utcq_traj::{Dataset, TedView, UncertainTrajectory};

use crate::chunk::ChunkedVec;
use crate::compressed::{
    edge_number_width, encode_d_codes, encode_entries, encode_flags, CompressedNonRef,
    CompressedRef, CompressedTrajectory,
};
use crate::factor;
use crate::params::CompressParams;
use crate::reference::{assign_roles, Role};
use crate::siar;

/// A compressed dataset plus size accounting.
#[derive(Debug, Clone)]
pub struct CompressedDataset {
    /// Dataset label.
    pub name: String,
    /// Parameters used.
    pub params: CompressParams,
    /// Fixed width of outgoing-edge numbers.
    pub w_e: u32,
    /// The compressed trajectories, in `Arc`'d immutable chunks so a
    /// live publish clones the chunk directory, not the payloads (see
    /// [`crate::chunk`]). Serialization is unaffected — containers are
    /// byte-identical to the flat layout.
    pub trajectories: ChunkedVec<CompressedTrajectory>,
    /// Compressed footprint per component.
    pub compressed: SizeBreakdown,
    /// Raw footprint per component (the ratio numerators).
    pub raw: SizeBreakdown,
}

impl CompressedDataset {
    /// Component-wise and total compression ratios (Table 8 row).
    pub fn ratios(&self) -> Ratios {
        Ratios::from_sizes(&self.raw, &self.compressed)
    }
}

/// Compression ratios per component, as reported in Table 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ratios {
    /// Overall ratio.
    pub total: f64,
    /// Time sequence.
    pub t: f64,
    /// Edge sequence (start vertices folded in, as in TED's `E`).
    pub e: f64,
    /// Relative distances.
    pub d: f64,
    /// Time-flag bit-strings.
    pub tflag: f64,
    /// Probabilities.
    pub p: f64,
}

impl Ratios {
    /// Ratios from raw/compressed footprints — also used to aggregate
    /// across shard partitions.
    pub fn from_sizes(raw: &SizeBreakdown, compressed: &SizeBreakdown) -> Self {
        let div = |num: u64, den: u64| {
            if den == 0 {
                f64::NAN
            } else {
                num as f64 / den as f64
            }
        };
        Ratios {
            total: div(raw.total(), compressed.total()),
            t: div(raw.t, compressed.t),
            e: div(raw.e + raw.sv, compressed.e + compressed.sv),
            d: div(raw.d, compressed.d),
            tflag: div(raw.tflag, compressed.tflag),
            p: div(raw.p, compressed.p),
        }
    }
}

/// Compresses one uncertain trajectory.
pub fn compress_trajectory(
    net: &RoadNetwork,
    tu: &UncertainTrajectory,
    params: &CompressParams,
) -> Result<(CompressedTrajectory, SizeBreakdown), CodecError> {
    let views: Vec<TedView> = tu
        .instances
        .iter()
        .map(|i| TedView::from_instance(net, i))
        .collect();
    let seqs: Vec<Vec<u32>> = views.iter().map(|v| v.entries.clone()).collect();
    let svs: Vec<_> = views.iter().map(|v| v.sv).collect();
    let probs: Vec<f64> = views.iter().map(|v| v.prob).collect();
    let roles = assign_roles(&seqs, &svs, &probs, params.n_pivots);
    compress_views(net, tu, params, &roles, views)
}

/// Compresses one trajectory under an externally supplied role
/// assignment — used by the reference-selection ablations. Every
/// `NonReference { of }` must point at a `Reference` with the same start
/// vertex.
pub fn compress_trajectory_with_roles(
    net: &RoadNetwork,
    tu: &UncertainTrajectory,
    params: &CompressParams,
    roles: &[Role],
) -> Result<(CompressedTrajectory, SizeBreakdown), CodecError> {
    let views: Vec<TedView> = tu
        .instances
        .iter()
        .map(|i| TedView::from_instance(net, i))
        .collect();
    compress_views(net, tu, params, roles, views)
}

fn compress_views(
    net: &RoadNetwork,
    tu: &UncertainTrajectory,
    params: &CompressParams,
    roles: &[Role],
    views: Vec<TedView>,
) -> Result<(CompressedTrajectory, SizeBreakdown), CodecError> {
    let w_e = edge_number_width(net.max_out_degree());
    let d_codec = params.d_codec();
    let p_codec = params.p_codec();
    let n_locs = tu.times.len();

    // Quantized distance codes per instance (comparison for Com_D happens
    // at the quantized level so patches survive the lossy step).
    let d_codes: Vec<Vec<u64>> = views
        .iter()
        .map(|v| v.rds.iter().map(|&rd| d_codec.quantize(rd)).collect())
        .collect();

    let t_bits = siar::encode(&tu.times, params.default_interval)?;
    let mut size = SizeBreakdown {
        t: (t_bits.len_bits() + golomb::unsigned_len(n_locs as u64)) as u64,
        ..Default::default()
    };

    let mut refs = Vec::new();
    // Map from instance index to its position in `refs`.
    let mut ref_pos = vec![u32::MAX; views.len()];
    for (i, view) in views.iter().enumerate() {
        if roles[i] == Role::Reference {
            ref_pos[i] = refs.len() as u32;
            let e_bits = encode_entries(&view.entries, w_e)?;
            let tflag_bits = encode_flags(view.trimmed_flags());
            let d_bits = encode_d_codes(&d_codes[i], &d_codec)?;
            size.sv += 32;
            size.e += (golomb::unsigned_len(view.entries.len() as u64) + e_bits.len_bits()) as u64;
            size.tflag += tflag_bits.len_bits() as u64;
            size.d += d_bits.len_bits() as u64;
            size.p += u64::from(p_codec.width());
            refs.push(CompressedRef {
                orig_idx: i as u32,
                sv: view.sv,
                n_entries: view.entries.len() as u32,
                e_bits,
                tflag_bits,
                d_bits,
                p_code: p_codec.quantize(view.prob),
            });
        }
    }

    let ref_idx_bits = utcq_bitio::width_for_max(refs.len().saturating_sub(1) as u64);
    let mut nrefs = Vec::new();
    for (i, view) in views.iter().enumerate() {
        let Role::NonReference { of } = roles[i] else {
            continue;
        };
        let rp = ref_pos[of];
        debug_assert_ne!(rp, u32::MAX, "non-reference must point at a reference");
        let ref_view = &views[of];

        let e_factors = factor::factorize_e(&view.entries, &ref_view.entries);
        let mut w = BitWriter::new();
        factor::encode_e(
            &mut w,
            &e_factors,
            ref_view.entries.len(),
            view.entries.len(),
            w_e,
        )?;
        let e_com = w.finish();

        let tcom = factor::factorize_t(view.trimmed_flags(), ref_view.trimmed_flags());
        let mut w = BitWriter::new();
        factor::encode_t(&mut w, &tcom, ref_view.trimmed_flags().len())?;
        let t_com = w.finish();

        let patches = factor::diff_d(&d_codes[i], &d_codes[of]);
        let mut w = BitWriter::new();
        factor::encode_d(&mut w, &patches, n_locs, d_codec.width())?;
        let d_com = w.finish();

        size.e += (e_com.len_bits() + ref_idx_bits as usize) as u64;
        size.tflag += t_com.len_bits() as u64;
        size.d += d_com.len_bits() as u64;
        size.p += u64::from(p_codec.width());
        nrefs.push(CompressedNonRef {
            orig_idx: i as u32,
            ref_idx: rp,
            e_com,
            t_com,
            d_com,
            p_code: p_codec.quantize(view.prob),
        });
    }

    Ok((
        CompressedTrajectory {
            id: tu.id,
            n_times: n_locs as u32,
            t_bits,
            refs,
            nrefs,
        },
        size,
    ))
}

/// Compresses a full dataset, accumulating size accounting.
pub fn compress_dataset(
    net: &RoadNetwork,
    ds: &Dataset,
    params: &CompressParams,
) -> Result<CompressedDataset, CodecError> {
    let mut compressed = SizeBreakdown::default();
    let mut raw = SizeBreakdown::default();
    let mut trajectories = Vec::with_capacity(ds.trajectories.len());
    for tu in &ds.trajectories {
        let (ct, size) = compress_trajectory(net, tu, params)?;
        compressed.add(&size);
        raw.add(&utcq_traj::size::uncompressed_bits(tu));
        trajectories.push(ct);
    }
    Ok(CompressedDataset {
        name: ds.name.clone(),
        params: *params,
        w_e: edge_number_width(net.max_out_degree()),
        trajectories: ChunkedVec::from_vec(trajectories),
        compressed,
        raw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use utcq_traj::paper_fixture;

    fn paper_setup() -> (
        utcq_network::RoadNetwork,
        UncertainTrajectory,
        CompressParams,
    ) {
        let fx = paper_fixture::build();
        let params = CompressParams {
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            ..CompressParams::default()
        };
        (fx.example.net, fx.tu, params)
    }

    #[test]
    fn paper_trajectory_structure() {
        let (net, tu, params) = paper_setup();
        let (ct, _) = compress_trajectory(&net, &tu, &params).unwrap();
        // Example 2: one reference (Tu¹₁) and two non-references.
        assert_eq!(ct.refs.len(), 1);
        assert_eq!(ct.nrefs.len(), 2);
        assert_eq!(ct.refs[0].orig_idx, 0);
        assert_eq!(ct.n_times, 7);
    }

    #[test]
    fn paper_trajectory_compresses() {
        let (net, tu, params) = paper_setup();
        let (_, size) = compress_trajectory(&net, &tu, &params).unwrap();
        let raw = utcq_traj::size::uncompressed_bits(&tu);
        assert!(
            size.total() < raw.total() / 3,
            "compressed {} raw {}",
            size.total(),
            raw.total()
        );
        // Every component shrinks.
        assert!(size.t < raw.t);
        assert!(size.e + size.sv < raw.e + raw.sv);
        assert!(size.d < raw.d);
        assert!(size.p < raw.p);
    }

    #[test]
    fn dataset_accounting_accumulates() {
        let (net, tu, params) = paper_setup();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![tu.clone(), tu],
        };
        let cds = compress_dataset(&net, &ds, &params).unwrap();
        assert_eq!(cds.trajectories.len(), 2);
        assert_eq!(
            cds.raw.total(),
            2 * utcq_traj::size::uncompressed_bits(&ds.trajectories[0]).total()
        );
        let r = cds.ratios();
        assert!(r.total > 3.0, "total ratio {}", r.total);
        assert!(r.t > 5.0, "time ratio {}", r.t);
    }
}
