//! Write-ahead log for the live store: an append-only sidecar file
//! that records every accepted ingest batch *before* the epoch
//! publish, so a crash loses at most the batches the fsync policy
//! allows.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! header:  8-byte magic "UTCQWAL\0" | u32 version (=1) | u32 extra_len
//!          (extra_len bytes follow the fixed header and are skipped by
//!          readers that do not understand them — forward compat)
//! record:  u32 payload_len | u32 crc32(payload) | payload
//! payload: u64 expected post-publish epoch (relative to the container
//!          the log sidecars — see DURABILITY.md)
//!          u32 name_len | name bytes
//!          i64 default_interval
//!          u32 n_trajectories, then per trajectory:
//!            u64 id
//!            u32 n_times   | n × i64
//!            u32 n_instances, then per instance:
//!              f64 prob
//!              u32 path_len | n × u32 edge ids
//!              u32 n_positions | n × (u32 path_idx, f64 rd)
//! ```
//!
//! Torn-tail semantics: a final record that is incomplete (short frame
//! or short payload) or fails its checksum is treated as a torn write
//! and truncated away on open; the same damage *followed by more
//! bytes* is real corruption and fails the open. [`scan`] is a pure
//! function over the file bytes so the fuzzer can drive the replay
//! path directly.

use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use utcq_network::EdgeId;
use utcq_traj::{Instance, PathPosition, UncertainTrajectory};

use crate::error::Error;

/// Magic prefix of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"UTCQWAL\0";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Fixed header size: magic + version + extra_len.
const FIXED_HEADER: usize = 16;
/// Default number of recent batches kept in memory for `tail`/dedup.
pub const DEFAULT_TAIL_KEEP: usize = 4096;

/// When the log file is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended batch (durable, slowest).
    Always,
    /// `fdatasync` once every N appended batches (bounded loss window).
    EveryN(u32),
    /// Never sync explicitly; the OS flushes when it pleases.
    Never,
}

/// Configuration for a write-ahead log sidecar.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Path of the log file (created if absent).
    pub path: PathBuf,
    /// Flush policy for appended records.
    pub fsync: FsyncPolicy,
    /// How many recent batches stay in memory for the `tail` wire op
    /// and leader-side ingest dedup.
    pub tail_keep: usize,
    /// Where `checkpoint` saves the container; filled in automatically
    /// by the durable open paths.
    pub checkpoint_to: Option<PathBuf>,
}

impl WalConfig {
    /// A config with the default fsync policy (`Always`) and tail size.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        WalConfig {
            path: path.into(),
            fsync: FsyncPolicy::Always,
            tail_keep: DEFAULT_TAIL_KEEP,
            checkpoint_to: None,
        }
    }

    /// Sets the fsync policy.
    #[must_use]
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets the checkpoint target path.
    #[must_use]
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_to = Some(path.into());
        self
    }
}

/// Durability mode for a live store.
#[derive(Debug, Clone)]
pub enum Durability {
    /// No log: a crash loses everything since the last save.
    Off,
    /// Every accepted batch is appended to a write-ahead log before
    /// the epoch publish.
    Wal(WalConfig),
}

/// One logged ingest batch. `epoch` is the publish epoch the batch
/// produced — relative to the sidecar'd container on disk, live once
/// the record sits in the in-memory tail.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Expected post-publish epoch.
    pub epoch: u64,
    /// Dataset name carried by the batch (may be empty).
    pub name: String,
    /// Sampling interval of the batch.
    pub default_interval: i64,
    /// The batch payload.
    pub trajectories: Vec<UncertainTrajectory>,
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — table built at compile time so the
// hot append path is a byte loop over a const array.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c; // bounds: the loop condition pins i < 256
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 checksum of `bytes` (IEEE polynomial, as used by zip/png).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        // bounds: index is (c ^ b) & 0xFF, always < 256
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Payload codec.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a record's payload (everything inside the checksummed
/// region).
pub fn encode_payload(rec: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_u64(&mut out, rec.epoch);
    put_u32(&mut out, rec.name.len() as u32);
    out.extend_from_slice(rec.name.as_bytes());
    put_i64(&mut out, rec.default_interval);
    put_u32(&mut out, rec.trajectories.len() as u32);
    for tu in &rec.trajectories {
        put_u64(&mut out, tu.id);
        put_u32(&mut out, tu.times.len() as u32);
        for &t in &tu.times {
            put_i64(&mut out, t);
        }
        put_u32(&mut out, tu.instances.len() as u32);
        for inst in &tu.instances {
            put_f64(&mut out, inst.prob);
            put_u32(&mut out, inst.path.len() as u32);
            for e in &inst.path {
                put_u32(&mut out, e.0);
            }
            put_u32(&mut out, inst.positions.len() as u32);
            for p in &inst.positions {
                put_u32(&mut out, p.path_idx);
                put_f64(&mut out, p.rd);
            }
        }
    }
    out
}

/// Encodes a full framed record: length prefix, checksum, payload.
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let payload = encode_payload(rec);
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Bounded cursor over a payload; every read is checked so malformed
/// input surfaces as `Err`, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        let end = self
            .at
            .checked_add(n)
            .ok_or(Error::CorruptStore("wal payload length overflow"))?;
        let Some(s) = self.bytes.get(self.at..end) else {
            return Err(Error::CorruptStore("wal payload truncated"));
        };
        self.at = end;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.at)
    }

    fn u32(&mut self) -> Result<u32, Error> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, Error> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn i64(&mut self) -> Result<i64, Error> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, Error> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `Vec` capacity bound that cannot be tricked into a huge
    /// allocation by a corrupt count: each element needs at least
    /// `min_size` payload bytes, so a count beyond that is bogus.
    fn cap(&self, n: u32, min_size: usize) -> usize {
        (n as usize).min(self.remaining() / min_size.max(1) + 1)
    }
}

/// Decodes one record payload. Pure; returns `Err` on any malformation.
pub fn decode_payload(payload: &[u8]) -> Result<Record, Error> {
    let mut c = Cursor {
        bytes: payload,
        at: 0,
    };
    let epoch = c.u64()?;
    let name_len = c.u32()? as usize;
    let name = std::str::from_utf8(c.take(name_len)?)
        .map_err(|_| Error::CorruptStore("wal record name is not utf-8"))?
        .to_string();
    let default_interval = c.i64()?;
    let n_trajs = c.u32()?;
    let mut trajectories = Vec::with_capacity(c.cap(n_trajs, 20));
    for _ in 0..n_trajs {
        let id = c.u64()?;
        let n_times = c.u32()?;
        let mut times = Vec::with_capacity(c.cap(n_times, 8));
        for _ in 0..n_times {
            times.push(c.i64()?);
        }
        let n_instances = c.u32()?;
        let mut instances = Vec::with_capacity(c.cap(n_instances, 16));
        for _ in 0..n_instances {
            let prob = c.f64()?;
            let path_len = c.u32()?;
            let mut path = Vec::with_capacity(c.cap(path_len, 4));
            for _ in 0..path_len {
                path.push(EdgeId(c.u32()?));
            }
            let n_positions = c.u32()?;
            let mut positions = Vec::with_capacity(c.cap(n_positions, 12));
            for _ in 0..n_positions {
                let path_idx = c.u32()?;
                let rd = c.f64()?;
                positions.push(PathPosition { path_idx, rd });
            }
            instances.push(Instance {
                path,
                positions,
                prob,
            });
        }
        trajectories.push(UncertainTrajectory {
            id,
            times,
            instances,
        });
    }
    if c.remaining() != 0 {
        return Err(Error::CorruptStore("wal record has trailing bytes"));
    }
    Ok(Record {
        epoch,
        name,
        default_interval,
        trajectories,
    })
}

/// Result of scanning a WAL file's bytes.
#[derive(Debug)]
pub struct Scan {
    /// Fully decoded records, in append order.
    pub records: Vec<Record>,
    /// Byte length of the intact prefix (header + whole records); a
    /// torn tail is everything past this offset.
    pub keep_len: u64,
    /// Whether a torn final record was detected (and should be
    /// truncated away by the opener).
    pub torn: bool,
}

/// Scans a complete WAL file image. Header problems and mid-file
/// damage are hard errors; a damaged *final* record is reported as
/// torn. Pure — this is the function the fuzzer drives.
pub fn scan(bytes: &[u8]) -> Result<Scan, Error> {
    let Some(magic) = bytes.get(..8) else {
        return Err(Error::CorruptStore("wal file shorter than its magic"));
    };
    if magic != WAL_MAGIC {
        return Err(Error::CorruptStore("wal magic mismatch"));
    }
    let mut c = Cursor { bytes, at: 8 };
    let version = c
        .u32()
        .map_err(|_| Error::CorruptStore("wal header truncated"))?;
    if version != WAL_VERSION {
        return Err(Error::CorruptStore("wal version unsupported"));
    }
    let extra = c
        .u32()
        .map_err(|_| Error::CorruptStore("wal header truncated"))?;
    c.take(extra as usize)
        .map_err(|_| Error::CorruptStore("wal header truncated"))?;
    let mut records = Vec::new();
    let mut keep = c.at as u64;
    loop {
        let start = c.at;
        if c.remaining() == 0 {
            return Ok(Scan {
                records,
                keep_len: keep,
                torn: false,
            });
        }
        let torn = |records| {
            Ok(Scan {
                records,
                keep_len: start as u64,
                torn: true,
            })
        };
        if c.remaining() < 8 {
            return torn(records);
        }
        let (len, crc) = match (c.u32(), c.u32()) {
            (Ok(l), Ok(x)) => (l, x),
            _ => return torn(records),
        };
        if (len as usize) > c.remaining() {
            return torn(records);
        }
        let payload = c.take(len as usize)?;
        if crc32(payload) != crc {
            if c.remaining() == 0 {
                // Damaged final record: a torn write, not corruption.
                return torn(records);
            }
            return Err(Error::CorruptStore("wal record checksum mismatch"));
        }
        records.push(decode_payload(payload)?);
        keep = c.at as u64;
    }
}

// ---------------------------------------------------------------------
// The log file handle.

/// An open write-ahead log positioned at its end.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    fsync: FsyncPolicy,
    unsynced: u32,
    len: u64,
}

impl Wal {
    /// Opens (or creates) the log at `cfg.path`, replaying any existing
    /// records. A torn final record is truncated away; any other damage
    /// fails the open. Returns the handle plus the replayed records
    /// with their *stored* (container-relative) epochs.
    pub fn open(cfg: &WalConfig) -> Result<(Wal, Vec<Record>), Error> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&cfg.path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            let mut header = Vec::with_capacity(FIXED_HEADER);
            header.extend_from_slice(WAL_MAGIC);
            put_u32(&mut header, WAL_VERSION);
            put_u32(&mut header, 0);
            file.write_all(&header)?;
            file.sync_all()?;
            let len = header.len() as u64;
            return Ok((
                Wal {
                    file,
                    path: cfg.path.clone(),
                    fsync: cfg.fsync,
                    unsynced: 0,
                    len,
                },
                Vec::new(),
            ));
        }
        let scanned = scan(&bytes)?;
        if scanned.torn {
            file.set_len(scanned.keep_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(scanned.keep_len))?;
        Ok((
            Wal {
                file,
                path: cfg.path.clone(),
                fsync: cfg.fsync,
                unsynced: 0,
                len: scanned.keep_len,
            },
            scanned.records,
        ))
    }

    /// Appends one record and applies the fsync policy. The frame is
    /// written with a single `write_all` of a prebuilt buffer, so the
    /// only torn states a crash can leave are short tails.
    pub fn append(&mut self, rec: &Record) -> Result<(), Error> {
        let frame = encode_record(rec);
        crate::hooks::point("wal.before_append");
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        crate::hooks::point("wal.appended");
        self.unsynced = self.unsynced.saturating_add(1);
        let due = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if due {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        crate::hooks::point("wal.synced");
        Ok(())
    }

    /// Discards every record, leaving only the header (used after a
    /// successful checkpoint).
    pub fn truncate(&mut self) -> Result<(), Error> {
        self.file.set_len(FIXED_HEADER as u64)?;
        self.file.seek(SeekFrom::Start(FIXED_HEADER as u64))?;
        self.file.sync_data()?;
        self.len = FIXED_HEADER as u64;
        self.unsynced = 0;
        Ok(())
    }

    /// Current size of the log file in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------
// Crash-safe whole-file writes (checkpoint/save helper).

/// Writes a file atomically: the content goes to a sibling tmp file
/// which is fsynced, renamed over `path`, and the parent directory is
/// fsynced, so a crash at any point leaves either the old file or the
/// new one — never a torn mix.
pub(crate) fn atomic_write(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<File>) -> Result<(), Error>,
) -> Result<(), Error> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or(Error::CorruptStore("save path has no file name"))?;
    let mut tmp_name = name.to_os_string();
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    let tmp = dir.join(tmp_name);
    let result = (|| {
        let f = File::create(&tmp)?;
        let mut w = BufWriter::new(f);
        write(&mut w)?;
        let f = w
            .into_inner()
            .map_err(|e| Error::Io(std::io::Error::other(e.to_string())))?;
        f.sync_all()?;
        drop(f);
        crate::hooks::point("save.before_rename");
        fs::rename(&tmp, path)?;
        File::open(&dir)?.sync_all()?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------
// Sidecar state: a store's attached log plus the in-memory feed of
// recent batches (live epochs) serving `tail` and ingest dedup.

/// What a `tail` read produced.
#[derive(Debug)]
pub enum TailRead {
    /// `from` predates the in-memory feed; the caller must re-sync
    /// from a fresh container copy.
    Gap {
        /// Earliest epoch the feed can still serve batches *after*.
        base: u64,
    },
    /// Batches with epochs in `(from, from + records.len()]`.
    Records {
        /// The batches, oldest first, with live epochs.
        records: Vec<Record>,
        /// The store's current publish epoch at read time.
        current: u64,
    },
}

/// What one checkpoint did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The publish epoch the saved container captures.
    pub epoch: u64,
    /// Size of the log (bytes, header included) before truncation.
    pub log_bytes: u64,
}

/// A store's durability sidecar: the open log, the checkpoint target,
/// and the bounded in-memory batch feed.
#[derive(Debug)]
pub(crate) struct Sidecar {
    pub wal: Wal,
    pub checkpoint_to: Option<PathBuf>,
    tail_keep: usize,
    /// Live epoch at the last truncation; records are stored in the
    /// file with `epoch - base` so a reopened container (whose epochs
    /// restart at 1) replays to matching numbers.
    base: u64,
    /// Recent batches with live epochs, oldest first.
    tail: VecDeque<Record>,
    /// Live epoch preceding `tail.front()`.
    tail_base: u64,
}

impl Sidecar {
    pub fn new(wal: Wal, cfg: &WalConfig) -> Sidecar {
        Sidecar {
            wal,
            checkpoint_to: cfg.checkpoint_to.clone(),
            tail_keep: cfg.tail_keep.max(1),
            base: 0,
            tail: VecDeque::new(),
            tail_base: 0,
        }
    }

    /// Appends a batch that published at live epoch `rec.epoch`: the
    /// file gets the container-relative number, the feed the live one.
    pub fn append_live(&mut self, rec: Record) -> Result<(), Error> {
        let stored = Record {
            epoch: rec.epoch.saturating_sub(self.base),
            ..rec.clone()
        };
        self.wal.append(&stored)?;
        self.push_feed(rec);
        Ok(())
    }

    /// Pushes a batch into the feed without touching the file (replay).
    pub fn push_feed(&mut self, rec: Record) {
        if self.tail.is_empty() {
            self.tail_base = rec.epoch.saturating_sub(1);
        }
        self.tail.push_back(rec);
        while self.tail.len() > self.tail_keep {
            if let Some(dropped) = self.tail.pop_front() {
                self.tail_base = dropped.epoch;
            }
        }
    }

    /// Marks a completed checkpoint at live epoch `epoch`: truncates
    /// the file and rebases future stored epochs. The in-memory feed
    /// truncates with it — the feed mirrors the log, so a follower
    /// resuming from before the checkpoint gets an honest `Gap` (it
    /// must re-seed from the fresh container) instead of records the
    /// log no longer holds.
    pub fn checkpointed(&mut self, epoch: u64) -> Result<(), Error> {
        self.wal.truncate()?;
        self.base = epoch;
        self.tail.clear();
        self.tail_base = epoch;
        Ok(())
    }

    /// Batches with live epochs strictly greater than `from`, capped
    /// at `max` per call.
    pub fn records_since(&self, from: u64, max: usize, current: u64) -> TailRead {
        if from < self.tail_base {
            return TailRead::Gap {
                base: self.tail_base,
            };
        }
        let records = self
            .tail
            .iter()
            .filter(|r| r.epoch > from)
            .take(max)
            .cloned()
            .collect();
        TailRead::Records { records, current }
    }

    /// If a feed batch consists of exactly these trajectories
    /// (compared in full, not just by id — a *different* batch reusing
    /// an id must still fail as a duplicate), returns its live epoch
    /// and size — the leader-side dedup that makes client re-sends
    /// after a reconnect idempotent.
    pub fn dedup_epoch(&self, tus: &[UncertainTrajectory]) -> Option<(u64, usize)> {
        if tus.is_empty() {
            return None;
        }
        self.tail
            .iter()
            .rev()
            .find_map(|r| (r.trajectories == tus).then_some((r.epoch, r.trajectories.len())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64, id: u64) -> Record {
        Record {
            epoch,
            name: "wal-test".to_string(),
            default_interval: 30,
            trajectories: vec![UncertainTrajectory {
                id,
                times: vec![0, 30, 60],
                instances: vec![Instance {
                    path: vec![EdgeId(1), EdgeId(2)],
                    positions: vec![
                        PathPosition {
                            path_idx: 0,
                            rd: 0.25,
                        },
                        PathPosition {
                            path_idx: 1,
                            rd: 0.5,
                        },
                        PathPosition {
                            path_idx: 1,
                            rd: 0.75,
                        },
                    ],
                    prob: 0.625,
                }],
            }],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("utcq-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mk tmp dir");
        dir.join("log.wal")
    }

    #[test]
    fn payload_roundtrips() {
        let rec = sample(7, 42);
        let decoded = decode_payload(&encode_payload(&rec)).expect("decode");
        assert_eq!(decoded, rec);
    }

    #[test]
    fn append_then_open_replays() {
        let cfg = WalConfig::new(tmp("replay"));
        let _ = std::fs::remove_file(&cfg.path);
        let (mut wal, rs) = Wal::open(&cfg).expect("create");
        assert!(rs.is_empty());
        wal.append(&sample(1, 10)).expect("append");
        wal.append(&sample(2, 11)).expect("append");
        drop(wal);
        let (wal, rs) = Wal::open(&cfg).expect("reopen");
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].epoch, 1);
        assert_eq!(rs[1].trajectories[0].id, 11);
        assert_eq!(
            wal.len_bytes(),
            std::fs::metadata(&cfg.path).expect("meta").len()
        );
    }

    #[test]
    fn torn_tail_is_truncated() {
        let cfg = WalConfig::new(tmp("torn"));
        let _ = std::fs::remove_file(&cfg.path);
        let (mut wal, _) = Wal::open(&cfg).expect("create");
        wal.append(&sample(1, 10)).expect("append");
        let keep = wal.len_bytes();
        wal.append(&sample(2, 11)).expect("append");
        drop(wal);
        // Tear the final record mid-payload.
        let bytes = std::fs::read(&cfg.path).expect("read");
        std::fs::write(&cfg.path, &bytes[..bytes.len() - 5]).expect("tear");
        let (wal, rs) = Wal::open(&cfg).expect("reopen");
        assert_eq!(rs.len(), 1, "torn record dropped");
        assert_eq!(wal.len_bytes(), keep);
        // The file was physically truncated back to the intact prefix.
        assert_eq!(std::fs::metadata(&cfg.path).expect("meta").len(), keep);
    }

    #[test]
    fn final_record_crc_damage_is_torn_but_midfile_is_corrupt() {
        let cfg = WalConfig::new(tmp("crc"));
        let _ = std::fs::remove_file(&cfg.path);
        let (mut wal, _) = Wal::open(&cfg).expect("create");
        wal.append(&sample(1, 10)).expect("append");
        let first_end = wal.len_bytes() as usize;
        wal.append(&sample(2, 11)).expect("append");
        drop(wal);
        let pristine = std::fs::read(&cfg.path).expect("read");

        // Flip a payload byte of the FINAL record: torn, truncated.
        let mut tail_flip = pristine.clone();
        tail_flip[first_end + 9] ^= 0xFF;
        let s = scan(&tail_flip).expect("scan");
        assert!(s.torn);
        assert_eq!(s.records.len(), 1);

        // Flip a payload byte of the FIRST record: hard corruption.
        let mut mid_flip = pristine.clone();
        mid_flip[FIXED_HEADER + 9] ^= 0xFF;
        assert!(scan(&mid_flip).is_err());
    }

    #[test]
    fn truncate_resets_to_header() {
        let cfg = WalConfig::new(tmp("trunc"));
        let _ = std::fs::remove_file(&cfg.path);
        let (mut wal, _) = Wal::open(&cfg).expect("create");
        wal.append(&sample(1, 10)).expect("append");
        wal.truncate().expect("truncate");
        assert_eq!(wal.len_bytes(), FIXED_HEADER as u64);
        wal.append(&sample(1, 12)).expect("append after truncate");
        drop(wal);
        let (_, rs) = Wal::open(&cfg).expect("reopen");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].trajectories[0].id, 12);
    }

    #[test]
    fn scan_rejects_bad_headers_without_panicking() {
        assert!(scan(b"").is_err());
        assert!(scan(b"UTCQWAL").is_err());
        assert!(scan(b"NOTAWAL\0\x01\0\0\0\0\0\0\0").is_err());
        let mut wrong_version = Vec::new();
        wrong_version.extend_from_slice(WAL_MAGIC);
        wrong_version.extend_from_slice(&9u32.to_le_bytes());
        wrong_version.extend_from_slice(&0u32.to_le_bytes());
        assert!(scan(&wrong_version).is_err());
    }

    #[test]
    fn sidecar_feed_tail_and_dedup() {
        let cfg = WalConfig {
            tail_keep: 2,
            ..WalConfig::new(tmp("sidecar"))
        };
        let _ = std::fs::remove_file(&cfg.path);
        let (wal, _) = Wal::open(&cfg).expect("create");
        let mut sc = Sidecar::new(wal, &cfg);
        for e in 1..=3u64 {
            sc.append_live(sample(e, 100 + e)).expect("append");
        }
        // Feed capped at 2: epoch 1 fell off → asking from 0 is a gap.
        match sc.records_since(0, 64, 3) {
            TailRead::Gap { base } => assert_eq!(base, 1),
            TailRead::Records { .. } => panic!("expected gap"),
        }
        match sc.records_since(1, 64, 3) {
            TailRead::Records { records, current } => {
                assert_eq!(current, 3);
                assert_eq!(
                    records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
                    vec![2, 3]
                );
            }
            TailRead::Gap { .. } => panic!("expected records"),
        }
        assert_eq!(sc.dedup_epoch(&sample(3, 103).trajectories), Some((3, 1)));
        assert_eq!(sc.dedup_epoch(&sample(9, 999).trajectories), None);
        // Same id, different content: not a re-send, no dedup.
        let mut changed = sample(3, 103).trajectories;
        changed[0].times[0] += 1;
        assert_eq!(sc.dedup_epoch(&changed), None);
    }

    #[test]
    fn checkpoint_rebases_stored_epochs() {
        let cfg = WalConfig::new(tmp("rebase"));
        let _ = std::fs::remove_file(&cfg.path);
        let (wal, _) = Wal::open(&cfg).expect("create");
        let mut sc = Sidecar::new(wal, &cfg);
        sc.append_live(sample(1, 10)).expect("append");
        sc.append_live(sample(2, 11)).expect("append");
        sc.checkpointed(2).expect("checkpoint");
        // The feed truncates with the log: pre-checkpoint epochs are a
        // gap, the next live batch streams normally.
        match sc.records_since(1, 64, 2) {
            TailRead::Gap { base } => assert_eq!(base, 2),
            TailRead::Records { .. } => panic!("expected gap after checkpoint"),
        }
        sc.append_live(sample(3, 12)).expect("append");
        match sc.records_since(2, 64, 3) {
            TailRead::Records { records, .. } => {
                assert_eq!(records.iter().map(|r| r.epoch).collect::<Vec<_>>(), vec![3]);
            }
            TailRead::Gap { .. } => panic!("expected records"),
        }
        drop(sc);
        // On disk the post-checkpoint record is container-relative.
        let (_, rs) = Wal::open(&cfg).expect("reopen");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].epoch, 1);
        assert_eq!(rs[0].trajectories[0].id, 12);
    }
}
