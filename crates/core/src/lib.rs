//! UTCQ: Uncertain Trajectory Compression and Querying.
//!
//! The primary contribution of *"Compression of Uncertain Trajectories in
//! Road Networks"* (Li, Huang, Chen, Jensen, Pedersen — PVLDB 13(7),
//! 2020), reimplemented in full:
//!
//! * [`siar`] — Sample-Interval Adaptive Representation of time
//!   sequences with the improved (signed) Exp-Golomb code (§4.1, §4.4);
//! * [`factor`] — the referential representation of edge sequences
//!   (`(S,L,M)` factors), time-flag bit-strings (`(S,L)` with inferred
//!   mismatches) and relative distances (`(pos, rd)` patches) (§4.2);
//! * [`pivot`] / [`reference`] — pivot selection, the Fine-grained
//!   Jaccard Distance (Eqs. 1–2), the score function (Eq. 3) and the
//!   greedy reference-selection Algorithm 1 (§4.3);
//! * [`compressed`] / [`compress`] / [`decompress`] — binary encoding of
//!   references and non-references with PDDP-coded floats, plus the exact
//!   (modulo `ηD`/`ηp`) inverse (§4.4);
//! * [`flagarr`] — flag/original arrays and partial `T'` decompression
//!   (§5.1, Formulas 4–6);
//! * [`stiu`] — the Spatio-temporal Information based Uncertain
//!   Trajectory Index (§5.2);
//! * [`query`] — probabilistic *where*, *when* and *range* queries with
//!   the filtering Lemmas 1–4 (§5.3–5.4);
//! * [`oracle`] — brute-force answers on uncompressed data, used as
//!   ground truth for accuracy experiments (Fig. 11);
//! * [`storage`] — a binary container format for persisting compressed
//!   datasets.
//!
//! # Quick start
//!
//! ```
//! use utcq_core::params::CompressParams;
//! use utcq_core::query::CompressedStore;
//! use utcq_core::stiu::StiuParams;
//!
//! // Generate a small synthetic dataset (stand-in for the paper's taxi
//! // logs) and compress it.
//! let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 10, 7);
//! let store = CompressedStore::build(
//!     &net,
//!     &ds,
//!     CompressParams::with_interval(ds.default_interval),
//!     StiuParams::default(),
//! )
//! .unwrap();
//! assert!(store.cds.ratios().total > 1.0);
//!
//! // Query the compressed form directly.
//! let tu = &ds.trajectories[0];
//! let hits = store.where_query(tu.id, tu.times[0], 0.0).unwrap();
//! assert!(!hits.is_empty());
//! ```

pub mod compress;
pub mod compressed;
pub mod decompress;
pub mod factor;
pub mod flagarr;
pub mod multiorder;
pub mod oracle;
pub mod params;
pub mod pivot;
pub mod query;
pub mod reference;
pub mod siar;
pub mod stiu;
pub mod storage;

pub use compress::{compress_dataset, compress_trajectory, CompressedDataset, Ratios};
pub use decompress::{decompress_dataset, decompress_trajectory};
pub use params::CompressParams;
pub use query::CompressedStore;
pub use stiu::StiuParams;
