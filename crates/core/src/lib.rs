//! UTCQ: Uncertain Trajectory Compression and Querying.
//!
//! The primary contribution of *"Compression of Uncertain Trajectories in
//! Road Networks"* (Li, Huang, Chen, Jensen, Pedersen — PVLDB 13(7),
//! 2020), reimplemented in full:
//!
//! * [`siar`] — Sample-Interval Adaptive Representation of time
//!   sequences with the improved (signed) Exp-Golomb code (§4.1, §4.4);
//! * [`factor`] — the referential representation of edge sequences
//!   (`(S,L,M)` factors), time-flag bit-strings (`(S,L)` with inferred
//!   mismatches) and relative distances (`(pos, rd)` patches) (§4.2);
//! * [`pivot`] / [`reference`](mod@reference) — pivot selection, the Fine-grained
//!   Jaccard Distance (Eqs. 1–2), the score function (Eq. 3) and the
//!   greedy reference-selection Algorithm 1 (§4.3);
//! * [`compressed`] / [`compress`] / [`decompress`] — binary encoding of
//!   references and non-references with PDDP-coded floats, plus the exact
//!   (modulo `ηD`/`ηp`) inverse (§4.4);
//! * [`flagarr`] — flag/original arrays and partial `T'` decompression
//!   (§5.1, Formulas 4–6);
//! * [`stiu`] — the Spatio-temporal Information based Uncertain
//!   Trajectory Index (§5.2);
//! * [`query`] — probabilistic *where*, *when* and *range* query engine
//!   with the filtering Lemmas 1–4 (§5.3–5.4), the [`query::Page`] /
//!   [`query::PageRequest`] pagination primitives, and the
//!   [`query::QueryTarget`] trait — the query surface every store shape
//!   implements, so services can stay agnostic of physical layout;
//! * [`cache`] — the shared, bounded, thread-safe decode cache
//!   ([`cache::DecodeCache`]) that memoizes decoded references,
//!   instances, time streams and partial `bracket` time windows across
//!   queries, with hit/miss statistics ([`cache::CacheStats`]);
//! * [`plan`] — precomputed per-trajectory lookup tables
//!   ([`plan::TrajPlan`]) that replace the query engine's per-call
//!   linear scans and sorts;
//! * [`snapshot`] — the immutable, epoch-stamped read state
//!   ([`snapshot::Snapshot`]) every query runs on, epoch-swapped behind
//!   one `Arc` so live ingest never blocks a reader;
//! * [`store`] — the single-partition façade: an owned, `Send + Sync`
//!   [`Store`] built incrementally through [`StoreBuilder`] and kept
//!   **live** afterwards ([`Store::ingest`] publishes new epochs
//!   concurrently with queries), persisted as a self-contained
//!   container, queried through paginated entry points backed by the
//!   decode cache and query plans;
//! * [`shard`] — the scale-out layer: a [`shard::ShardedStore`] owning N
//!   `Store` partitions routed by a pluggable [`shard::ShardPolicy`]
//!   (time-interval or road-network-region), answering the exact same
//!   query surface with fan-out/merge execution — byte-identical
//!   answers, asserted by `tests/shard_equivalence.rs`;
//! * [`opened`] — the [`Opened`] facade that opens *any* self-contained
//!   container as the right store shape and presents one
//!   [`QueryTarget`], plus the shared [`opened::InfoReport`]
//!   presentation both `utcq info` and the serve protocol render;
//! * [`wire`] — the serve wire protocol: hand-rolled newline-delimited
//!   JSON requests/responses (documented in `PROTOCOL.md`), with
//!   [`wire::handle_line`] as the single executor behind both the TCP
//!   server and the CLI's offline client mode;
//! * [`serve`] — the long-lived query server: a [`serve::Server`]
//!   built on a nonblocking `epoll` readiness loop ([`poll`]) with
//!   per-connection state machines ([`conn`]), protocol pipelining
//!   with in-order responses, a decoupled query-execution worker pool
//!   and graceful shutdown, keeping the decode cache and query plans
//!   warm across requests;
//! * [`error`] — the unified [`Error`] type every public fallible
//!   function returns;
//! * [`oracle`] — brute-force answers on uncompressed data, used as
//!   ground truth for accuracy experiments (Fig. 11);
//! * [`storage`] — the binary container formats (v1 legacy dataset-only,
//!   v2 self-contained, v3 sharded) for persisting compressed datasets;
//! * [`wal`] — the write-ahead log behind [`wal::Durability`]: every
//!   accepted live batch is appended (CRC32-checksummed, length-prefixed)
//!   and fsynced *before* the epoch publish, replayed on open, truncated
//!   by crash-safe checkpoints, and re-served to followers through the
//!   `tail` wire op (see `docs/DURABILITY.md`).
//!
//! # Store shapes
//!
//! Two store shapes share one query surface ([`QueryTarget`]):
//!
//! | | [`Store`] | [`shard::ShardedStore`] |
//! |---|---|---|
//! | layout | one `CompressedDataset` + StIU | N independent partitions |
//! | built by | [`StoreBuilder`] | [`StoreBuilder::shard_by`] |
//! | container | v2 (`UTCQ` 2) | v3 (`UTCQ` 3, embeds v2 per shard) |
//! | `where`/`when` | direct | routed to the owning shard |
//! | `range` | interval index scan | fan-out, merged id-ascending |
//! | cursors | local offsets / keyset ids | `(shard, local)`-tagged / keyset ids |
//!
//! Sharding is a pure partitioning layer: answers and paginated item
//! sequences are identical between the shapes; only where/when cursor
//! *encodings* differ (a sharded cursor carries its shard in the high
//! 16 bits — see [`shard`]).
//!
//! # Quick start
//!
//! Build a store incrementally (batches compress and index only the new
//! cohort), query it with pagination, persist it, and reopen it with no
//! side-channel arguments:
//!
//! ```
//! use std::sync::Arc;
//! use utcq_core::query::PageRequest;
//! use utcq_core::store::StoreBuilder;
//! use utcq_core::{CompressParams, Store, StiuParams};
//!
//! // Generate a small synthetic dataset (stand-in for the paper's taxi
//! // logs) and split it into two arrival batches.
//! let (net, mut ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 10, 7);
//! let mut batch_b = ds.clone();
//! batch_b.trajectories = ds.trajectories.split_off(5);
//!
//! let store = StoreBuilder::new(
//!     Arc::new(net),
//!     CompressParams::with_interval(ds.default_interval),
//! )
//! .stiu_params(StiuParams::default())
//! .ingest(&ds)?
//! .ingest(&batch_b)?
//! .finish()?;
//! assert_eq!(store.len(), 10);
//! assert!(store.ratios().total > 1.0);
//!
//! // Query the compressed form directly; answers arrive in pages.
//! let tu_id = 0;
//! let j = store.traj_index(tu_id).unwrap();
//! let t0 = store.decode_times(j)?[0];
//! let page = store.where_query(tu_id, t0, 0.0, PageRequest::default())?;
//! assert!(!page.items.is_empty());
//!
//! // Persist as a self-contained v2 container and reopen: the network
//! // and index travel inside the file.
//! let path = std::env::temp_dir().join("utcq-quickstart.utcq");
//! store.save(&path)?;
//! let reopened = Store::open(&path)?;
//! assert_eq!(reopened.len(), store.len());
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), utcq_core::Error>(())
//! ```
//!
//! # Sharded quick start
//!
//! The same pipeline, partitioned: route trajectories across four
//! shards by time interval, query through the identical surface, and
//! persist as a sharded v3 container:
//!
//! ```
//! use std::sync::Arc;
//! use utcq_core::query::PageRequest;
//! use utcq_core::shard::{ByTime, ShardedStore};
//! use utcq_core::store::StoreBuilder;
//! use utcq_core::{CompressParams, QueryTarget};
//!
//! let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 10, 7);
//! let store = StoreBuilder::new(
//!     Arc::new(net),
//!     CompressParams::with_interval(ds.default_interval),
//! )
//! .shard_by(Arc::new(ByTime::default()), 4)?
//! .ingest(&ds)?
//! .finish()?;
//! assert_eq!(store.len(), 10);
//!
//! // The same paginated queries — `Store` and `ShardedStore` both
//! // implement `QueryTarget`, with byte-identical answers.
//! let target: &dyn QueryTarget = &store;
//! let j = store.traj_shard(0).unwrap() as usize;
//! let t0 = store.shards()[j].decode_times(store.shards()[j].traj_index(0).unwrap())?[0];
//! let page = target.where_query(0, t0, 0.0, PageRequest::default())?;
//! assert!(!page.items.is_empty());
//!
//! // v3 container: shard directory + one embedded v2 container each.
//! let path = std::env::temp_dir().join("utcq-sharded-quickstart.utcq");
//! store.save(&path)?;
//! let reopened = ShardedStore::open(&path)?;
//! assert_eq!(reopened.shard_count(), 4);
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), utcq_core::Error>(())
//! ```

pub mod bitmap;
pub mod cache;
pub mod chunk;
pub mod compress;
pub mod compressed;
pub mod conn;
pub mod decompress;
pub mod error;
pub mod factor;
pub mod flagarr;
pub mod hooks;
pub mod multiorder;
pub mod opened;
pub mod oracle;
pub mod params;
pub mod pivot;
pub mod plan;
pub mod poll;
pub mod query;
pub mod reference;
pub mod serve;
pub mod shard;
pub mod siar;
pub mod snapshot;
pub mod stiu;
pub mod storage;
pub mod store;
pub mod wal;
pub mod wire;

pub use cache::{CacheStats, DEFAULT_CACHE_BYTES};
pub use compress::{compress_dataset, compress_trajectory, CompressedDataset, Ratios};
pub use decompress::{decompress_dataset, decompress_trajectory};
pub use error::Error;
pub use opened::{InfoReport, Opened};
pub use params::CompressParams;
pub use query::{Page, PageRequest, QueryTarget, RangeQuery, WhenHit, WhereHit};
pub use serve::{Server, ServerHandle};
pub use shard::{ByRegion, ByTime, ShardPolicy, ShardSpec, ShardedStore, ShardedStoreBuilder};
pub use snapshot::Snapshot;
pub use stiu::StiuParams;
pub use store::{IngestReport, Store, StoreBuilder};
pub use wal::{CheckpointReport, Durability, FsyncPolicy, WalConfig};
